"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in fully
offline environments whose setuptools predates the built-in bdist_wheel
(pip falls back to the legacy ``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
