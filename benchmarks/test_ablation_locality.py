"""Ablation — home placement / locality optimization.

Quantifies the design choice behind the SOR-opt vs SOR gap: the same SOR
computation with three home placements (block = owner-computes, cyclic =
JiaJia default, single-home = all pages on rank 0), on both DSMs. Block
placement must minimize protocol work on the SW-DSM; the hybrid DSM must be
far less placement-sensitive ("the Software-DSM relies more heavily on
locality optimizations", §5.4).
"""

import numpy as np

from repro.apps import get_app
from repro.apps.common import merge_rank_results
from repro.bench.report import render_table
from repro.config import preset
from repro.memory.layout import block, cyclic, single_home
from repro.models.jiajia_api import JiaJiaApi

PLACEMENTS = {"block": block, "cyclic": cyclic,
              "single-home": lambda: single_home(0)}


def _run_sor(platform: str, dist_factory, n: int):
    plat = preset(platform).build()
    api = JiaJiaApi(plat.hamster)
    # The app only exposes block/cyclic via its locality flag; to test
    # arbitrary placements, substitute the distribution factory it uses.
    import repro.apps.sor as sor_mod

    results = api.run(lambda a: _sor_with_dist(a, sor_mod, dist_factory, n))
    merged = merge_rank_results(results)
    assert merged.verified
    dsm = plat.dsm
    stats = {
        "time": merged.phases["total"],
        "fetched": sum(dsm.stats(r).get("pages_fetched", 0) for r in range(4)),
        "diffs": sum(dsm.stats(r).get("diffs_created", 0) for r in range(4)),
        "remote_writes": sum(dsm.stats(r).get("remote_writes", 0) for r in range(4)),
    }
    return stats


def _sor_with_dist(api, sor_mod, dist_factory, n):
    """run_sor with an arbitrary distribution (the app only exposes the
    block/cyclic locality flag, so substitute the factory for this run)."""
    saved_block, saved_cyclic = sor_mod.block, sor_mod.cyclic
    sor_mod.block = dist_factory
    try:
        return sor_mod.run_sor(api, n=n, iterations=6, locality=True)
    finally:
        sor_mod.block = saved_block
        sor_mod.cyclic = saved_cyclic


def test_ablation_home_placement(benchmark, scale):
    n = max(64, (int(1024 * scale) // 16) * 16)

    def run():
        table = {}
        for plat in ("sw-dsm-4", "hybrid-4"):
            for name, factory in PLACEMENTS.items():
                table[(plat, name)] = _run_sor(plat, factory, n)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[plat, name, round(st["time"] * 1e3, 2), st["fetched"],
             st["diffs"], st["remote_writes"]]
            for (plat, name), st in table.items()]
    print()
    print(render_table(
        ["platform", "placement", "time (ms)", "fetches", "diffs", "rmt writes"],
        rows, title=f"Ablation: SOR home placement (n={n}, 6 iterations)"))
    benchmark.extra_info["rows"] = rows

    sw = {name: table[("sw-dsm-4", name)] for name in PLACEMENTS}
    hy = {name: table[("hybrid-4", name)] for name in PLACEMENTS}

    # On the SW-DSM, owner-computes placement is fastest and does the least
    # protocol work.
    assert sw["block"]["time"] < sw["cyclic"]["time"]
    assert sw["block"]["time"] < sw["single-home"]["time"]
    assert sw["block"]["diffs"] <= sw["cyclic"]["diffs"]

    # The hybrid DSM is far less placement-sensitive: its worst/best ratio
    # is much smaller than the SW-DSM's.
    sw_ratio = max(s["time"] for s in sw.values()) / min(s["time"] for s in sw.values())
    hy_ratio = max(s["time"] for s in hy.values()) / min(s["time"] for s in hy.values())
    print(f"\n  placement sensitivity: sw-dsm x{sw_ratio:.1f}, hybrid x{hy_ratio:.1f}")
    assert hy_ratio < sw_ratio
