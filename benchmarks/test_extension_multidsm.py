"""Extension bench — multi-DSM composition (§6 future work).

The paper's closing hypothesis: no single DSM dominates; performance
depends on per-data-structure access patterns, so combining DSM mechanisms
within one application yields custom-tailored solutions. This bench builds
that application:

* a **read-mostly table**, re-read by every rank each iteration with rare
  updates — the *caching* SW-DSM serves it from local copies, while the
  hybrid DSM pays wire latency on every remote re-read;
* a **write-once stream**, each rank overwriting remote-homed pages each
  iteration — the hybrid DSM's posted writes win, while the SW-DSM pays
  fetch + twin + diff per page.

Three configurations run the identical code: everything-on-SW-DSM,
everything-on-hybrid, and the composite (table on SW-DSM, stream on
hybrid). The composite must beat both pure platforms.
"""

import numpy as np

from repro.bench.report import render_table
from repro.config import ClusterConfig, preset
from repro.memory.layout import single_home

ITERATIONS = 8


def _app(env, dsm, table_system, stream_system, holders):
    n_table, n_stream = 16384, 16384  # 128 KiB each (32 pages)
    if env.rank == 0:
        make = getattr(dsm, "make_array_on", None)
        if make is not None:
            holders["table"] = make(table_system, (n_table,), name="table",
                                    distribution=single_home(0))
            holders["stream"] = make(stream_system, (n_stream,), name="stream",
                                     distribution=single_home(0))
        else:
            holders["table"] = dsm.make_array((n_table,), name="table",
                                              distribution=single_home(0))
            holders["stream"] = dsm.make_array((n_stream,), name="stream",
                                               distribution=single_home(0))
        holders["table"][:] = 1.0
    env.barrier()
    table, stream = holders["table"], holders["stream"]
    chunk = n_stream // env.n_ranks
    lo = env.rank * chunk
    acc = 0.0
    for it in range(ITERATIONS):
        acc += float(table[:].sum())           # read-mostly: whole table
        stream[lo:lo + chunk] = float(it)      # write-once stream chunk
        env.compute(2.0 * n_table)
        env.barrier()
        if env.rank == 0 and it % 4 == 3:
            table[0:64] = float(it)            # the rare table update
            env.barrier()
        elif it % 4 == 3:
            env.barrier()
    return acc


def _run(platform_cfg, table_system, stream_system):
    plat = platform_cfg.build()
    holders = {}
    results = plat.hamster.run_spmd(
        lambda env: _app(env, plat.dsm, table_system, stream_system, holders))
    assert len(set(results)) == 1, "ranks disagreed on the table contents"
    return plat.engine.now


def test_extension_multidsm(benchmark, scale):
    def run():
        times = {
            "pure SW-DSM": _run(preset("sw-dsm-4"), "jiajia", "jiajia"),
            "pure hybrid": _run(preset("hybrid-4"), "scivm", "scivm"),
            "composite": _run(
                ClusterConfig(platform="sci", dsm="composite", nodes=4,
                              name="composite-4"),
                "jiajia", "scivm"),
        }
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, round(t * 1e3, 3)] for name, t in times.items()]
    print()
    print(render_table(["configuration", "time (ms)"], rows,
                       title="Extension: per-structure DSM selection "
                             "(read-mostly table + write stream)"))
    benchmark.extra_info["times_ms"] = {k: v * 1e3 for k, v in times.items()}

    # The custom-tailored combination beats both single-mechanism setups.
    assert times["composite"] < times["pure SW-DSM"], times
    assert times["composite"] < times["pure hybrid"], times
