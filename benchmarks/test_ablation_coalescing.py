"""Ablation — messaging-stack coalescing (§3.3).

Isolates the mechanism behind Figure 2's negative bars: the same HAMSTER
platform built twice, once with the DSM's messaging coalesced into the
unified channel and once with a stand-alone stack, with every other cost
knob held constant. The communication-bound benchmarks must get faster
under coalescing, proportionally to their message counts.
"""

from repro.bench.report import render_table
from repro.bench.runners import run_suite
from repro.config import ClusterConfig

LABELS = ["PI", "SOR", "LU all", "WATER 288"]


def _config(integrated: bool) -> ClusterConfig:
    return ClusterConfig(platform="beowulf", dsm="jiajia", nodes=4,
                         integrated_messaging=integrated,
                         name=f"coalesce-{integrated}")


def test_ablation_messaging_coalescing(benchmark, scale):
    def run():
        merged = run_suite(_config(True), scale=scale, labels=LABELS)
        separate = run_suite(_config(False), scale=scale, labels=LABELS)
        return merged, separate

    merged, separate = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label in LABELS:
        gain = 100.0 * (separate[label] - merged[label]) / separate[label]
        rows.append([label, round(separate[label] * 1e3, 2),
                     round(merged[label] * 1e3, 2), round(gain, 2)])
    print()
    print(render_table(
        ["bench", "separate (ms)", "coalesced (ms)", "gain %"], rows,
        title="Ablation: messaging-stack coalescing (4-node SW-DSM)"))
    benchmark.extra_info["rows"] = rows

    # Coalescing helps every communication-bound benchmark.
    for label in LABELS:
        assert merged[label] < separate[label], \
            f"{label}: coalesced messaging should be faster"
    # And it is the *only* difference: gains stay in the few-percent regime
    # (this is an overhead knob, not an algorithmic change).
    for _, _, _, gain in rows:
        assert 0 < gain < 20
