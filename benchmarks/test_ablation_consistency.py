"""Ablation — scope consistency vs release-style global notice delivery.

JiaJia's scope consistency delivers, at lock acquire, only the write
notices generated under *that lock*; a lazy-release-style protocol delivers
the global notice tail on every acquire. This bench builds the SW-DSM both
ways and measures the lock-heavy WATER benchmark: scope consistency must
deliver fewer notices and cause fewer invalidations (the reason the paper
calls ScC "well suited for the fine-grain consistency mechanisms of
HAMSTER services").
"""

from repro.apps import get_app
from repro.apps.common import merge_rank_results
from repro.bench.report import render_table
from repro.config import preset
from repro.dsm.jiajia import JiaJiaSystem
from repro.core.hamster import Hamster
from repro.machine.cluster import Cluster
from repro.models.jiajia_api import JiaJiaApi
from repro.msg.coalesce import MessagingFabric
from repro.sim.engine import Engine


def _run_water(scope: bool, molecules: int):
    engine = Engine()
    cfg = preset("sw-dsm-4")
    cluster = Cluster.beowulf(engine, 4, params=cfg.params())
    fabric = MessagingFabric(cluster, integrated=True)
    dsm = JiaJiaSystem(cluster, fabric=fabric, scope_consistency=scope)
    hamster = Hamster(cluster, dsm, fabric=fabric)
    api = JiaJiaApi(hamster)
    fn = get_app("water")
    results = api.run(lambda a: fn(a, molecules=molecules, steps=2))
    merged = merge_rank_results(results)
    assert merged.verified
    notices = sum(dsm.stats(r)["write_notices_received"] for r in range(4))
    invalidated = sum(dsm.stats(r)["pages_invalidated"] for r in range(4))
    fetched = sum(dsm.stats(r)["pages_fetched"] for r in range(4))
    return {"time": merged.phases["total"], "notices": notices,
            "invalidated": invalidated, "fetched": fetched}


def test_ablation_scope_vs_release(benchmark, scale):
    molecules = max(32, int(288 * scale))

    def run():
        return _run_water(True, molecules), _run_water(False, molecules)

    scoped, released = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["scope (JiaJia)", round(scoped["time"] * 1e3, 2), scoped["notices"],
         scoped["invalidated"], scoped["fetched"]],
        ["release-style", round(released["time"] * 1e3, 2), released["notices"],
         released["invalidated"], released["fetched"]],
    ]
    print()
    print(render_table(
        ["protocol", "WATER time (ms)", "notices", "invalidations", "refetches"],
        rows, title=f"Ablation: consistency protocol (WATER {molecules}, 4 nodes)"))
    benchmark.extra_info["rows"] = rows

    # Scope consistency propagates strictly fewer notices than global
    # delivery on this lock-partitioned workload. Invalidation counts can
    # tie (the extra notices mostly hit pages that are not cached), so only
    # require they not blow up.
    assert scoped["notices"] < released["notices"]
    assert scoped["invalidated"] <= released["invalidated"] * 1.2 + 5
    assert scoped["time"] <= released["time"] * 1.02
