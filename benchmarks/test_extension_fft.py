"""Extension bench — transpose-based FFT ("ongoing work", §5.4).

The paper closes its evaluation noting that "experiments with more and
larger codes" are ongoing. This bench adds one: a four-step FFT whose
transpose step is an all-to-all — a communication pattern none of the
Table 1 codes exercises — and measures how each platform handles it.

Expected shape: the transpose is a bus blip on the SMP, a latency-bound
page-fault storm on the SW-DSM, and a bandwidth-bound write stream on the
hybrid — so the platform ranking from Figure 4 persists, with the
SW-DSM's gap widening on this pattern.
"""

from repro.bench.report import render_table
from repro.bench.runners import run_app_on
from repro.config import preset


def test_extension_fft_all_to_all(benchmark, scale):
    n = max(32, (int(256 * scale) // 16) * 16)

    def run():
        out = {}
        for platform in ("smp-2", "sw-dsm-2", "hybrid-2"):
            merged = run_app_on(preset(platform), "fft", n1=n, n2=n)
            out[platform] = merged.phases
        return out

    phases = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[platform,
             round(p["total"] * 1e3, 2),
             round(p["transpose"] * 1e3, 2),
             round(p["transpose"] / p["total"] * 100, 1)]
            for platform, p in phases.items()]
    print()
    print(render_table(
        ["platform", "total (ms)", "transpose (ms)", "transpose %"],
        rows, title=f"Extension: FFT all-to-all transpose (N = {n}x{n})"))
    benchmark.extra_info["phases"] = {
        k: {p: float(v) for p, v in ph.items()} for k, ph in phases.items()}

    # Platform ranking persists on the new pattern.
    assert phases["hybrid-2"]["total"] < phases["sw-dsm-2"]["total"]
    # The all-to-all hits the SW-DSM hardest.
    share_sw = phases["sw-dsm-2"]["transpose"] / phases["sw-dsm-2"]["total"]
    share_smp = phases["smp-2"]["transpose"] / phases["smp-2"]["total"]
    assert share_sw > share_smp
