"""Shared configuration for the benchmark suite.

``REPRO_SCALE`` scales the working sets (1.0 = the paper's Table 1 sizes).
The default of 0.25 keeps a full ``pytest benchmarks/`` run to a couple of
minutes while preserving every qualitative relationship; the recorded
EXPERIMENTS.md numbers were produced at scale 1.0.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.25"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
