"""Figure 3 — performance of Hybrid-DSM with SW-DSM as baseline (4 nodes).

Runs the identical benchmark binaries on the 4-node SCI hybrid DSM and the
4-node Ethernet SW-DSM; reports the hybrid's advantage percentage per label
(positive = hybrid faster), the paper's convention.

Shape assertions (§5.4):
* the hybrid wins or ties everywhere (no significantly negative bars),
* the *unoptimized* SOR gains far more than the locality-optimized SOR —
  "the Software-DSM relies more heavily on locality optimizations",
* LU's overall advantage exceeds its core-compute advantage (the write-only
  initialization is what the SW-DSM suffers on), and barrier time is much
  lower on the hybrid.
"""

from repro.bench.report import render_bars
from repro.bench.runners import figure3_hybrid_vs_sw, run_suite
from repro.config import preset


def test_figure3_hybrid_vs_sw(benchmark, scale):
    advantage = benchmark.pedantic(
        lambda: figure3_hybrid_vs_sw(scale=scale), rounds=1, iterations=1)
    print()
    print(render_bars(
        advantage,
        title=f"Figure 3: Hybrid-DSM advantage over SW-DSM (4 nodes), scale={scale}"))
    benchmark.extra_info["advantage_pct"] = advantage

    # Hybrid wins or ties everywhere.
    assert all(v > -5.0 for v in advantage.values()), advantage
    # Locality story: unopt SOR benefits much more than optimized SOR.
    assert advantage["SOR"] > advantage["SOR opt"], \
        "unoptimized SOR should gain most from the hybrid's hardware writes"
    # LU: overall (with write-only init) gains at least as much as the core.
    assert advantage["LU all"] >= advantage["LU core"] - 1.0
    # Barrier times collapse on SCI atomics.
    assert advantage["LU bar"] > 0


def test_figure3_barrier_times_absolute(benchmark, scale):
    """The 'significantly lower barrier times' claim, in absolute terms."""
    labels = ["LU bar"]
    t_sw = benchmark.pedantic(
        lambda: run_suite(preset("sw-dsm-4"), scale=scale, labels=labels),
        rounds=1, iterations=1)
    t_hy = run_suite(preset("hybrid-4"), scale=scale, labels=labels)
    print(f"\n  LU barrier time: sw-dsm={t_sw['LU bar']*1e3:.3f} ms, "
          f"hybrid={t_hy['LU bar']*1e3:.3f} ms")
    assert t_hy["LU bar"] < t_sw["LU bar"] / 2
