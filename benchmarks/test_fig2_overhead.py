"""Figure 2 — overhead of execution with HAMSTER compared to native
execution on JiaJia (4 nodes).

Runs every benchmark label on the same 4-node Ethernet cluster twice:
once against the unmodified-JiaJia baseline (direct DSM binding, separate
messaging stack) and once through HAMSTER (service dispatch + coalesced
messaging), and reports the overhead percentage per label — positive =
degradation, negative = gain, exactly Figure 2's convention.

Shape assertions (the paper's §5.3 claims):
* every overhead is single-digit: within (-10%, +10%),
* the whole set lies within the paper's reported band extended by
  measurement slack: slowdowns < 6.5%, speedups < ~5%,
* both signs occur — HAMSTER sometimes wins (messaging integration),
  sometimes loses (call + protocol-hook overhead).
"""

from repro.bench.report import render_bars
from repro.bench.runners import figure2_overhead


def test_figure2_overhead(benchmark, scale):
    overheads = benchmark.pedantic(
        lambda: figure2_overhead(scale=scale), rounds=1, iterations=1)
    print()
    print(render_bars(
        overheads,
        title="Figure 2: Overhead of HAMSTER vs native JiaJia (4 nodes), "
              f"scale={scale}"))
    benchmark.extra_info["overheads_pct"] = overheads

    values = list(overheads.values())
    assert all(-10.0 < v < 10.0 for v in values), \
        f"overhead left the single-digit regime: {overheads}"
    assert max(values) < 6.5, "slowdown exceeds the paper's 6.5% bound"
    assert min(values) > -6.5, "speedup far exceeds the paper's ~4.5% bound"
    assert any(v > 0 for v in values), "expected some HAMSTER slowdowns"
    assert any(v < 0 for v in values), \
        "expected some HAMSTER speedups (messaging integration)"
