"""Chaos reliability — Table 1 benchmarks under seeded fault schedules.

The S17 acceptance run: SOR and MatMult execute under moderate seeded loss
(drops, duplicates, delays) and must still *verify* — the reliable
messaging layer masks every transient fault. A mid-run node crash must
convert into a typed ``node-failed`` outcome within the bounded heartbeat
window — never a hang, never a silently wrong answer. Every scenario is
re-run to prove the whole faulty execution is deterministic.
"""

import pytest

from repro.faults import FaultPlan, NodeCrash, run_chaos

#: (app, params) — small enough to re-run for determinism, large enough to
#: push hundreds of messages through the fault injector.
_WORKLOADS = [
    ("sor", {"n": 96, "iterations": 4}),
    ("matmult", {"n": 48}),
]


def _fingerprint(res):
    return (res.outcome, res.verified, res.checksum, res.virtual_time,
            tuple(sorted(res.faults.items())),
            tuple(sorted(res.messaging.items())))


@pytest.mark.parametrize("app,params", _WORKLOADS,
                         ids=[w[0] for w in _WORKLOADS])
def test_transient_faults_are_masked(benchmark, app, params):
    """Seeded loss profile: run completes verified; retries did real work."""
    plan = FaultPlan.seeded(1234)

    def run():
        return run_chaos("sw-dsm-2", app=app, app_params=params, plan=plan)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.outcome == "completed"
    assert res.verified
    assert res.faults["dropped"] > 0
    assert res.messaging["retries"] > 0
    assert res.messaging["delivery_failures"] == 0
    benchmark.extra_info["virtual_seconds"] = res.virtual_time
    benchmark.extra_info["faults"] = dict(res.faults)
    print(f"\n  {app}: masked {res.faults['dropped']} drops / "
          f"{res.faults['duplicated']} dups with "
          f"{res.messaging['retries']} retries; virtual={res.virtual_time:.4f}s")


@pytest.mark.parametrize("app,params", _WORKLOADS,
                         ids=[w[0] for w in _WORKLOADS])
def test_chaos_runs_are_deterministic(app, params):
    """Same plan + workload twice → identical outcome, stats, and timing."""
    plan = FaultPlan.seeded(77)
    first = run_chaos("sw-dsm-2", app=app, app_params=params, plan=plan)
    second = run_chaos("sw-dsm-2", app=app, app_params=params, plan=plan)
    assert _fingerprint(first) == _fingerprint(second)


def test_masked_run_matches_fault_free_checksum():
    """Correctness under faults is bit-for-bit, not approximate."""
    from repro.faults import fault_free_fingerprint

    params = {"n": 96, "iterations": 4}
    ref = fault_free_fingerprint("sw-dsm-2", "sor", params)
    res = run_chaos("sw-dsm-2", "sor", params, plan=FaultPlan.seeded(9))
    assert res.verified and ref["verified"]
    assert res.checksum == ref["checksum"]


def test_crash_is_detected_and_typed(benchmark):
    """A mid-SOR crash becomes ``node-failed`` within the confirm window."""
    plan = FaultPlan(seed=5, crashes=(NodeCrash(node=1, at=4e-3),))

    def run():
        return run_chaos("sw-dsm-2", "sor", {"n": 96, "iterations": 4},
                         plan=plan)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.outcome == "node-failed"
    assert res.detector["failed"] == [1]
    # confirm window: crash time + confirm_after (+ slack) heartbeat periods
    assert res.virtual_time <= 4e-3 + 10 * plan.heartbeat_interval
    print(f"\n  crash@4ms confirmed at virtual={res.virtual_time:.4f}s")


def test_crash_outcome_is_deterministic():
    plan = FaultPlan(seed=5, crashes=(NodeCrash(node=1, at=4e-3),))
    runs = [run_chaos("sw-dsm-2", "sor", {"n": 96, "iterations": 4}, plan=plan)
            for _ in range(2)]
    assert _fingerprint(runs[0]) == _fingerprint(runs[1])
    assert runs[0].error == runs[1].error
