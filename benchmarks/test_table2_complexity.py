"""Table 2 — implementation complexity of programming models.

Regenerates the paper's measurement: for every model layer, the normalized
line count, the number of API calls, and lines per call. Asserts the
paper's headline claims: every model is a thin layer (< 25 lines/call on
average), the JiaJia subset is the thinnest, and the thread APIs are the
heaviest (their forwarding machinery included, as in the paper).
"""

from repro.bench.loc_metrics import model_complexity_table
from repro.bench.report import render_table

#: Paper's Table 2, for side-by-side printing.
PAPER_TABLE2 = {
    "SPMD model": (502, 23, 21.8),
    "SMP/SPMD model": (581, 25, 23.2),
    "ANL macros": (146, 20, 7.3),
    "TreadMarks API": (326, 13, 25.1),
    "HLRC API": (137, 25, 5.5),
    "JiaJia API (subset)": (43, 7, 6.1),
    "POSIX threads": (725, 51, 14.2),
    "WIN32 threads": (988, 42, 23.5),
    "Cray put/get (shmem) API": (505, 29, 17.4),
}


def test_table2_complexity(benchmark):
    rows = benchmark.pedantic(model_complexity_table, rounds=1, iterations=1)
    by_name = {r.model: r for r in rows}

    printable = []
    for name, row in by_name.items():
        p_lines, p_calls, p_ratio = PAPER_TABLE2[name]
        printable.append([name, row.lines, row.api_calls,
                          round(row.lines_per_call, 1),
                          p_lines, p_calls, p_ratio])
    print()
    print(render_table(
        ["model", "lines", "#calls", "lines/call",
         "paper lines", "paper #calls", "paper l/c"],
        printable,
        title="Table 2: Implementation Complexity of Programming Models"))

    # ------------------------------------------------- paper-shape checks
    total_lines = sum(r.lines for r in rows)
    total_calls = sum(r.api_calls for r in rows)
    average = total_lines / total_calls
    print(f"\n  average lines/call = {average:.1f} (paper: < 25)")
    assert average < 25, "models are no longer thin layers"

    jia = by_name["JiaJia API (subset)"]
    assert jia.lines == min(r.lines for r in rows), \
        "the JiaJia subset should be the thinnest layer"

    # Thread APIs (with their forwarding machinery) dominate the DSM APIs.
    for thread_model in ("POSIX threads", "WIN32 threads"):
        for dsm_model in ("TreadMarks API", "HLRC API", "JiaJia API (subset)"):
            assert by_name[thread_model].lines > by_name[dsm_model].lines

    # API-call counts stay close to the paper's (same API surfaces).
    for name, row in by_name.items():
        paper_calls = PAPER_TABLE2[name][1]
        assert abs(row.api_calls - paper_calls) <= 5, \
            f"{name}: {row.api_calls} calls vs paper's {paper_calls}"
