"""Table 1 — benchmarks and their working sets.

Regenerates the benchmark/working-set inventory and executes every
benchmark once (at ``REPRO_SCALE``) on the paper's 4-node SW-DSM platform,
verifying each against its sequential reference. The pytest-benchmark
timing wraps the whole simulated execution; the *virtual* times (what the
paper's tables report) land in ``extra_info``.
"""

from repro.apps.common import APP_TABLE
from repro.bench.report import render_table
from repro.bench.runners import WORKLOADS, run_app_on
from repro.config import preset


def test_table1_inventory(benchmark):
    rows = benchmark.pedantic(
        lambda: [(name, entry["description"], entry["working_set"])
                 for name, entry in APP_TABLE.items()],
        rounds=1, iterations=1)
    print()
    print(render_table(["bench", "description", "working set (paper)"], rows,
                       title="Table 1: Benchmarks and Their Working Sets "
                             "(+ fft extension)"))
    assert len(rows) == 6  # the paper's five + the fft extension


def _bench_app(benchmark, label, scale):
    wl = WORKLOADS[label]
    params = wl.params(scale)
    config = preset("sw-dsm-4")

    def run():
        return run_app_on(config, wl.app, **params)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.verified
    benchmark.extra_info["virtual_seconds"] = result.phases["total"]
    benchmark.extra_info["params"] = params
    print(f"\n  {label}: virtual={result.phases['total']:.4f}s "
          f"params={params} verified={result.verified}")


def test_matmult(benchmark, scale):
    _bench_app(benchmark, "MatMult", scale)


def test_pi(benchmark, scale):
    _bench_app(benchmark, "PI", scale)


def test_sor_optimized(benchmark, scale):
    _bench_app(benchmark, "SOR opt", scale)


def test_sor_unoptimized(benchmark, scale):
    _bench_app(benchmark, "SOR", scale)


def test_lu(benchmark, scale):
    _bench_app(benchmark, "LU all", scale)


def test_water_288(benchmark, scale):
    _bench_app(benchmark, "WATER 288", scale)


def test_water_343(benchmark, scale):
    _bench_app(benchmark, "WATER 343", scale)
