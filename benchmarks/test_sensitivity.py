"""Robustness bench — cost-model sensitivity.

EXPERIMENTS.md claims the reproduced *orderings* are robust to the
calibration constants (only the percentages move). This bench perturbs the
two most influential parameters — Ethernet latency and SCI read latency —
by ×0.5 and ×2 and asserts that every qualitative relationship the figures
rest on survives:

* hybrid ≥ SW-DSM on every benchmark (Figure 3's sign),
* unoptimized SOR gains more than optimized SOR from the hybrid,
* MatMult stays the SMP's losing case at 2 nodes (Figure 4's crossover),
* the SMP keeps winning the non-MatMult majority.
"""

import pytest

from repro.bench.report import render_table
from repro.bench.runners import run_suite
from repro.config import ClusterConfig, preset

LABELS = ["MatMult", "PI", "SOR opt", "SOR", "LU all"]


def _suite(platform: str, overrides: dict, scale: float, nodes: int = 4):
    cfg = preset(platform)
    cfg.param_overrides.update(overrides)
    return run_suite(cfg, scale=scale, labels=LABELS)


@pytest.mark.parametrize("factor", [0.5, 2.0])
def test_figure3_sign_stable_under_eth_latency(benchmark, scale, factor):
    base = preset("sw-dsm-4").params()
    overrides = {"eth_latency": base.eth_latency * factor}

    def run():
        t_sw = _suite("sw-dsm-4", overrides, scale)
        t_hy = _suite("hybrid-4", {}, scale)
        return t_sw, t_hy

    t_sw, t_hy = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, round(t_sw[label] * 1e3, 2), round(t_hy[label] * 1e3, 2)]
            for label in LABELS]
    print()
    print(render_table(["bench", f"sw-dsm (eth x{factor}) ms", "hybrid ms"],
                       rows, title="Sensitivity: Ethernet latency"))
    for label in LABELS:
        assert t_hy[label] < t_sw[label] * 1.02, \
            f"{label}: hybrid lost its advantage at eth x{factor}"
    # SOR locality ordering survives.
    adv_opt = (t_sw["SOR opt"] - t_hy["SOR opt"]) / t_sw["SOR opt"]
    adv_unopt = (t_sw["SOR"] - t_hy["SOR"]) / t_sw["SOR"]
    assert adv_unopt > adv_opt


@pytest.mark.parametrize("factor", [0.5, 2.0])
def test_figure4_matmult_crossover_stable_under_sci_latency(benchmark, scale,
                                                            factor):
    base = preset("hybrid-2").params()
    overrides = {"sci_read_latency": base.sci_read_latency * factor,
                 "sci_write_latency": base.sci_write_latency * factor}

    def run():
        t_hw = run_suite(preset("smp-2"), scale=scale, labels=LABELS)
        cfg = preset("hybrid-2")
        cfg.param_overrides.update(overrides)
        t_hy = run_suite(cfg, scale=scale, labels=LABELS)
        return t_hw, t_hy

    t_hw, t_hy = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, round(t_hw[label] * 1e3, 2), round(t_hy[label] * 1e3, 2)]
            for label in LABELS]
    print()
    print(render_table(["bench", "smp ms", f"hybrid (sci x{factor}) ms"],
                       rows, title="Sensitivity: SCI latency"))
    # The memory-bound crossover survives the perturbation.
    assert t_hy["MatMult"] < t_hw["MatMult"], \
        f"MatMult crossover vanished at sci x{factor}"
    # The SMP still wins the synchronization-bound PI.
    assert t_hw["PI"] <= t_hy["PI"] * 1.05
