"""Figure 4 — hardware-, hybrid-, and software-DSM on 2 nodes.

The two-node comparison against the dual-CPU SMP (the "hardware DSM"):
identical binaries, three configurations, times normalized to the SMP
(=100%; larger = slower).

Shape assertions (§5.4):
* the tightly coupled SMP outperforms both DSM systems in most cases,
* the exception is MatMult — memory bound, so it profits from the two
  cluster nodes' *separate memory buses* and beats the SMP on both DSMs,
* between hybrid and software DSM at this small node count, the hybrid
  never loses badly (no clear trend claimed by the paper, but SW-DSM
  should not win big anywhere).
"""

from repro.bench.report import render_table
from repro.bench.runners import figure4_two_nodes


def test_figure4_two_nodes(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: figure4_two_nodes(scale=scale), rounds=1, iterations=1)
    printable = [(label, v["hardware"], round(v["hybrid"], 1),
                  round(v["software"], 1)) for label, v in rows.items()]
    print()
    print(render_table(
        ["bench", "hardware %", "hybrid %", "software %"], printable,
        title=f"Figure 4: 2-node platforms, SMP time = 100% (scale={scale}; "
              "larger = slower)"))
    benchmark.extra_info["normalized_pct"] = rows

    # MatMult: memory bound -> the DSM systems beat the SMP's shared bus.
    assert rows["MatMult"]["hybrid"] < 100.0, \
        "MatMult should be faster on the hybrid DSM than on the SMP"
    assert rows["MatMult"]["software"] < rows["SOR"]["software"], \
        "MatMult should be the SW-DSM's *relatively* best case"

    # The SMP wins most of the other benchmarks.
    smp_wins = sum(1 for label, v in rows.items()
                   if label != "MatMult" and v["software"] > 100.0)
    assert smp_wins >= 6, f"SMP should win most benchmarks, won {smp_wins}"
    hybrid_losses = [label for label, v in rows.items() if v["hybrid"] < 95.0
                     and label != "MatMult"]
    # Hybrid may tie or slightly win elsewhere; SW-DSM should not.
    assert all(v["software"] > 95.0 or label == "MatMult"
               for label, v in rows.items()), rows
