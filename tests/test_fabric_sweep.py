"""End-to-end behaviour of the experiment fabric.

Covers the sweep contract: deterministic grid expansion, serial/parallel
byte-parity over canonical records, zero-simulation reruns from the
content-addressed cache, crash-once recovery, per-cell timeouts, typed
chaos failures, and the serial ``bench run`` path sharing the same cache.
"""

import multiprocessing
import os
import time

import pytest

from repro.bench.telemetry import run_suite_telemetry, validate_telemetry
from repro.errors import ConfigurationError
from repro.fabric import (GridSpec, ResultCache, Scenario, TelemetryCache,
                          canonical_records_json, execute_cell, run_sweep,
                          scenario_key)
from repro.fabric.worker import CRASH_FLAG_ENV

SMALL = GridSpec(presets=("smp-2", "sw-dsm-2"), labels=("PI", "MatMult"),
                 scales=(0.04,))


def small_cache(tmp_path, name="cache"):
    return ResultCache(str(tmp_path / name))


class TestGridSpec:
    def test_expand_is_the_deterministic_cross_product(self):
        cells = SMALL.expand()
        assert [c.cell_id() for c in cells] == [
            "smp-2/PI@0.04", "smp-2/MatMult@0.04",
            "sw-dsm-2/PI@0.04", "sw-dsm-2/MatMult@0.04"]
        assert cells == SMALL.expand()

    def test_native_autodetects_native_presets(self):
        spec = GridSpec(presets=("native-jiajia-4", "sw-dsm-4"),
                        labels=("PI",))
        natives = [c.native for c in spec.expand()]
        assert natives == [True, False]

    def test_roundtrip_through_json(self):
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.04,),
                        overrides=({"eth_latency": 80e-6},), faults=(7,),
                        timeout=2.0)
        again = GridSpec.loads(spec.dumps())
        assert [c.cell_id() for c in again.expand()] == \
            [c.cell_id() for c in spec.expand()]

    @pytest.mark.parametrize("bad", [
        {"labels": ["PI"]},                                   # no presets
        {"presets": ["smp-2"]},                               # no labels
        {"presets": ["nope"], "labels": ["PI"]},              # unknown preset
        {"presets": ["smp-2"], "labels": ["nope"]},           # unknown label
        {"presets": ["smp-2"], "labels": ["PI"], "scales": [0]},
        {"presets": ["smp-2"], "labels": ["PI"], "native": [True, False]},
        {"presets": ["smp-2"], "labels": ["PI"], "timeout": -1},
        {"presets": ["smp-2"], "labels": ["PI"], "bogus": 1},  # unknown key
    ])
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            GridSpec.from_dict(bad)


class TestSweepSerial:
    def test_cold_run_then_all_hits(self, tmp_path):
        cache = small_cache(tmp_path)
        first = run_sweep(SMALL, cache=cache)
        counts = first.manifest.counts()
        assert counts == {"hit": 0, "miss": 4, "failed": 0, "pending": 0}
        assert validate_telemetry(first.doc) == []

        second = run_sweep(SMALL, cache=cache)
        assert second.manifest.counts() == {"hit": 4, "miss": 0, "failed": 0, "pending": 0}
        assert second.manifest.all_cached()
        assert second.manifest.simulated_events() == 0
        # cached rerun reproduces the document byte-for-byte (canonically)
        assert canonical_records_json(second.records) == \
            canonical_records_json(first.records)

    def test_duplicate_cells_execute_once(self, tmp_path):
        spec = GridSpec(presets=("smp-2", "smp-2"), labels=("PI",),
                        scales=(0.04,), native=(False, False))
        result = run_sweep(spec, cache=small_cache(tmp_path))
        outcomes = [c.outcome for c in result.manifest.cells]
        assert sorted(outcomes) == ["hit", "miss"]
        assert len(result.records) == 1      # one execution, one record

    def test_failed_cell_never_aborts_the_sweep(self, tmp_path):
        # a permanently-crashed node raises inside the cell; the sweep
        # records the typed failure and completes the healthy cells
        spec = GridSpec(presets=("sw-dsm-2",), labels=("PI", "MatMult"),
                        scales=(0.04,),
                        faults=(None,
                                {"seed": 3,
                                 "crashes": [{"node": 1, "at": 0.0}]}))
        result = run_sweep(spec, cache=small_cache(tmp_path))
        counts = result.manifest.counts()
        assert counts["failed"] >= 1
        assert counts["miss"] >= 1
        for cell in result.manifest.failed_cells():
            assert cell.error.startswith("error: ")


class TestSweepParallel:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = run_sweep(SMALL, workers=1, cache=small_cache(tmp_path, "a"))
        par = run_sweep(SMALL, workers=2, cache=small_cache(tmp_path, "b"))
        assert par.manifest.counts() == serial.manifest.counts()
        assert canonical_records_json(par.records) == \
            canonical_records_json(serial.records)

    def test_parallel_records_keep_grid_order(self, tmp_path):
        result = run_sweep(SMALL, workers=2, cache=small_cache(tmp_path))
        assert [r["id"] for r in result.records] == \
            [c.cell_id() for c in SMALL.expand()]

    def test_crashed_worker_job_is_retried_once(self, tmp_path, monkeypatch):
        flag = tmp_path / "crash-once"
        monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.04,))
        result = run_sweep(spec, workers=2, cache=small_cache(tmp_path),
                           stall_grace=0.5)
        assert flag.exists()                 # the crash really happened
        cell = result.manifest.cells[0]
        assert cell.outcome == "miss"
        assert cell.attempts == 2            # died once, retried, succeeded
        assert validate_telemetry(result.doc) == []

    def test_timeout_becomes_a_typed_failed_cell(self, tmp_path):
        spec = GridSpec(presets=("sw-dsm-4",), labels=("MatMult",),
                        scales=(0.5,), timeout=0.3)
        result = run_sweep(spec, workers=2, cache=small_cache(tmp_path),
                           stall_grace=0.5)
        cell = result.manifest.cells[0]
        assert cell.outcome == "failed"
        assert cell.error.startswith("timeout: ")
        assert cell.attempts == 2            # retried once before giving up
        assert result.doc is None            # nothing succeeded

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="speedup needs >= 4 host cores")
    def test_parallel_sweep_is_faster(self, tmp_path):  # pragma: no cover
        spec = GridSpec(presets=("smp-2", "sw-dsm-2", "hybrid-2", "sw-dsm-4"),
                        labels=("MatMult",), scales=(0.15,))
        t0 = time.monotonic()
        run_sweep(spec, workers=1, cache=small_cache(tmp_path, "s"))
        serial = time.monotonic() - t0
        t0 = time.monotonic()
        run_sweep(spec, workers=4, cache=small_cache(tmp_path, "p"))
        parallel = time.monotonic() - t0
        assert parallel < serial / 1.5


class TestCacheSharing:
    def test_serial_bench_run_hits_sweep_results(self, tmp_path):
        store = small_cache(tmp_path)
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.05,))
        run_sweep(spec, cache=store)
        assert store.stores == 1

        doc = run_suite_telemetry("smoke", only="smp-2/PI",
                                  cache=TelemetryCache(store))
        assert store.hits >= 1
        [record] = doc["records"]
        assert record["id"] == "smp-2/PI" and record["suite"] == "smoke"

    def test_sweep_hits_serial_bench_results(self, tmp_path):
        store = small_cache(tmp_path)
        run_suite_telemetry("smoke", only="smp-2/PI",
                            cache=TelemetryCache(store))
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.05,))
        result = run_sweep(spec, cache=store)
        assert result.manifest.counts() == {"hit": 1, "miss": 0, "failed": 0, "pending": 0}

    def test_execute_cell_matches_cached_identity(self, tmp_path):
        sc = Scenario(preset="smp-2", label="PI", scale=0.04)
        record = execute_cell(sc)
        assert record["id"] == sc.cell_id()
        store = small_cache(tmp_path)
        store.put(scenario_key(sc), record)
        hit = run_sweep(GridSpec(presets=("smp-2",), labels=("PI",),
                                 scales=(0.04,)), cache=store)
        assert hit.manifest.all_cached()


class TestExperimentsFabric:
    def test_collect_times_parity_serial_vs_fabric(self, tmp_path):
        from repro.bench.experiments import collect_times

        serial = collect_times(0.03)
        fabric = collect_times(0.03, workers=1,
                               cache_dir=str(tmp_path / "cache"))
        assert fabric == serial
        # and the cached rerun still agrees
        assert collect_times(0.03, workers=1,
                             cache_dir=str(tmp_path / "cache")) == serial


def test_fork_start_method_available():
    # the scheduler relies on the platform default context; document it
    assert multiprocessing.get_start_method(allow_none=False) in (
        "fork", "spawn", "forkserver")
