"""Contention behaviour of the distributed synchronization services."""

import pytest

from repro.config import ClusterConfig, preset
from tests.conftest import spmd


class TestDistributedLockFairness:
    @pytest.mark.parametrize("platform", ["sw-dsm-4", "hybrid-4", "smp-2"])
    def test_contended_lock_serializes_all_ranks(self, platform):
        plat = preset(platform).build()
        order = []

        def main(env):
            env.barrier()
            env.lock(5)
            order.append(env.rank)
            env.hamster.engine.current_process.hold(1e-3)
            env.unlock(5)
            env.barrier()
            return True

        assert all(spmd(plat, main))
        assert sorted(order) == list(range(plat.hamster.n_ranks))
        assert len(set(order)) == len(order)  # each exactly once

    def test_lock_wait_time_reflects_contention(self):
        plat = preset("sw-dsm-4").build()
        dsm = plat.dsm

        def main(env):
            env.barrier()
            env.lock(2)
            env.hamster.engine.current_process.hold(5e-3)  # long section
            env.unlock(2)
            env.barrier()
            return dsm.stats(env.rank)["lock_wait_time"]

        waits = spmd(plat, main)
        # The last rank to get the lock waited roughly 3 critical sections.
        assert max(waits) > 10e-3
        assert min(waits) < 5e-3

    def test_independent_locks_do_not_serialize(self):
        plat = preset("sw-dsm-4").build()

        def run(shared: bool):
            p = preset("sw-dsm-4").build()

            def main(env):
                env.barrier()
                lock_id = 7 if shared else 10 + env.rank
                env.lock(lock_id)
                env.hamster.engine.current_process.hold(2e-3)
                env.unlock(lock_id)
                env.barrier()
                return None

            p.hamster.run_spmd(main)
            return p.engine.now

        assert run(shared=False) < run(shared=True)

    def test_manager_locality_matters_on_swdsm(self):
        """Acquiring a self-managed lock skips the network round trip."""
        plat = preset("sw-dsm-4").build()

        def main(env):
            env.barrier()
            t0 = env.wtime()
            env.hamster.dsm.lock(env.rank + 4)       # manager == self (id%4)
            env.hamster.dsm.unlock(env.rank + 4)
            local = env.wtime() - t0
            env.barrier()
            t0 = env.wtime()
            env.hamster.dsm.lock(env.rank + 1 + 4 * 2)  # manager == rank+1
            env.hamster.dsm.unlock(env.rank + 1 + 4 * 2)
            remote = env.wtime() - t0
            env.barrier()
            return local, remote

        for local, remote in spmd(plat, main):
            assert local < remote


class TestBarrierBehaviour:
    def test_barrier_time_grows_with_ranks_on_ethernet(self):
        def barrier_cost(nodes):
            plat = ClusterConfig(platform="beowulf", dsm="jiajia",
                                 nodes=nodes).build()

            def main(env):
                env.barrier()  # warm up managers
                t0 = env.wtime()
                for _ in range(5):
                    env.barrier()
                return (env.wtime() - t0) / 5

            return max(spmd(plat, main))

        assert barrier_cost(4) > barrier_cost(2)

    def test_repeated_barriers_stay_cheap_when_clean(self):
        """Barriers with no dirty data carry no diffs/notices — cost is
        flat, not accumulating."""
        plat = preset("sw-dsm-4").build()

        def main(env):
            costs = []
            for _ in range(6):
                t0 = env.wtime()
                env.barrier()
                costs.append(env.wtime() - t0)
            return costs

        costs = spmd(plat, main)[0]
        assert max(costs[2:]) < 2 * min(costs[2:]) + 1e-6

    def test_barrier_interleaves_with_locks_safely(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            A = env.alloc_array((64,), name="A")
            for it in range(3):
                env.lock(1)
                A[0] = float(A[0]) + 1.0
                env.unlock(1)
                env.barrier()
            return float(A[0])

        assert spmd(plat, main) == [6.0, 6.0]
