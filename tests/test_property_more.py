"""Additional property-based suites: messaging delivery, random write/read
equivalence against a numpy model, and composite-DSM equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, preset
from repro.machine.cluster import Cluster
from repro.msg.active_messages import Reply
from repro.msg.coalesce import MessagingFabric
from repro.sim.engine import Engine
from repro.sim.process import SimProcess


class TestMessagingProperties:
    @settings(max_examples=25, deadline=None)
    @given(sends=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 4096)),
        min_size=1, max_size=30))
    def test_every_post_delivered_exactly_once_in_pair_order(self, sends):
        engine = Engine()
        cluster = Cluster.beowulf(engine, 4)
        fabric = MessagingFabric(cluster)
        chan = fabric.channel("prop")
        received = []
        chan.register_all("m", lambda nid: (
            lambda msg: received.append((msg.src, msg.dst, msg.payload))))

        def sender(proc):
            for i, (src, dst, size) in enumerate(sends):
                chan.post(src, dst, "m", payload=i, size=size)

        # One driver process issues all posts (charges costs on src nodes).
        SimProcess(engine, sender).start()
        engine.run()
        assert len(received) == len(sends)
        assert sorted(p for _, _, p in received) == list(range(len(sends)))
        # Per (src, dst) pair, delivery preserves send order.
        for src in range(4):
            for dst in range(4):
                sent = [i for i, (s, d, _) in enumerate(sends)
                        if (s, d) == (src, dst)]
                got = [p for s, d, p in received if (s, d) == (src, dst)]
                assert got == sent

    @settings(max_examples=15, deadline=None)
    @given(payloads=st.lists(st.integers(0, 1000), min_size=1, max_size=10))
    def test_rpc_responses_match_requests(self, payloads):
        engine = Engine()
        cluster = Cluster.beowulf(engine, 2)
        fabric = MessagingFabric(cluster)
        chan = fabric.channel("rpc")
        chan.register_all("echo", lambda nid: (
            lambda msg: Reply(payload=("echo", msg.payload), size=8)))

        def client(proc):
            return [chan.rpc(0, 1, "echo", payload=p, size=8)
                    for p in payloads]

        proc = SimProcess(engine, client).start()
        engine.run()
        assert proc.result == [("echo", p) for p in payloads]


@st.composite
def write_programs(draw):
    """Random single-array write programs with disjoint-writer rows."""
    n_phases = draw(st.integers(1, 3))
    out = []
    for _ in range(n_phases):
        phase = []
        for rank in range(2):
            writes = []
            for _ in range(draw(st.integers(0, 3))):
                row = draw(st.integers(0, 15))
                c0 = draw(st.integers(0, 15))
                c1 = draw(st.integers(c0 + 1, 16))
                writes.append((row, c0, c1, float(draw(st.integers(1, 9)))))
            phase.append(writes)
        out.append(phase)
    return out


def run_program(platform_name, program):
    plat = preset(platform_name).build()

    def main(env):
        A = env.alloc_array((16, 16), name="A")
        if env.rank == 0:
            A[:, :] = 0.0
        env.barrier()
        for phase in program:
            for row, c0, c1, value in phase[env.rank]:
                if row % 2 == env.rank:  # disjoint writers
                    A[row, c0:c1] = value
            env.barrier()
        return A[:, :]

    results = plat.hamster.run_spmd(main)
    return results[0]


def numpy_model(program):
    A = np.zeros((16, 16))
    for phase in program:
        for rank in range(2):
            for row, c0, c1, value in phase[rank]:
                if row % 2 == rank:
                    A[row, c0:c1] = value
    return A


class TestWriteReadEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(program=write_programs())
    def test_swdsm_matches_numpy_model(self, program):
        np.testing.assert_array_equal(run_program("sw-dsm-2", program),
                                      numpy_model(program))

    @settings(max_examples=15, deadline=None)
    @given(program=write_programs())
    def test_hybrid_matches_numpy_model(self, program):
        np.testing.assert_array_equal(run_program("hybrid-2", program),
                                      numpy_model(program))


class TestCompositeEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(program=write_programs(),
           table_system=st.sampled_from(["jiajia", "scivm"]))
    def test_composite_matches_smp(self, program, table_system):
        """A random program over a region on either child of the composite
        produces exactly the SMP's result."""
        plat = ClusterConfig(platform="sci", dsm="composite", nodes=2).build()
        dsm = plat.dsm
        holders = {}

        def main(env):
            if env.rank == 0:
                holders["A"] = dsm.make_array_on(table_system, (16, 16), name="A")
                holders["A"][:, :] = 0.0
            env.barrier()
            A = holders["A"]
            for phase in program:
                for row, c0, c1, value in phase[env.rank]:
                    if row % 2 == env.rank:
                        A[row, c0:c1] = value
                env.barrier()
            return A[:, :]

        results = plat.hamster.run_spmd(main)
        np.testing.assert_array_equal(results[0], numpy_model(program))
        np.testing.assert_array_equal(results[1], numpy_model(program))
