"""Monitoring/profiling/trace tools exercised against chaos runs.

The observability satellite of the S17 fault work: with faults active, the
tool digests must surface what actually happened — retransmissions in the
trace summary, failure-detector confirmations after a crash, live counter
samples from an attached monitor — and the obs layer must keep working
under injected loss (retry wire transfers stay causally linked).
"""

import pytest

from repro.config import preset
from repro.faults import FaultPlan, NodeCrash, run_chaos
from repro.tools import profile_platform, summarize_trace
from repro.tools.monitor import AttachedMonitor


@pytest.fixture(scope="module")
def chaos_run():
    """One seeded lossy (no-crash) chaos run with tracing + spans on."""
    cfg = preset("sw-dsm-2")
    cfg.trace = True
    cfg.observe = True
    result = run_chaos(cfg, app="sor", app_params={"n": 64, "iterations": 2},
                       plan=FaultPlan.seeded(42))
    assert result.outcome == "completed" and result.verified
    return result


class TestTraceviewChaosDigest:
    def test_retransmissions_show_up(self, chaos_run):
        summary = summarize_trace(chaos_run.built.engine.trace)
        assert summary.events_by_kind.get("am.retry", 0) > 0
        assert summary.events_by_kind.get("fault.drop", 0) > 0
        assert chaos_run.messaging["retries"] \
            == summary.events_by_kind["am.retry"]

    def test_every_kind_counted(self, chaos_run):
        summary = summarize_trace(chaos_run.built.engine.trace)
        trace = chaos_run.built.engine.trace
        assert sum(summary.events_by_kind.values()) == len(trace)
        for kind in ("net.send", "jj.fetch", "obs.span"):
            assert summary.events_by_kind.get(kind, 0) > 0

    def test_render_mentions_faults_and_retries(self, chaos_run):
        text = summarize_trace(chaos_run.built.engine.trace).render()
        assert "am.retry" in text
        assert "fault.drop" in text

    def test_detector_confirmation_in_digest(self):
        cfg = preset("sw-dsm-2")
        cfg.trace = True
        plan = FaultPlan(seed=3, crashes=(NodeCrash(node=1, at=1e-3),))
        result = run_chaos(cfg, app="sor", app_params={"n": 64}, plan=plan)
        assert result.outcome == "node-failed"
        summary = summarize_trace(result.built.engine.trace)
        assert summary.events_by_kind.get("fault.crash", 0) == 1
        assert summary.events_by_kind.get("hb.suspect", 0) > 0
        assert summary.events_by_kind.get("hb.confirm", 0) == 1
        assert "hb.confirm=1" in summary.render()


class TestProfileUnderChaos:
    def test_profile_renders_after_faulty_run(self, chaos_run):
        report = profile_platform(chaos_run.built)
        text = report.render()
        assert "profile:" in text
        # Faulty runs pay real communication; the profile must show it.
        assert report.total("fetches") > 0
        assert report.total("barriers") > 0
        assert report.messages > 0


class TestMonitorUnderChaos:
    def test_attached_monitor_sees_faulty_run(self):
        from repro.models.jiajia_api import JiaJiaApi

        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan.seeded(7)
        built = cfg.build()
        monitor = AttachedMonitor(built, period=0.5e-3).attach()
        api = JiaJiaApi(built.hamster)

        def main(jia):
            pid, _ = jia.jia_init()
            a = jia.jia_alloc_array((64,), name="x")
            jia.jia_barrier()
            jia.jia_lock(1)
            a[pid] = 1.0
            jia.jia_unlock(1)
            jia.jia_barrier()

        api.run(main)
        assert monitor.events, "no live counter updates seen"
        assert monitor.samples, "no periodic samples collected"
        last = monitor.samples[-1]
        assert last.get("sync", "barriers") > 0


class TestSpansUnderChaos:
    def test_spans_closed_and_retries_linked(self, chaos_run):
        rec = chaos_run.built.obs
        assert len(rec.spans) > 0
        assert all(s.end is not None for s in rec.spans)
        # More wire transfers than logical sends: retransmissions reuse the
        # message and parent to the same originating span.
        retries = chaos_run.messaging["retries"]
        assert retries > 0
        by_msg = {}
        for span in rec.of_kind("net.xfer"):
            key = span.get("msg_id")
            by_msg.setdefault(key, []).append(span)
        retried = {k: v for k, v in by_msg.items() if len(v) > 1}
        assert retried, "no retransmitted wire transfer recorded"
        for transfers in retried.values():
            parents = {t.parent for t in transfers}
            assert len(parents) == 1, "retry chain lost its causal parent"

    def test_critical_path_still_partitions(self, chaos_run):
        from repro.obs import critical_path_report

        report = critical_path_report(chaos_run.built)
        for breakdown in report.ranks:
            assert breakdown.category_sum() == pytest.approx(
                breakdown.total, abs=1e-12)

    def test_chrome_export_valid_under_faults(self, chaos_run):
        from repro.obs import chrome_trace, validate_chrome_trace

        doc = chrome_trace(chaos_run.built.obs)
        assert validate_chrome_trace(doc) == []
