"""Tests for the node-count scaling-curve suite (repro.bench.scaling)."""

from __future__ import annotations

import pytest

from repro.bench.scaling import (CURVES, curve_points, render_scaling,
                                 run_scaling_curves)
from repro.bench.telemetry import validate_telemetry
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def eth_doc():
    return run_scaling_curves(fabrics=("eth",), max_nodes=64)


class TestCurveLadders:
    def test_ladders_are_sorted_and_end_at_1024(self):
        for fabric, ladder in CURVES.items():
            counts = [n for n, _preset in ladder]
            assert counts == sorted(counts)
            assert counts[-1] == 1024, fabric

    def test_sci_ladder_uses_torus_presets(self):
        from repro.config import preset

        for nodes, name in CURVES["sci"]:
            cfg = preset(name)
            width = cfg.param_overrides.get("sci_torus_width", 0)
            if width:
                assert width * width == nodes

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fabric"):
            run_scaling_curves(fabrics=("eth", "myrinet"))


class TestScalingDocument:
    def test_is_valid_telemetry(self, eth_doc):
        assert validate_telemetry(eth_doc) == []
        assert eth_doc["suite"] == "scaling"

    def test_records_carry_curve_identity(self, eth_doc):
        points = curve_points(eth_doc)["eth"]
        assert [r["nodes"] for r in points] == [4, 64]
        assert all(r["fabric"] == "eth" for r in points)
        assert all(r["verified"] for r in points)
        assert all(r["events_per_sec"] > 0 for r in points)

    def test_max_nodes_truncates_the_ladder(self):
        doc = run_scaling_curves(fabrics=("sci",), max_nodes=4)
        assert [r["nodes"] for r in doc["records"]] == [4]

    def test_more_nodes_more_events(self, eth_doc):
        """The curve's point: event volume grows with the cluster (the
        simulator is actually exercising the larger topology)."""
        points = curve_points(eth_doc)["eth"]
        assert points[1]["events_executed"] > points[0]["events_executed"]

    def test_render(self, eth_doc):
        text = render_scaling(eth_doc)
        assert "scaling curves" in text
        assert "eth-64" in text
        assert "events/s" in text


class TestScalingCli:
    def test_bench_scaling_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "scaling.json"
        code = main(["bench", "scaling", "--fabric", "eth",
                     "--max-nodes", "4", "--json-out", str(out)])
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "scaling curves" in text
