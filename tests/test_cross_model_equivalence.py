"""Cross-model equivalence: the same computation expressed in different
programming models produces identical results on the same platform —
retargetability without semantic drift (§4.4).

The computation: block-fill an n×n matrix, barrier, lock-protected global
reduction — expressed natively in five APIs.
"""

import numpy as np
import pytest

from repro.config import preset
from repro.models.anl import AnlMacros
from repro.models.hlrc import HlrcApi
from repro.models.jiajia_api import JiaJiaApi
from repro.models.pthreads import PosixThreadsApi
from repro.models.shmem import ShmemApi
from repro.models.spmd import SpmdModel
from repro.models.treadmarks import TreadMarksApi

N = 16


def expected(n_ranks: int) -> float:
    rows = N // n_ranks
    return float(sum((r + 1) * rows * N for r in range(n_ranks)))


def via_spmd(plat):
    model = SpmdModel(plat.hamster)

    def main(m):
        pid = m.spmd_init()
        A = m.spmd_alloc_array((N, N), name="A")
        total = m.spmd_alloc_array((1,), name="t")
        rows = N // m.spmd_num_procs()
        A[pid * rows:(pid + 1) * rows, :] = float(pid + 1)
        m.spmd_barrier()
        m.spmd_lock(0)
        total[0] = float(total[0]) + float(A[pid * rows:(pid + 1) * rows, :].sum())
        m.spmd_unlock(0)
        m.spmd_barrier()
        value = float(total[0])
        m.spmd_exit()
        return value

    return model.run(main)


def via_jiajia(plat):
    api = JiaJiaApi(plat.hamster)

    def main(a):
        pid, hosts = a.jia_init()
        A = a.jia_alloc_array((N, N), name="A")
        total = a.jia_alloc_array((1,), name="t")
        rows = N // hosts
        A[pid * rows:(pid + 1) * rows, :] = float(pid + 1)
        a.jia_barrier()
        a.jia_lock(0)
        total[0] = float(total[0]) + float(A[pid * rows:(pid + 1) * rows, :].sum())
        a.jia_unlock(0)
        a.jia_barrier()
        value = float(total[0])
        a.jia_exit()
        return value

    return api.run(main)


def via_treadmarks(plat):
    api = TreadMarksApi(plat.hamster)

    def main(t):
        t.Tmk_startup()
        pid, nprocs = t.Tmk_proc_id(), t.Tmk_nprocs()
        if pid == 0:
            A = t.Tmk_distribute("A", t.Tmk_malloc_array((N, N), name="A"))
            total = t.Tmk_distribute("t", t.Tmk_malloc_array((1,), name="t"))
        else:
            A = t.Tmk_distribute("A")
            total = t.Tmk_distribute("t")
        rows = N // nprocs
        A[pid * rows:(pid + 1) * rows, :] = float(pid + 1)
        t.Tmk_barrier()
        t.Tmk_lock_acquire(0)
        total[0] = float(total[0]) + float(A[pid * rows:(pid + 1) * rows, :].sum())
        t.Tmk_lock_release(0)
        t.Tmk_barrier()
        value = float(total[0])
        t.Tmk_exit()
        return value

    return api.run(main)


def via_anl(plat):
    api = AnlMacros(plat.hamster)

    def main(a):
        a.MAIN_INITENV()
        pid = a.hamster.task.my_rank()
        nprocs = a.hamster.task.n_tasks()
        A = a.G_MALLOC_ARRAY((N, N), name="A")
        total = a.G_MALLOC_ARRAY((1,), name="t")
        lock = 0
        rows = N // nprocs
        A[pid * rows:(pid + 1) * rows, :] = float(pid + 1)
        a.BARRIER()
        a.LOCK(lock)
        total[0] = float(total[0]) + float(A[pid * rows:(pid + 1) * rows, :].sum())
        a.UNLOCK(lock)
        a.BARRIER()
        value = float(total[0])
        a.MAIN_END()
        return value

    return api.run(main)


def via_shmem(plat):
    api = ShmemApi(plat.hamster)

    def main(s):
        s.start_pes(0)
        me, n_pes = s.shmem_my_pe(), s.shmem_n_pes()
        rows = N // n_pes
        sym = s.shmem_malloc((rows, N), name="block")
        partial = s.shmem_malloc((1,), name="partial")
        sym.write(me, (slice(0, rows), slice(0, N)), float(me + 1))
        partial.write(me, 0, float((me + 1) * rows * N))
        s.shmem_quiet()
        s.shmem_barrier_all()
        total = s.shmem_double_sum_to_all(partial, 0)
        s.shmem_finalize()
        return float(np.asarray(total))

    return api.run(main)


RUNNERS = {
    "spmd": via_spmd,
    "jiajia": via_jiajia,
    "treadmarks": via_treadmarks,
    "anl": via_anl,
    "shmem": via_shmem,
}


@pytest.mark.parametrize("platform", ["sw-dsm-4", "hybrid-4", "smp-2"])
@pytest.mark.parametrize("model", sorted(RUNNERS))
def test_every_model_computes_the_same_sum(platform, model):
    plat = preset(platform).build()
    results = RUNNERS[model](plat)
    target = expected(plat.hamster.n_ranks)
    assert all(abs(r - target) < 1e-9 for r in results), (model, results)


@pytest.mark.parametrize("platform", ["sw-dsm-4", "hybrid-4"])
def test_all_models_agree_pairwise(platform):
    values = set()
    for model, runner in RUNNERS.items():
        plat = preset(platform).build()
        values.add(round(runner(plat)[0], 9))
    assert len(values) == 1, values
