"""Unit + property tests for SharedArray indexing and run lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import preset
from repro.memory.shared_array import index_runs
from tests.conftest import spmd


# ---------------------------------------------------------------- index_runs
def brute_force_bytes(bounds, shape, itemsize):
    """Reference: enumerate every touched byte."""
    arr = np.arange(int(np.prod(shape))).reshape(shape)
    idx = tuple(slice(lo, hi) for lo, hi in bounds)
    touched = set()
    for element in np.asarray(arr[idx]).reshape(-1):
        start = int(element) * itemsize
        touched.update(range(start, start + itemsize))
    return touched


class TestIndexRuns:
    def test_full_2d_is_one_run(self):
        runs = index_runs([(0, 4), (0, 8)], (4, 8), 8)
        assert runs == [(0, 4 * 8 * 8)]

    def test_row_slice_is_one_run(self):
        runs = index_runs([(1, 3), (0, 8)], (4, 8), 8)
        assert runs == [(1 * 64, 2 * 64)]

    def test_column_slice_is_per_row_runs(self):
        runs = index_runs([(0, 4), (2, 5)], (4, 8), 8)
        assert len(runs) == 4
        assert runs[0] == (2 * 8, 3 * 8)

    def test_adjacent_runs_merge(self):
        # Middle rows, all columns: per-row runs merge into one.
        runs = index_runs([(1, 3), (0, 8)], (4, 8), 8)
        assert len(runs) == 1

    def test_empty_selection(self):
        assert index_runs([(2, 2), (0, 8)], (4, 8), 8) == []

    def test_1d(self):
        assert index_runs([(3, 7)], (16,), 8) == [(24, 32)]

    def test_3d_inner_full(self):
        runs = index_runs([(0, 2), (1, 2), (0, 4)], (2, 3, 4), 8)
        assert runs == [(1 * 32, 32), (3 * 32 + 32, 32)]

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_bruteforce(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 6)) for _ in range(ndim))
        bounds = []
        for n in shape:
            lo = data.draw(st.integers(0, n))
            hi = data.draw(st.integers(lo, n))
            bounds.append((lo, hi))
        itemsize = data.draw(st.sampled_from([1, 4, 8]))
        runs = index_runs(bounds, shape, itemsize)
        got = set()
        for off, ln in runs:
            got.update(range(off, off + ln))
        assert got == brute_force_bytes(bounds, shape, itemsize)
        # Runs are sorted, merged, non-overlapping.
        for (o1, l1), (o2, _l2) in zip(runs, runs[1:]):
            assert o1 + l1 < o2


# ------------------------------------------------------------- SharedArray
class TestSharedArrayAccess:
    def test_roundtrip_2d(self, smp2):
        def main(env):
            A = env.alloc_array((8, 8), name="A")
            if env.rank == 0:
                A[2:4, 1:5] = np.arange(8).reshape(2, 4)
            env.barrier()
            return A[2:4, 1:5].tolist()

        res = spmd(smp2, main)
        assert res[0] == res[1] == np.arange(8).reshape(2, 4).tolist()

    def test_integer_index(self, smp2):
        def main(env):
            A = env.alloc_array((4, 4), name="A")
            A[env.rank, 2] = float(env.rank)
            env.barrier()
            return float(A[1 - env.rank, 2])

        assert spmd(smp2, main) == [1.0, 0.0]

    def test_negative_index_normalized(self, smp2):
        def main(env):
            A = env.alloc_array((4,), name="A")
            if env.rank == 0:
                A[-1] = 9.0
            env.barrier()
            return float(A[3])

        assert spmd(smp2, main) == [9.0, 9.0]

    def test_getitem_returns_private_copy(self, smp2):
        def main(env):
            A = env.alloc_array((4,), name="A")
            if env.rank == 0:
                A[:] = 1.0
            env.barrier()
            view = A[:]
            view[:] = 99.0  # must not write through
            env.barrier()
            return float(A[0])

        assert spmd(smp2, main) == [1.0, 1.0]

    def test_strided_slice_rejected(self, smp2):
        def main(env):
            A = env.alloc_array((8,), name="A")
            with pytest.raises(TypeError):
                A[::2]
            with pytest.raises(TypeError):
                A[np.array([1, 2])]
            return True

        assert all(spmd(smp2, main))

    def test_out_of_range_rejected(self, smp2):
        def main(env):
            A = env.alloc_array((4, 4), name="A")
            with pytest.raises(IndexError):
                A[5, 0]
            with pytest.raises(IndexError):
                A[0, 0, 0]
            return True

        assert all(spmd(smp2, main))

    def test_pages_for_index(self, smp2):
        def main(env):
            A = env.alloc_array((1024, 1024), name="A")  # 8 MiB, 2048 pages
            full = A.pages_for_index((slice(None), slice(None)))
            one_row = A.pages_for_index((0, slice(None)))
            return len(full), len(one_row)

        full, one_row = spmd(smp2, main)[0]
        assert full == 2048
        assert one_row == 2  # 8 KiB row spans exactly 2 pages

    def test_scalar_array(self, smp2):
        def main(env):
            A = env.alloc_array((1,), name="s")
            if env.rank == 0:
                A[0] = 3.5
            env.barrier()
            return float(A[0])

        assert spmd(smp2, main) == [3.5, 3.5]

    def test_len_and_ndim(self, smp2):
        def main(env):
            A = env.alloc_array((6, 2), name="A")
            return len(A), A.ndim

        assert spmd(smp2, main)[0] == (6, 2)

    def test_dtype_int(self, smp2):
        def main(env):
            A = env.alloc_array((4,), dtype=np.int32, name="i")
            if env.rank == 0:
                A[:] = np.array([1, 2, 3, 4], dtype=np.int32)
            env.barrier()
            return A[:].sum()

        assert spmd(smp2, main) == [10, 10]
