"""Edge cases for the Table 2 line-counting methodology."""

import pytest

from repro.bench.loc_metrics import (ComplexityRow, count_file,
                                     count_logical_lines)


class TestLogicalLines:
    def test_empty_source(self):
        assert count_logical_lines("") == 0

    def test_only_comments_and_blanks(self):
        assert count_logical_lines("# a\n\n# b\n   \n") == 0

    def test_only_docstring(self):
        assert count_logical_lines('"""module docs\nover lines\n"""\n') == 0

    def test_nested_function_docstrings(self):
        src = (
            "def outer():\n"
            "    '''doc'''\n"
            "    def inner():\n"
            "        '''doc\n        doc'''\n"
            "        return 1\n"
            "    return inner\n"
        )
        assert count_logical_lines(src) == 4  # 2 defs + 2 returns

    def test_async_function_docstring(self):
        src = 'async def f():\n    """doc"""\n    return 1\n'
        assert count_logical_lines(src) == 2

    def test_semicolons_count_once(self):
        # One logical line regardless of statement packing — the "style
        # standardization" behaviour.
        assert count_logical_lines("a = 1; b = 2\n") == 1

    def test_decorators_count(self):
        src = "@property\ndef f(self):\n    return 1\n"
        assert count_logical_lines(src) == 3

    def test_multiline_string_data_counts_once(self):
        src = 'x = """line1\nline2\nline3"""\n'
        assert count_logical_lines(src) == 1

    def test_parenthesized_continuation_one_line(self):
        src = "value = (1 +\n         2 +\n         3)\n"
        assert count_logical_lines(src) == 1

    def test_backslash_continuation_one_line(self):
        src = "value = 1 + \\\n        2\n"
        assert count_logical_lines(src) == 1

    def test_class_attribute_docstringish_comment(self):
        # A bare string after an attribute is an expression statement, NOT a
        # docstring (only the first statement of a suite is).
        src = "class A:\n    x = 1\n    'not a docstring'\n"
        assert count_logical_lines(src) == 3

    def test_count_file(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("# header\nx = 1\n\ny = 2\n")
        assert count_file(str(path)) == 2


class TestComplexityRow:
    def test_zero_calls_is_nan(self):
        import math

        row = ComplexityRow(model="m", lines=10, api_calls=0)
        assert math.isnan(row.lines_per_call)
