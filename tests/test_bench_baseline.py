"""Tests for the baseline store: compare verdicts and the paper-shape gate."""

import copy

import pytest

from repro.bench.baseline import (DEFAULT_THRESHOLDS_PCT, compare_docs,
                                  shape_gate)
from repro.bench.telemetry import SCHEMA


def make_record(rec_id="sw-dsm-2/PI", virtual=1.0, events=1000,
                host=0.5, fingerprint="a" * 64, **extra):
    rec = {
        "id": rec_id, "suite": "test", "benchmark": rec_id.split("/", 1)[1],
        "app": "pi", "preset": rec_id.split("/", 1)[0],
        "platform": "test platform", "native": False, "verified": True,
        "scale": 0.05, "virtual_seconds": virtual,
        "phases": {"total": virtual},
        "label_seconds": {rec_id.split("/", 1)[1]: virtual},
        "events_executed": events, "host_seconds": host,
        "host_seconds_all": [host], "repeats": 1,
        "events_per_sec": events / host if host else 0.0,
        "critical_path": {"compute": virtual, "protocol": 0.0,
                          "wire": 0.0, "blocked": 0.0},
        "fingerprint": fingerprint,
    }
    rec.update(extra)
    return rec


def make_doc(records):
    return {"schema": SCHEMA, "suite": "test", "scale": 0.05, "repeat": 1,
            "host": {}, "records": records}


class TestCompareVerdicts:
    def test_identical_docs_all_ok(self):
        doc = make_doc([make_record()])
        result = compare_docs(doc, copy.deepcopy(doc), shape=False)
        assert {v.verdict for v in result.verdicts} == {"ok"}
        assert result.exit_code() == 0

    def test_virtual_regression_is_hard(self):
        base = make_doc([make_record(virtual=1.0)])
        cur = make_doc([make_record(virtual=1.05)])
        result = compare_docs(cur, base, shape=False)
        regress = result.by_verdict("regress")
        assert [v.metric for v in regress] == ["virtual_seconds"]
        assert regress[0].hard
        assert regress[0].delta_pct == pytest.approx(5.0)
        assert result.exit_code() == 1

    def test_virtual_improvement_detected(self):
        base = make_doc([make_record(virtual=1.0)])
        cur = make_doc([make_record(virtual=0.9)])
        result = compare_docs(cur, base, shape=False)
        improved = result.by_verdict("improve")
        assert "virtual_seconds" in {v.metric for v in improved}
        assert result.exit_code() == 0

    def test_host_regression_is_soft(self):
        base = make_doc([make_record(host=0.5)])
        cur = make_doc([make_record(host=1.0)])  # 2x slower on the host
        result = compare_docs(cur, base, shape=False)
        regress = result.by_verdict("regress")
        assert {v.metric for v in regress} == {"host_seconds",
                                               "events_per_sec"}
        assert not any(v.hard for v in regress)
        assert result.exit_code() == 0  # soft only

    def test_host_noise_within_threshold_ok(self):
        base = make_doc([make_record(host=0.5)])
        cur = make_doc([make_record(host=0.55)])  # 10% < 30% default
        result = compare_docs(cur, base, shape=False)
        assert not result.by_verdict("regress")

    def test_new_benchmark(self):
        base = make_doc([make_record()])
        cur = make_doc([make_record(),
                        make_record(rec_id="sw-dsm-2/SOR", app="sor")])
        result = compare_docs(cur, base, shape=False)
        new = result.by_verdict("new-benchmark")
        assert [v.record_id for v in new] == ["sw-dsm-2/SOR"]
        assert result.exit_code() == 0

    def test_missing_baseline_record(self):
        base = make_doc([make_record(),
                         make_record(rec_id="sw-dsm-2/SOR", app="sor")])
        cur = make_doc([make_record()])
        result = compare_docs(cur, base, shape=False)
        missing = result.by_verdict("missing-baseline")
        assert [v.record_id for v in missing] == ["sw-dsm-2/SOR"]
        assert result.exit_code() == 0

    def test_fingerprint_mismatch_is_hard(self):
        base = make_doc([make_record(fingerprint="a" * 64)])
        cur = make_doc([make_record(fingerprint="b" * 64, virtual=1.0)])
        result = compare_docs(cur, base, shape=False)
        assert result.by_verdict("fingerprint-mismatch")
        assert result.exit_code() == 1
        # no metric verdicts for a mismatched record
        assert not result.by_verdict("ok")

    def test_mad_widens_host_threshold(self):
        # Noisy repeats: MAD = 20% of the median -> tolerance 3*MAD = 60%,
        # so a +50% host regression must read "ok".
        noisy = make_record(host=0.8,
                            host_seconds_all=[0.5, 0.8, 1.0, 1.2, 1.5],
                            repeats=5)
        base = make_doc([make_record(host=0.8)])
        cur = make_doc([copy.deepcopy(noisy)])
        cur["records"][0]["host_seconds"] = 1.2
        result = compare_docs(cur, base, shape=False)
        host_verdicts = [v for v in result.verdicts
                         if v.metric == "host_seconds"]
        assert host_verdicts[0].verdict == "ok"
        assert host_verdicts[0].threshold_pct > \
            DEFAULT_THRESHOLDS_PCT["host_seconds"]

    def test_threshold_override(self):
        base = make_doc([make_record(virtual=1.0)])
        cur = make_doc([make_record(virtual=1.05)])
        result = compare_docs(cur, base, shape=False,
                              thresholds_pct={"virtual_seconds": 10.0})
        assert not result.by_verdict("regress")

    def test_render_mentions_outcome(self):
        base = make_doc([make_record(virtual=1.0)])
        cur = make_doc([make_record(virtual=2.0)])
        text = compare_docs(cur, base, shape=False).render()
        assert "regress" in text and "HARD REGRESSION" in text


def shape_doc(per_preset):
    """Build a doc from preset -> {label: seconds}."""
    records = []
    for preset_name, labels in per_preset.items():
        for label, seconds in labels.items():
            records.append(make_record(
                rec_id=f"{preset_name}/{label}", virtual=seconds,
                label_seconds={label: seconds}))
    return make_doc(records)


GOOD_SHAPE = {
    # hamster ~ native (fig2), hybrid < sw (fig3)
    "sw-dsm-4": {"MatMult": 1.00, "PI": 0.50, "SOR": 2.00},
    "native-jiajia-4": {"MatMult": 0.98, "PI": 0.51, "SOR": 1.95},
    "hybrid-4": {"MatMult": 0.40, "PI": 0.30, "SOR": 0.70},
    # fig4: sw slower than hybrid; MatMult beats the SMP on the hybrid;
    # SMP wins the rest on sw
    "smp-2": {"MatMult": 1.00, "PI": 0.40, "SOR": 0.80, "WATER 288": 0.5},
    "hybrid-2": {"MatMult": 0.90, "PI": 0.42, "SOR": 1.00, "WATER 288": 0.6},
    "sw-dsm-2": {"MatMult": 1.50, "PI": 0.50, "SOR": 4.00, "WATER 288": 2.0},
}


class TestShapeGate:
    def test_good_shape_passes(self):
        checks = shape_gate(shape_doc(GOOD_SHAPE))
        assert len(checks) == 5
        assert all(c.passed for c in checks)

    def test_fig2_band_violation(self):
        bad = copy.deepcopy(GOOD_SHAPE)
        bad["sw-dsm-4"]["MatMult"] = 2.0  # 100% overhead vs native
        failed = [c for c in shape_gate(shape_doc(bad)) if not c.passed]
        assert any(c.figure == "fig2" for c in failed)

    def test_fig3_inversion_detected(self):
        bad = copy.deepcopy(GOOD_SHAPE)
        bad["hybrid-4"]["SOR"] = 3.0  # hybrid slower than SW-DSM
        failed = [c for c in shape_gate(shape_doc(bad)) if not c.passed]
        assert any(c.figure == "fig3" for c in failed)

    def test_fig4_sw_faster_than_hybrid_detected(self):
        bad = copy.deepcopy(GOOD_SHAPE)
        bad["sw-dsm-2"]["SOR"] = 0.5  # SW-DSM suddenly beats the hybrid
        failed = [c for c in shape_gate(shape_doc(bad)) if not c.passed]
        assert any("never faster" in c.claim for c in failed)

    def test_fig4_matmult_crossover_detected(self):
        bad = copy.deepcopy(GOOD_SHAPE)
        bad["hybrid-2"]["MatMult"] = 1.2  # hybrid loses to the SMP
        failed = [c for c in shape_gate(shape_doc(bad)) if not c.passed]
        assert any("MatMult" in c.claim for c in failed)

    def test_missing_platforms_skip_checks(self):
        doc = shape_doc({"sw-dsm-4": {"PI": 1.0}})  # no counterpart data
        assert shape_gate(doc) == []

    def test_shape_violation_fails_compare(self):
        bad = copy.deepcopy(GOOD_SHAPE)
        bad["hybrid-4"]["SOR"] = 3.0
        doc = shape_doc(bad)
        result = compare_docs(doc, copy.deepcopy(doc))
        assert result.shape_violations
        assert result.exit_code() == 1


class TestShapeGateOnRealTelemetry:
    def test_smoke_subset_passes(self):
        """A real (tiny) two-platform run must clear the fig3 check."""
        from repro.bench.telemetry import run_suite_telemetry

        doc = run_suite_telemetry("smoke", scale=0.04, only="4/PI")
        ids = {r["id"] for r in doc["records"]}
        assert ids == {"sw-dsm-4/PI", "hybrid-4/PI", "native-jiajia-4/PI"}
        checks = shape_gate(doc)
        assert checks, "fig2+fig3 checks expected"
        assert all(c.passed for c in checks), [c.describe() for c in checks]
