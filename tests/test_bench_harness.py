"""Tests for the evaluation harness: LoC metrics, runners, report rendering."""

import pytest

from repro.bench.loc_metrics import (ComplexityRow, count_logical_lines,
                                     model_complexity_table)
from repro.bench.report import render_bars, render_table
from repro.bench.runners import (BENCH_LABELS, WORKLOADS, figure4_two_nodes,
                                 run_suite, table1_rows)
from repro.config import preset


class TestLogicalLineCounting:
    def test_comments_and_blanks_ignored(self):
        src = "# comment\n\nx = 1  # trailing\n\n# more\ny = 2\n"
        assert count_logical_lines(src) == 2

    def test_docstrings_ignored(self):
        src = '"""module doc\nspanning lines\n"""\n\ndef f():\n    "f doc"\n    return 1\n'
        assert count_logical_lines(src) == 2  # def f + return

    def test_continuation_lines_normalized(self):
        joined = "x = foo(1,\n        2,\n        3)\n"
        flat = "x = foo(1, 2, 3)\n"
        assert count_logical_lines(joined) == count_logical_lines(flat) == 1

    def test_class_and_method_docstrings(self):
        src = ('class A:\n'
               '    """doc"""\n'
               '    def m(self):\n'
               '        """doc\n        more"""\n'
               '        return 2\n')
        assert count_logical_lines(src) == 3  # class, def, return

    def test_string_assignment_is_code(self):
        # A string *expression* used as data (assigned) is code, not a doc.
        assert count_logical_lines('x = "hello"\n') == 1


class TestComplexityTable:
    def test_covers_all_nine_models(self):
        rows = model_complexity_table()
        assert len(rows) == 9
        assert all(isinstance(r, ComplexityRow) for r in rows)
        assert all(r.lines > 0 and r.api_calls > 0 for r in rows)

    def test_paper_shape_holds(self):
        """Table 2's qualitative structure: the JiaJia subset is the
        smallest layer; thread APIs are the largest; the overall average
        stays in the tens of lines per call."""
        rows = {r.model: r for r in model_complexity_table()}
        jia = rows["JiaJia API (subset)"]
        assert jia.lines == min(r.lines for r in rows.values())
        thread_lines = min(rows["POSIX threads"].lines,
                           rows["WIN32 threads"].lines)
        dsm_lines = max(rows["TreadMarks API"].lines,
                        rows["HLRC API"].lines, jia.lines)
        assert thread_lines > dsm_lines
        average = (sum(r.lines for r in rows.values())
                   / sum(r.api_calls for r in rows.values()))
        assert average < 25  # the paper's headline bound

    def test_lines_per_call(self):
        row = ComplexityRow(model="m", lines=50, api_calls=10)
        assert row.lines_per_call == 5.0


class TestRunners:
    def test_table1(self):
        rows = table1_rows()
        assert ("Matrix Multiplication", "1024x1024 matrix") in rows
        assert any("molecules" in ws for _, ws in rows)

    def test_labels_cover_paper_figures(self):
        assert BENCH_LABELS == ["MatMult", "PI", "SOR opt", "SOR", "LU all",
                                "LU", "LU core", "LU bar", "WATER 288",
                                "WATER 343"]
        assert set(WORKLOADS) == set(BENCH_LABELS)

    def test_workload_scaling(self):
        full = WORKLOADS["MatMult"].params(1.0)
        small = WORKLOADS["MatMult"].params(0.1)
        assert full["n"] == 1024
        assert 32 <= small["n"] < 1024

    def test_lu_labels_share_one_execution(self):
        labels = ["LU all", "LU", "LU core", "LU bar"]
        times = run_suite(preset("hybrid-2"), scale=0.06, labels=labels)
        assert times["LU core"] <= times["LU"] <= times["LU all"]
        assert times["LU bar"] < times["LU all"]

    def test_figure4_normalization(self):
        rows = figure4_two_nodes(scale=0.06, labels=["PI"])
        assert rows["PI"]["hardware"] == 100.0
        assert rows["PI"]["software"] > 100.0  # SW-DSM slower than SMP on pi


class TestReport:
    def test_render_table(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", 2.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "-" in lines[2]
        assert "1.50" in text

    def test_render_bars_signs(self):
        text = render_bars({"up": 5.0, "down": -5.0})
        up_line, down_line = text.splitlines()
        assert "+5.00" in up_line and "-5.00" in down_line
        assert "#" in up_line and "#" in down_line

    def test_render_bars_empty(self):
        assert render_bars({}, title="t") == "t"
