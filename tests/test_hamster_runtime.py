"""Coverage for the Hamster runtime object itself."""

import pytest

from repro.config import ClusterConfig, preset
from repro.errors import ConfigurationError
from tests.conftest import spmd


class TestRuntime:
    def test_platform_description(self):
        assert "jiajia DSM on beowulf" in \
            preset("sw-dsm-4").build().hamster.platform_description()
        assert "(1 nodes, 2 ranks)" in \
            preset("smp-2").build().hamster.platform_description()

    def test_n_ranks(self):
        assert preset("hybrid-4").build().hamster.n_ranks == 4

    def test_check_ready(self):
        plat = preset("smp-2").build()
        plat.hamster.check_ready()  # no raise
        plat.hamster.dsm = None
        with pytest.raises(ConfigurationError):
            plat.hamster.check_ready()

    def test_charge_outside_task_is_free(self):
        plat = preset("smp-2").build()
        plat.hamster.charge_call()  # launcher context: no process, no charge
        assert plat.engine.now == 0.0

    def test_charge_from_unbound_process_is_free(self):
        from repro.sim.process import SimProcess

        plat = preset("smp-2").build()

        def rogue(proc):
            plat.hamster.charge_call()  # process exists but has no rank
            return proc.now

        p = SimProcess(plat.engine, rogue).start()
        plat.engine.run()
        assert p.result == 0.0

    def test_module_stats_registered_in_monitoring(self):
        h = preset("smp-2").build().hamster
        assert set(h.monitoring._modules) >= {"memory", "sync", "task",
                                              "cluster", "consistency"}

    def test_query_statistics_covers_every_rank(self):
        plat = preset("sw-dsm-4").build()
        spmd(plat, lambda env: env.barrier())
        tree = plat.hamster.query_statistics()
        assert set(tree["dsm"]) == {f"rank{r}" for r in range(4)}

    def test_custom_call_overhead_wins_over_params(self):
        plat = ClusterConfig(platform="smp", dsm="smp", nodes=2,
                             call_overhead=1e-3).build()

        def main(env):
            t0 = env.wtime()
            env.hamster.task.my_rank()
            return env.wtime() - t0

        assert max(spmd(plat, main)) == pytest.approx(1e-3)

    def test_run_spmd_returns_in_rank_order(self):
        plat = preset("sw-dsm-4").build()

        def main(env):
            # Finish in reverse rank order on purpose.
            env.hamster.engine.current_process.hold((4 - env.rank) * 1e-3)
            return env.rank

        assert plat.hamster.run_spmd(main) == [0, 1, 2, 3]
