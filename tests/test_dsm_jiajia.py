"""Protocol tests for the JiaJia-style SW-DSM.

These exercise the home-based scope-consistency machinery directly: page
state transitions, fetch/twin/diff lifecycles, lock-bound write notices,
barrier globalization, first-touch homes, and the statistics counters.
"""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import SynchronizationError
from repro.memory.layout import block, cyclic, first_touch, single_home
from repro.memory.page import PageState
from tests.conftest import spmd


def build(nodes=2, **kw):
    cfg = preset(f"sw-dsm-{nodes}")
    for k, v in kw.items():
        setattr(cfg, k, v)
    return cfg.build()


class TestFaultLifecycle:
    def test_read_fault_fetches_and_sets_read_only(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A",
                                distribution=single_home(0))  # 1 page, home 0
            page = A.region.first_page
            if env.rank == 0:
                A[:] = 7.0
            env.barrier()
            if env.rank == 1:
                before = dsm.page_state(1, page)
                value = float(A[0])
                after = dsm.page_state(1, page)
                return before, value, after
            return None

        res = spmd(plat, main)[1]
        assert res == (PageState.INVALID, 7.0, PageState.READ_ONLY)

    def test_write_fault_creates_twin_and_dirty(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            page = A.region.first_page
            env.barrier()
            if env.rank == 1:
                A[0] = 1.0  # remote write fault
                return (dsm.page_state(1, page),
                        page in dsm._twins[1],
                        page in dsm._dirty[1])
            return None

        state, has_twin, is_dirty = spmd(plat, main)[1]
        assert state == PageState.READ_WRITE
        assert has_twin and is_dirty

    def test_home_pages_never_fetch(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A",
                                distribution=single_home(env.hamster.dsm.current_rank() if False else 0))
            if env.rank == 0:
                A[0] = 1.0
                A[0] = 2.0
            env.barrier()
            return dsm.stats(0)["pages_fetched"]

        assert spmd(plat, main)[0] == 0

    def test_flush_reprotects_to_read_only(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            page = A.region.first_page
            env.barrier()
            if env.rank == 1:
                A[0] = 1.0
                env.barrier()  # flush
                return dsm.page_state(1, page), page in dsm._twins[1]
            env.barrier()
            return None

        state, has_twin = spmd(plat, main)[1]
        assert state == PageState.READ_ONLY
        assert not has_twin


class TestScopeConsistency:
    def test_lock_delivers_writes_of_same_scope(self):
        plat = build()

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            if env.rank == 0:
                env.lock(1)
                A[0] = 42.0
                env.unlock(1)
                env.lock(2)  # rendezvous so rank 1 runs after
                env.unlock(2)
            else:
                env.hamster.engine.current_process.hold(0.01)  # let rank 0 go first
                env.lock(1)
                value = float(A[0])
                env.unlock(1)
                return value
            env.barrier()
            return None

        # Deadlock-free completion needs rank1's barrier too; restructure:
        def main2(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 0:
                env.lock(1)
                A[0] = 42.0
                env.unlock(1)
            env.barrier()
            env.lock(1)
            value = float(A[0])
            env.unlock(1)
            env.barrier()
            return value

        assert spmd(plat, main2) == [42.0, 42.0]

    def test_unsynchronized_read_can_be_stale(self):
        """The defining relaxation: without acquiring the writer's scope,
        a cached copy may legitimately remain stale."""
        plat = build()

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            if env.rank == 1:
                _ = float(A[0])  # cache the page (value 0.0)
            env.barrier()
            if env.rank == 0:
                env.lock(1)
                A[0] = 99.0
                env.unlock(1)
                env.hamster.cluster_ctl.send_msg(1, "written")
            else:
                env.hamster.cluster_ctl.recv_msg()
                stale = float(A[0])       # no acquire: may be stale
                env.lock(1)
                fresh = float(A[0])       # acquire of scope 1: must be fresh
                env.unlock(1)
                return stale, fresh
            return None

        stale, fresh = spmd(plat, main)[1]
        assert stale == 0.0
        assert fresh == 99.0

    def test_barrier_globalizes_all_notices(self):
        plat = build(nodes=4)

        def main(env):
            A = env.alloc_array((4096,), name="A", distribution=cyclic())
            _ = A[:]  # cache everything everywhere
            env.barrier()
            A[env.rank * 512:(env.rank + 1) * 512] = float(env.rank + 1)
            env.barrier()
            total = float(A[:].sum())
            return total

        expect = sum(512 * (r + 1) for r in range(4))
        assert spmd(plat, main) == [expect] * 4

    def test_own_writes_do_not_invalidate_self(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[0] = 5.0
            env.barrier()
            if env.rank == 1:
                before = dsm.stats(1)["pages_fetched"]
                _ = float(A[0])  # own write; own copy stayed valid
                return dsm.stats(1)["pages_fetched"] - before
            return None

        assert spmd(plat, main)[1] == 0


class TestMultipleWriter:
    def test_false_sharing_merges_at_home(self):
        """Two ranks write disjoint halves of ONE page concurrently; after
        the barrier both see the union — no lost updates."""
        plat = build()

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 0:
                A[0:256] = 1.0
            else:
                A[256:512] = 2.0
            env.barrier()
            data = A[:]
            return float(data[:256].sum()), float(data[256:].sum())

        for lo, hi in spmd(plat, main):
            assert lo == 256.0 and hi == 512.0

    def test_diff_traffic_counted(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), np.uint8, name="A",
                                distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[0:32] = 9
            env.barrier()
            return dsm.stats(env.rank)["diffs_created"], dsm.stats(env.rank)["diff_bytes"]

        diffs, nbytes = spmd(plat, main)[1]
        assert diffs == 1
        assert nbytes == 32  # diffs are byte-granular: exactly the changed bytes


class TestHomes:
    def test_first_touch_assigns_toucher(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((1024,), name="A", distribution=first_touch())
            # 2 pages; rank r touches page r first.
            env.barrier()
            A[env.rank * 512:(env.rank + 1) * 512] = 1.0
            env.barrier()
            first = A.region.first_page
            return dsm.home_of(first + env.rank)

        homes = spmd(plat, main)
        assert homes == [0, 1]

    def test_block_homes_match_partition(self):
        plat = build(nodes=4)
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((8, 512), name="A", distribution=block())
            env.barrier()
            first = A.region.first_page
            return [dsm.home_of(first + i) for i in range(8)]

        assert spmd(plat, main)[0] == [0, 0, 1, 1, 2, 2, 3, 3]


class TestLocks:
    def test_mutual_exclusion_counter(self):
        plat = build(nodes=4)

        def main(env):
            A = env.alloc_array((512,), name="ctr", distribution=single_home(0))
            if env.rank == 0:
                A[0] = 0.0
            env.barrier()
            for _ in range(5):
                env.lock(3)
                A[0] = float(A[0]) + 1.0
                env.unlock(3)
            env.barrier()
            return float(A[0])

        assert spmd(plat, main) == [20.0] * 4

    def test_try_lock(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            env.barrier()
            if env.rank == 0:
                assert dsm.try_lock(5)            # free -> granted
                env.barrier()                      # let rank 1 try
                env.barrier()
                dsm.unlock(5)
                return True
            env.barrier()
            got = dsm.try_lock(5)                 # held by rank 0 -> refused
            env.barrier()
            return got

        assert spmd(plat, main) == [True, False]

    def test_release_by_non_holder_rejected(self):
        plat = build()

        def main(env):
            if env.rank == 0:
                env.hamster.dsm.lock(7)
            env.barrier()
            if env.rank == 1:
                with pytest.raises(SynchronizationError):
                    env.hamster.dsm.unlock(7)
            env.barrier()
            if env.rank == 0:
                env.hamster.dsm.unlock(7)
            return True

        # The manager-side error surfaces in the engine for remote releases;
        # lock 7 with 2 ranks is managed by rank 1 (7 % 2), so rank 1's
        # release attempt is local and raises directly.
        assert all(spmd(plat, main))

    def test_locks_have_distributed_managers(self):
        plat = build(nodes=4)
        dsm = plat.dsm
        assert [dsm._manager_of(i) for i in range(4)] == [0, 1, 2, 3]


class TestStats:
    def test_fault_and_fetch_counters(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((1024,), name="A", distribution=single_home(0))
            if env.rank == 0:
                A[:] = 1.0
            env.barrier()
            if env.rank == 1:
                _ = A[:]
            env.barrier()
            return dsm.stats(env.rank)

        stats = spmd(plat, main)[1]
        assert stats["read_faults"] == 2   # two pages
        assert stats["pages_fetched"] == 2
        assert stats["barriers"] == 3      # alloc-collective + 2 explicit

    def test_reset_stats(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            env.barrier()
            return True

        spmd(plat, main)
        dsm.reset_stats()
        assert dsm.stats(0)["barriers"] == 0

    def test_capabilities(self):
        plat = build()
        caps = plat.dsm.capabilities()
        assert "software_dsm" in caps
        assert "consistency:scope" in caps
        assert "multiple_writer" in caps
        assert plat.dsm.consistency_model() == "scope"
