"""Property-based protocol equivalence: the crown-jewel test.

For arbitrary (properly synchronized) access schedules, the JiaJia SW-DSM
and the SCI-VM hybrid DSM must produce exactly the data the hardware-
coherent SMP produces. Hypothesis generates random SPMD programs — a
sequence of phases, each phase assigning each rank a set of writes to
random array slices, separated by barriers, plus lock-protected
read-modify-write steps — and we compare the final array contents across
all three substrates byte for byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import preset

N_RANKS = 2
SIDE = 24  # small array; pages still shared because side*8 < page size


@st.composite
def schedules(draw):
    """A random synchronized SPMD program description."""
    n_phases = draw(st.integers(1, 4))
    phases = []
    for _ in range(n_phases):
        ops = []
        for rank in range(N_RANKS):
            n_writes = draw(st.integers(0, 3))
            writes = []
            for _ in range(n_writes):
                r0 = draw(st.integers(0, SIDE - 1))
                r1 = draw(st.integers(r0 + 1, SIDE))
                c0 = draw(st.integers(0, SIDE - 1))
                c1 = draw(st.integers(c0 + 1, SIDE))
                value = draw(st.integers(1, 100))
                writes.append((r0, r1, c0, c1, float(value)))
            ops.append(writes)
        phases.append(ops)
    n_incr = draw(st.integers(0, 4))
    return phases, n_incr


def execute(platform_name, program):
    phases, n_incr = program
    plat = preset(platform_name).build()

    def main(env):
        A = env.alloc_array((SIDE, SIDE), name="A")
        if env.rank == 0:
            A[:, :] = 0.0
        env.barrier()
        for ops in phases:
            # Disjoint-writer discipline per phase: rank r only writes rows
            # congruent to r mod N_RANKS within its slices (avoids racy
            # same-cell writes whose outcome is platform-defined).
            for r0, r1, c0, c1, value in ops[env.rank]:
                for row in range(r0, r1):
                    if row % N_RANKS == env.rank:
                        A[row, c0:c1] = value + env.rank
            env.barrier()
        for _ in range(n_incr):
            env.lock(0)
            A[0, 0] = float(A[0, 0]) + 1.0
            env.unlock(0)
        env.barrier()
        return A[:, :]

    results = plat.hamster.run_spmd(lambda env: main(env))
    # Every rank must observe the same final array after the barrier.
    for other in results[1:]:
        np.testing.assert_array_equal(results[0], other)
    return results[0]


class TestProtocolEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(program=schedules())
    def test_all_substrates_agree(self, program):
        smp = execute("smp-2", program)
        jiajia = execute("sw-dsm-2", program)
        hybrid = execute("hybrid-2", program)
        np.testing.assert_array_equal(smp, jiajia)
        np.testing.assert_array_equal(smp, hybrid)

    @settings(max_examples=10, deadline=None)
    @given(program=schedules())
    def test_jiajia_deterministic(self, program):
        a = execute("sw-dsm-2", program)
        b = execute("sw-dsm-2", program)
        np.testing.assert_array_equal(a, b)
