"""Tests for multi-DSM composition (the §6 future-work extension)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.dsm.composite import CompositeMemorySystem
from repro.dsm.jiajia import JiaJiaSystem
from repro.dsm.scivm import SciVmSystem
from repro.errors import ConfigurationError, MemoryError_
from repro.machine.cluster import Cluster
from repro.memory.layout import block, single_home
from repro.msg.coalesce import MessagingFabric
from repro.sim.engine import Engine
from tests.conftest import spmd


def build_composite(nodes=2):
    cfg = ClusterConfig(platform="sci", dsm="composite", nodes=nodes,
                        name=f"composite-{nodes}")
    return cfg.build()


class TestConstruction:
    def test_config_builds_composite(self):
        plat = build_composite()
        assert isinstance(plat.dsm, CompositeMemorySystem)
        assert set(plat.dsm.children) == {"jiajia", "scivm"}
        assert plat.dsm.primary_key == "jiajia"

    def test_composite_needs_sci_platform(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="beowulf", dsm="composite")

    def test_children_share_address_space(self):
        plat = build_composite()
        for child in plat.dsm.children.values():
            assert child.space is plat.dsm.space
            assert child.allocator is plat.dsm.allocator

    def test_unknown_primary_rejected(self):
        engine = Engine()
        cluster = Cluster.sci_cluster(engine, 2)
        fabric = MessagingFabric(cluster)
        children = {"jiajia": JiaJiaSystem(cluster, fabric=fabric)}
        with pytest.raises(ConfigurationError):
            CompositeMemorySystem(cluster, children, primary="nope")

    def test_prepopulated_child_rejected(self):
        engine = Engine()
        cluster = Cluster.sci_cluster(engine, 2)
        fabric = MessagingFabric(cluster)
        child = JiaJiaSystem(cluster, fabric=fabric)
        child.allocate(4096)
        with pytest.raises(ConfigurationError):
            CompositeMemorySystem(cluster, {"jiajia": child}, primary="jiajia")


class TestRouting:
    def test_regions_route_to_chosen_system(self):
        plat = build_composite()
        dsm = plat.dsm

        def main(env):
            if env.rank == 0:
                a = dsm.make_array_on("jiajia", (64,), name="cached")
                b = dsm.make_array_on("scivm", (64,), name="streamed")
                return dsm.system_of(a.region), dsm.system_of(b.region)
            return None

        assert spmd(plat, main)[0] == ("jiajia", "scivm")

    def test_default_policy_uses_primary(self):
        plat = build_composite()
        dsm = plat.dsm

        def main(env):
            if env.rank == 0:
                region = dsm.allocate(4096, name="default")
                return dsm.system_of(region)
            return None

        assert spmd(plat, main)[0] == "jiajia"

    def test_custom_policy(self):
        plat = build_composite()
        dsm = plat.dsm
        dsm.default_policy = lambda nbytes, name: (
            "scivm" if nbytes > 16384 else "jiajia")

        def main(env):
            if env.rank == 0:
                small = dsm.allocate(4096, name="s")
                large = dsm.allocate(65536, name="l")
                return dsm.system_of(small), dsm.system_of(large)
            return None

        assert spmd(plat, main)[0] == ("jiajia", "scivm")

    def test_foreign_region_rejected(self):
        plat = build_composite()
        dsm = plat.dsm
        from repro.memory.address_space import Region

        fake = Region(999, 0x4000_0000, 4096, 4096)
        with pytest.raises(MemoryError_):
            dsm.system_of(fake)

    def test_free_routes_to_owner(self):
        plat = build_composite()
        dsm = plat.dsm

        def main(env):
            if env.rank == 0:
                region = dsm.allocate_on("scivm", 4096, name="tmp")
                dsm.free(region)
                return dsm.allocator.n_frees
            return None

        assert spmd(plat, main)[0] == 1


class TestSemantics:
    def test_data_correct_across_both_systems(self):
        plat = build_composite()
        dsm = plat.dsm
        arrays = {}

        def main(env):
            if env.rank == 0:
                arrays["a"] = dsm.make_array_on("jiajia", (32,), name="A",
                                                distribution=single_home(0))
                arrays["b"] = dsm.make_array_on("scivm", (32,), name="B",
                                                distribution=single_home(1))
            env.barrier()
            A, B = arrays["a"], arrays["b"]
            if env.rank == 0:
                A[:] = 1.0
                B[0:16] = 2.0
            else:
                B[16:32] = 3.0
            env.barrier()
            return float(A[:].sum()), float(B[:].sum())

        for a_sum, b_sum in spmd(plat, main):
            assert a_sum == 32.0
            assert b_sum == 16 * 2.0 + 16 * 3.0

    def test_unlock_flushes_secondary_writes(self):
        """Release consistency must span systems: writes to a scivm region
        inside a jiajia-locked critical section are visible to the next
        lock holder."""
        plat = build_composite()
        dsm = plat.dsm
        arrays = {}

        def main(env):
            if env.rank == 0:
                arrays["b"] = dsm.make_array_on("scivm", (8,), name="B")
            env.barrier()
            B = arrays["b"]
            for _ in range(2):
                env.lock(1)
                B[0] = float(B[0]) + 1.0
                env.unlock(1)
            env.barrier()
            return float(B[0])

        assert spmd(plat, main) == [4.0, 4.0]

    def test_stats_merge_children(self):
        plat = build_composite()
        dsm = plat.dsm
        arrays = {}

        def main(env):
            if env.rank == 0:
                arrays["a"] = dsm.make_array_on("jiajia", (512,), name="A",
                                                distribution=single_home(0))
                arrays["b"] = dsm.make_array_on("scivm", (512,), name="B",
                                                distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                _ = arrays["a"][:]      # jiajia fetch
                arrays["b"][0] = 1.0    # scivm remote write
            env.barrier()
            return dsm.stats(env.rank)

        stats = spmd(plat, main)[1]
        assert stats["child:jiajia"]["pages_fetched"] >= 1
        assert stats["child:scivm"]["remote_writes"] >= 1
        assert stats["pages_fetched"] >= 1  # merged view
        assert stats["remote_writes"] >= 1

    def test_capabilities_union(self):
        plat = build_composite()
        caps = plat.dsm.capabilities()
        assert "composite" in caps
        assert "software_dsm" in caps      # from jiajia
        assert "hybrid_dsm" in caps        # from scivm
        assert "primary:jiajia" in caps

    def test_home_of_routes(self):
        plat = build_composite()
        dsm = plat.dsm

        def main(env):
            if env.rank == 0:
                arr = dsm.make_array_on("scivm", (512,), name="B",
                                        distribution=single_home(1))
                return dsm.home_of(arr.region.first_page)
            return None

        assert spmd(plat, main)[0] == 1
