"""Tests for host-side profiling (repro.bench.hostprof)."""

import pytest

from repro.bench.hostprof import (HostProfiler, PhaseWallTimers,
                                  profile_host_call)
from repro.config import preset
from tests.conftest import spmd


def tiny_run(plat):
    def main(env):
        x = env.alloc_array((8,), name="x")
        env.barrier()
        if env.rank == 0:
            x[:] = 1.0
        env.barrier()
        return float(x[0])

    return spmd(plat, main)


class TestHostProfiler:
    def test_profiles_a_simulation_run(self):
        plat = preset("sw-dsm-2").build()
        prof = HostProfiler(top=5)
        prof.run(lambda: tiny_run(plat))
        hot = prof.hot_functions()
        assert 0 < len(hot) <= 5
        assert all(f.cumulative_seconds >= f.total_seconds >= 0 or
                   f.cumulative_seconds >= 0 for f in hot)
        # heaviest first
        cums = [f.cumulative_seconds for f in hot]
        assert cums == sorted(cums, reverse=True)
        # engine dispatch must show up in any simulation profile
        all_names = " ".join(f.name for f in prof.hot_functions(top=200))
        assert "engine.py" in all_names

    def test_empty_before_run(self):
        prof = HostProfiler()
        assert prof.hot_functions() == []
        assert not prof.ran

    def test_accumulates_across_runs(self):
        prof = HostProfiler()
        prof.run(lambda: sum(range(1000)))
        first = {f.name: f.calls for f in prof.hot_functions(top=200)}
        prof.run(lambda: sum(range(1000)))
        second = {f.name: f.calls for f in prof.hot_functions(top=200)}
        sums = [n for n in second if "sum" in n]
        assert sums and second[sums[0]] > first[sums[0]]

    def test_returns_callable_result(self):
        result, prof = profile_host_call(lambda: 41 + 1)
        assert result == 42
        assert prof.ran

    def test_render(self):
        prof = HostProfiler(top=3)
        prof.run(lambda: sorted(range(100)))
        text = prof.render()
        assert "host hot functions" in text
        assert "cum ms" in text


class TestPhaseWallTimers:
    def test_attach_measures_and_detach_restores(self):
        plat = preset("sw-dsm-2").build()
        originals = (plat.engine.run, plat.dsm.barrier)
        timers = PhaseWallTimers().attach(plat)
        assert plat.engine.run is not originals[0]
        tiny_run(plat)
        timers.detach()
        assert plat.engine.run == originals[0]
        assert plat.dsm.barrier == originals[1]
        assert set(timers.seconds) == {"event_loop", "am_delivery",
                                       "dsm_protocol"}
        assert timers.entries["event_loop"] >= 1
        assert timers.seconds["event_loop"] > 0
        assert timers.entries["dsm_protocol"] > 0
        data = timers.as_dict()
        assert data["event_loop"]["seconds"] == timers.seconds["event_loop"]

    def test_attach_is_idempotent(self):
        plat = preset("sw-dsm-2").build()
        timers = PhaseWallTimers()
        timers.attach(plat)
        wrapped = plat.engine.run
        timers.attach(plat)
        assert plat.engine.run is wrapped
        timers.detach()

    def test_smp_platform_skips_am_delivery(self):
        plat = preset("smp-2").build()
        assert plat.fabric is None
        timers = PhaseWallTimers().attach(plat)
        tiny_run(plat)
        timers.detach()
        assert "am_delivery" not in timers.seconds
        assert timers.entries["event_loop"] >= 1

    def test_virtual_time_unchanged_by_instrumentation(self):
        bare = preset("sw-dsm-2").build()
        tiny_run(bare)
        timed = preset("sw-dsm-2").build()
        timers = PhaseWallTimers().attach(timed)
        tiny_run(timed)
        timers.detach()
        assert timed.engine.now == bare.engine.now

    def test_render(self):
        plat = preset("sw-dsm-2").build()
        timers = PhaseWallTimers().attach(plat)
        tiny_run(plat)
        timers.detach()
        text = timers.render()
        assert "host phase timers" in text
        assert "event_loop" in text and "dsm_protocol" in text
