"""Tests for the hardware-coherent SMP memory system."""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.sim.engine import Engine
from tests.conftest import spmd


class TestSmpSemantics:
    def test_single_copy_immediately_coherent(self, smp2):
        def main(env):
            A = env.alloc_array((64,), name="A")
            env.barrier()
            if env.rank == 0:
                A[0] = 3.0
                env.hamster.cluster_ctl.send_msg(1, "go")
            else:
                env.hamster.cluster_ctl.recv_msg()
                return float(A[0])
            return None

        assert spmd(smp2, main)[1] == 3.0

    def test_bus_contention_shows_up(self):
        """Two ranks streaming memory simultaneously take ~2x one rank's
        time — the Figure 4 MatMult mechanism."""
        def run(n_ranks):
            plat = ClusterConfig(platform="smp", dsm="smp", nodes=2,
                                 ranks=n_ranks).build()

            def main(env):
                A = env.alloc_array((1 << 20,), np.uint8, name="A")
                env.barrier()
                t0 = env.wtime()
                _ = A[:]
                return env.wtime() - t0

            return max(spmd(plat, main))

        t1, t2 = run(1), run(2)
        assert t2 > 1.8 * t1

    def test_locks_and_barrier(self, smp2):
        def main(env):
            A = env.alloc_array((8,), name="c")
            if env.rank == 0:
                A[0] = 0.0
            env.barrier()
            for _ in range(10):
                env.lock(0)
                A[0] = float(A[0]) + 1.0
                env.unlock(0)
            env.barrier()
            return float(A[0])

        assert spmd(smp2, main) == [20.0, 20.0]

    def test_try_lock(self, smp2):
        dsm = smp2.dsm

        def main(env):
            env.barrier()
            if env.rank == 0:
                ok = dsm.try_lock(1)
                env.barrier()
                env.barrier()
                dsm.unlock(1)
                return ok
            env.barrier()
            got = dsm.try_lock(1)
            env.barrier()
            return got

        assert spmd(smp2, main) == [True, False]

    def test_sync_is_cheap(self, smp2):
        def main(env):
            t0 = env.wtime()
            for _ in range(10):
                env.barrier()
            return (env.wtime() - t0) / 10

        per_barrier = max(spmd(smp2, main))
        assert per_barrier < 20e-6  # OS-primitive cost, no network


class TestSmpConfig:
    def test_needs_single_node(self, engine):
        cl = Cluster.beowulf(engine, 2)
        from repro.dsm.smp import SmpMemorySystem

        with pytest.raises(ConfigurationError):
            SmpMemorySystem(cl)

    def test_ranks_bounded_by_cpus(self, engine):
        cl = Cluster.smp(engine, n_cpus=2)
        from repro.dsm.smp import SmpMemorySystem

        with pytest.raises(ConfigurationError):
            SmpMemorySystem(cl, n_procs=4)

    def test_capabilities_and_model(self, smp2):
        caps = smp2.dsm.capabilities()
        assert "hardware_coherence" in caps
        assert "consistency:processor" in caps
        # Weaker models ride free on the stronger hardware (§4.5).
        assert "consistency:release" in caps
        assert "consistency:scope" in caps
        assert smp2.dsm.consistency_model() == "processor"

    def test_home_is_always_local(self, smp2):
        assert smp2.dsm.home_of(12345) == 0
