"""Page-span coalescing: geometry edge cases and fault-sequence identity.

Spans are a host-side compression of per-page accounting — two integers
per contiguous extent instead of a page list. These tests pin the contract
down at every layer:

* ``Region.span_for`` / ``SharedArray.spans_for_index`` geometry —
  mid-page slice boundaries, one element on each of two pages,
  zero-length views;
* ``PageTable.faulting_in_spans`` returns *identical* fault lists and
  fault counters to the per-page ``faulting_pages`` walk, including spans
  that cross protection-state boundaries;
* the JiaJia access path produces the same fault/fetch sequence (and the
  same dirty sets) as per-page accounting did.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import preset
from repro.memory.layout import single_home
from repro.memory.page import PageState, PageTable
from tests.conftest import spmd

PAGE = 4096
PER_PAGE = PAGE // 8  # float64 items per page


def build(nodes=2, **kw):
    cfg = preset(f"sw-dsm-{nodes}")
    for k, v in kw.items():
        setattr(cfg, k, v)
    return cfg.build()


# ---------------------------------------------------------------- geometry
class TestSpanGeometry:
    def _array(self, plat, n_items=3 * PER_PAGE):
        holder = {}

        def main(env):
            arr = env.alloc_array((n_items,), name="geo",
                                  distribution=single_home(0))
            if env.rank == 0:
                holder["arr"] = arr
            env.barrier()

        spmd(plat, main)
        return holder["arr"]

    def test_spans_match_pages_everywhere(self):
        arr = self._array(build())
        for index in [slice(None), slice(0, 1), slice(100, 200),
                      slice(PER_PAGE - 1, PER_PAGE + 1),
                      slice(PER_PAGE, 2 * PER_PAGE),
                      slice(37, 2 * PER_PAGE + 511)]:
            spans = arr.spans_for_index(index)
            expanded = [p for a, b in spans for p in range(a, b + 1)]
            assert expanded == arr.pages_for_index(index)

    def test_contiguous_slice_is_one_span(self):
        """A multi-page contiguous slice coalesces to a single extent."""
        arr = self._array(build())
        first = arr.region.first_page
        assert arr.spans_for_index(slice(None)) == [(first, first + 2)]
        assert arr.spans_for_index(slice(10, PER_PAGE + 10)) == [(first, first + 1)]

    def test_one_element_on_each_of_two_pages(self):
        arr = self._array(build())
        first = arr.region.first_page
        spans = arr.spans_for_index(slice(PER_PAGE - 1, PER_PAGE + 1))
        assert spans == [(first, first + 1)]
        assert arr.pages_for_index(slice(PER_PAGE - 1, PER_PAGE + 1)) == [
            first, first + 1]

    def test_mid_page_slice_stays_on_one_page(self):
        arr = self._array(build())
        first = arr.region.first_page
        assert arr.spans_for_index(slice(1, PER_PAGE - 1)) == [(first, first)]

    def test_zero_length_view_has_no_spans(self):
        arr = self._array(build())
        assert arr.spans_for_index(slice(5, 5)) == []
        assert arr.pages_for_index(slice(5, 5)) == []

    def test_zero_length_span_for(self):
        arr = self._array(build())
        assert arr.region.span_for(0, 0) is None
        assert arr.region.span_for(PAGE - 1, 2) == (
            arr.region.first_page, arr.region.first_page + 1)


# ----------------------------------------------------- page-table walk
_states = st.dictionaries(st.integers(min_value=0, max_value=48),
                          st.sampled_from([PageState.READ_ONLY,
                                           PageState.READ_WRITE]),
                          max_size=32)
_spans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=48),
              st.integers(min_value=0, max_value=6)),
    max_size=6).map(lambda raw: sorted((a, a + ln) for a, ln in raw))


class TestFaultingInSpans:
    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(states=_states, spans=_spans, write=st.booleans())
    def test_identical_to_per_page_walk(self, states, spans, write):
        span_pt, page_pt = PageTable("span"), PageTable("page")
        for p, s in states.items():
            span_pt.set_state(p, s)
            page_pt.set_state(p, s)
        pages = [p for a, b in spans for p in range(a, b + 1)]
        assert (span_pt.faulting_in_spans(spans, write)
                == page_pt.faulting_pages(pages, write))
        assert span_pt.read_faults == page_pt.read_faults
        assert span_pt.write_faults == page_pt.write_faults

    def test_expansion_only_at_state_boundaries(self):
        """A span crossing INVALID → READ_ONLY → READ_WRITE expands to
        exactly the pages the per-page MMU walk would have faulted."""
        pt = PageTable()
        pt.set_state(11, PageState.READ_ONLY)
        pt.set_state(12, PageState.READ_WRITE)
        assert pt.faulting_in_spans([(10, 13)], write=False) == [10, 13]
        assert pt.faulting_in_spans([(10, 13)], write=True) == [10, 11, 13]
        assert pt.read_faults == 2
        assert pt.write_faults == 3


# ------------------------------------------------------- DSM fault sequence
class TestDsmFaultSequence:
    def test_boundary_write_faults_both_pages(self):
        """One element on each of two remote pages: two write faults, two
        fetches, two twins, both pages dirty."""
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((2 * PER_PAGE,), name="edge",
                                distribution=single_home(0))
            if env.rank == 0:
                A[:] = 1.0
            env.barrier()
            if env.rank == 1:
                A[PER_PAGE - 1:PER_PAGE + 1] = 9.0
                return dsm.stats(1)
            return None

        st1 = spmd(plat, main)[1]
        assert st1["write_faults"] == 2
        assert st1["pages_fetched"] == 2
        assert st1["twins_created"] == 2
        assert len(dsm._dirty[1]) == 2

    def test_mid_page_slice_single_fault(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((2 * PER_PAGE,), name="mid",
                                distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[10:20] = 3.0
                return dsm.stats(1)
            return None

        st1 = spmd(plat, main)[1]
        assert st1["write_faults"] == 1
        assert st1["pages_fetched"] == 1

    def test_second_access_faults_nothing(self):
        """Re-touching pages already writable must not expand the span."""
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((2 * PER_PAGE,), name="re",
                                distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[:] = 1.0
                before = dsm.stats(1)["write_faults"]
                A[5:2 * PER_PAGE - 5] = 2.0
                return before, dsm.stats(1)["write_faults"]
            return None

        before, after = spmd(plat, main)[1]
        assert before == 2 and after == 2

    def test_zero_length_access_is_free(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((PER_PAGE,), name="z",
                                distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                _ = A[7:7]
                return dsm.stats(1)
            return None

        st1 = spmd(plat, main)[1]
        assert st1["read_faults"] == 0
        assert st1["pages_fetched"] == 0

    def test_fault_sequence_matches_per_page_reference(self):
        """The ordered fetch sequence (from the trace) must equal the page
        order the old per-page walk produced: ascending within each access."""
        cfg = preset("sw-dsm-2")
        cfg.trace = True
        plat = cfg.build()

        def main(env):
            A = env.alloc_array((3 * PER_PAGE,), name="seq",
                                distribution=single_home(0))
            if env.rank == 0:
                A[:] = 1.0
            env.barrier()
            if env.rank == 1:
                _ = A[PER_PAGE - 3:2 * PER_PAGE + 3]  # pages 0..2, one access
            env.barrier()

        spmd(plat, main)
        fetched = [ev.fields["page"] for ev in plat.engine.trace
                   if ev.kind == "jj.fetch" and ev.fields["rank"] == 1]
        assert fetched == sorted(fetched)
        assert len(fetched) == 3

    def test_results_unchanged_by_spans(self):
        """End to end: a boundary-heavy kernel computes the same bytes as
        plain numpy."""
        plat = build()

        def main(env):
            A = env.alloc_array((2 * PER_PAGE,), name="bytes",
                                distribution=single_home(0))
            lo = env.rank * PER_PAGE
            A[lo:lo + PER_PAGE] = float(env.rank + 1)
            env.barrier()
            if env.rank == 0:
                A[PER_PAGE - 1:PER_PAGE + 1] = 5.0  # straddles the boundary
            env.barrier()
            return A[:].tobytes()

        ref = np.concatenate([np.full(PER_PAGE, 1.0), np.full(PER_PAGE, 2.0)])
        ref[PER_PAGE - 1:PER_PAGE + 1] = 5.0
        out = spmd(plat, main)
        assert out[0] == out[1] == ref.tobytes()
