"""Tests for the OpenMP-like extension model."""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import ModelError
from repro.models.openmp import OpenMpModel


def build(name="sw-dsm-4"):
    plat = preset(name).build()
    return plat, OpenMpModel(plat.hamster)


class TestIdentity:
    def test_thread_identity(self):
        plat, omp = build()

        def main(m):
            return m.omp_get_thread_num(), m.omp_get_num_threads(), m.omp_in_parallel()

        res = omp.run(main)
        assert res == [(r, 4, True) for r in range(4)]

    def test_manifest(self):
        OpenMpModel.check_manifest()


class TestSchedules:
    def test_static_covers_all_indices_disjointly(self):
        plat, omp = build()

        def main(m):
            return [i for span in m.omp_schedule_static(37) for i in span]

        chunks = omp.run(main)
        flat = sorted(i for c in chunks for i in c)
        assert flat == list(range(37))

    def test_static_chunked_round_robin(self):
        plat, omp = build()

        def main(m):
            return [i for span in m.omp_schedule_static(32, chunk=4)
                    for i in span]

        chunks = omp.run(main)
        assert chunks[0][:8] == [0, 1, 2, 3, 16, 17, 18, 19]
        assert sorted(i for c in chunks for i in c) == list(range(32))

    def test_dynamic_covers_all_indices_once(self):
        plat, omp = build()

        def main(m):
            got = []
            for span in m.omp_schedule_dynamic(50, chunk=4):
                got.extend(span)
                m.hamster.engine.require_process().hold(1e-5)
            m.omp_barrier()
            return got

        chunks = omp.run(main)
        flat = sorted(i for c in chunks for i in c)
        assert flat == list(range(50))

    def test_guided_chunks_shrink(self):
        plat, omp = build("smp-2")

        def main(m):
            if m.omp_get_thread_num() != 0:
                m.omp_barrier()
                return None
            sizes = [len(span) for span in m.omp_schedule_guided(128)]
            m.omp_barrier()
            return sizes

        sizes = omp.run(main)[0]
        assert sum(sizes) == 128
        assert sizes[0] >= sizes[-1]

    def test_parallel_for_computes(self):
        plat, omp = build()
        plat2 = plat  # one shared output array via single

        def main(m):
            out = m.hamster.memory.alloc_array_collective((64,), name="out")

            def body(i):
                out[i] = float(i * i)

            m.omp_parallel_for(64, body, schedule="static")
            return float(out[:].sum())

        expect = float(sum(i * i for i in range(64)))
        assert omp.run(main) == [expect] * 4

    def test_unknown_schedule_rejected(self):
        plat, omp = build("smp-2")

        def main(m):
            with pytest.raises(ModelError):
                m.omp_parallel_for(4, lambda i: None, schedule="magic")
            m.omp_barrier()  # match the other rank's implicit barrier? none
            return True

        # No implicit barrier happens on failure; both ranks raise.
        def safe_main(m):
            try:
                m.omp_parallel_for(4, lambda i: None, schedule="magic")
            except ModelError:
                return True
            return False

        assert all(omp.run(safe_main))


class TestBlocksAndReductions:
    def test_critical_protects_shared_counter(self):
        plat, omp = build()

        def main(m):
            acc = m.hamster.memory.alloc_array_collective((1,), name="acc")
            for _ in range(5):
                m.omp_atomic_add(acc, 0, 1.0)
            m.omp_barrier()
            return float(acc[0])

        assert omp.run(main) == [20.0] * 4

    def test_single_broadcasts_result(self):
        plat, omp = build()
        calls = []

        def main(m):
            def body():
                calls.append(1)
                return 42

            return m.omp_single(body)

        assert omp.run(main) == [42] * 4
        assert len(calls) == 1

    def test_master_runs_on_thread0_only(self):
        plat, omp = build()
        ran = []

        def main(m):
            result = m.omp_master(lambda: ran.append(m.omp_get_thread_num()) or "done")
            m.omp_barrier()
            return result

        res = omp.run(main)
        assert ran == [0]
        assert res[0] == "done" and res[1] is None

    def test_ordered_respects_iteration_order(self):
        plat, omp = build()
        log = []

        def main(m):
            me = m.omp_get_thread_num()
            # Each thread owns one iteration; execute bodies in index order.
            m.omp_ordered(me, 4, lambda: log.append(me))
            m.omp_barrier()
            return True

        assert all(omp.run(main))
        assert log == [0, 1, 2, 3]

    @pytest.mark.parametrize("op,expect", [("+", 0 + 1 + 2 + 3),
                                           ("*", 0),
                                           ("max", 3.0), ("min", 0.0)])
    def test_reductions(self, op, expect):
        plat, omp = build()

        def main(m):
            return m.omp_reduce(float(m.omp_get_thread_num()), op=op)

        assert omp.run(main) == [float(expect)] * 4

    def test_unknown_reduction_rejected(self):
        plat, omp = build("smp-2")

        def main(m):
            try:
                m.omp_reduce(1.0, op="xor")
            except ModelError:
                return True
            return False

        assert all(omp.run(main))

    def test_locks_and_flush(self):
        plat, omp = build("hybrid-2")

        def main(m):
            lock = m.omp_init_lock() if m.omp_get_thread_num() == 0 else None
            m.hamster.cluster_ctl.publish("lk", lock) if lock is not None else None
            m.omp_barrier()
            lock = m.hamster.cluster_ctl.lookup("lk")
            m.omp_set_lock(lock)
            m.omp_unset_lock(lock)
            m.omp_flush()
            return m.omp_get_wtime() > 0

        assert all(omp.run(main))


class TestPortability:
    @pytest.mark.parametrize("platform", ["smp-2", "sw-dsm-2", "hybrid-2"])
    def test_same_dot_product_everywhere(self, platform):
        plat, omp = build(platform)
        rng = np.random.default_rng(1)
        x, y = rng.random(512), rng.random(512)
        expect = float(x @ y)

        def main(m):
            spans = m.omp_schedule_static(512)
            local = sum(float(x[s.start:s.stop] @ y[s.start:s.stop])
                        for s in spans)
            return m.omp_reduce(local, op="+")

        for value in omp.run(main):
            assert abs(value - expect) < 1e-9
