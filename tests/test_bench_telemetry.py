"""Tests for the benchmark telemetry records (repro.bench.telemetry)."""

import copy
import json

import pytest

from repro.bench.telemetry import (SCHEMA, SUITES, config_fingerprint,
                                   load_telemetry, run_suite_telemetry,
                                   run_unit, telemetry_to_json,
                                   validate_telemetry)
from repro.config import preset
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def unit_record():
    """One real record, shared across tests (a ~0.05 s run)."""
    return run_unit("sw-dsm-2", "PI", scale=0.02, repeat=2, suite="test")


class TestRunUnit:
    def test_identity_fields(self, unit_record):
        rec = unit_record
        assert rec["id"] == "sw-dsm-2/PI"
        assert rec["app"] == "pi"
        assert rec["preset"] == "sw-dsm-2"
        assert rec["suite"] == "test"
        assert rec["native"] is False
        assert rec["verified"] is True

    def test_virtual_and_host_metrics(self, unit_record):
        rec = unit_record
        assert rec["virtual_seconds"] > 0
        assert rec["phases"]["total"] == rec["virtual_seconds"]
        assert rec["events_executed"] > 0
        assert rec["host_seconds"] > 0
        assert rec["events_per_sec"] > 0
        assert rec["repeats"] == 2
        assert len(rec["host_seconds_all"]) == 2
        assert rec["host_seconds"] == min(rec["host_seconds_all"])

    def test_critical_path_breakdown_attached(self, unit_record):
        cp = unit_record["critical_path"]
        assert set(cp) == {"compute", "protocol", "wire", "blocked"}
        assert all(v >= 0 for v in cp.values())
        assert cp["compute"] > 0
        # The categories partition each rank's full engine lifetime, which
        # covers (at least) the app's timed region on both ranks.
        assert sum(cp.values()) >= 2 * unit_record["virtual_seconds"]

    def test_virtual_time_deterministic_across_repeats(self):
        # repeat=3 asserts internally; two independent calls must agree too.
        a = run_unit("sw-dsm-2", "PI", scale=0.02, repeat=3)
        b = run_unit("sw-dsm-2", "PI", scale=0.02, repeat=1)
        assert a["virtual_seconds"] == b["virtual_seconds"]
        assert a["events_executed"] == b["events_executed"]
        assert a["fingerprint"] == b["fingerprint"]

    def test_lu_execution_covers_split_labels(self):
        rec = run_unit("sw-dsm-2", "LU all", scale=0.05)
        assert set(rec["label_seconds"]) == {"LU all", "LU", "LU core",
                                             "LU bar"}
        assert rec["label_seconds"]["LU all"] == rec["virtual_seconds"]
        assert rec["label_seconds"]["LU core"] <= rec["virtual_seconds"]

    def test_bad_repeat_rejected(self):
        with pytest.raises(ValueError):
            run_unit("sw-dsm-2", "PI", scale=0.02, repeat=0)


class TestFingerprint:
    def test_stable_for_same_inputs(self):
        a = config_fingerprint(preset("sw-dsm-2"), "pi",
                               {"intervals": 4096}, 0.05, False)
        b = config_fingerprint(preset("sw-dsm-2"), "pi",
                               {"intervals": 4096}, 0.05, False)
        assert a == b and len(a) == 64

    @pytest.mark.parametrize("kwargs", [
        {"app": "sor"},
        {"params": {"intervals": 8192}},
        {"scale": 0.1},
        {"native": True},
    ])
    def test_sensitive_to_every_input(self, kwargs):
        base = dict(app="pi", params={"intervals": 4096}, scale=0.05,
                    native=False)
        a = config_fingerprint(preset("sw-dsm-2"), **base)
        b = config_fingerprint(preset("sw-dsm-2"), **dict(base, **kwargs))
        assert a != b

    def test_sensitive_to_platform(self):
        args = ("pi", {"intervals": 4096}, 0.05, False)
        assert config_fingerprint(preset("sw-dsm-2"), *args) \
            != config_fingerprint(preset("hybrid-2"), *args)


class TestSuiteRunner:
    def test_filtered_suite_round_trips(self, tmp_path):
        doc = run_suite_telemetry("smoke", only="sw-dsm-2/PI")
        assert doc["schema"] == SCHEMA
        assert [r["id"] for r in doc["records"]] == ["sw-dsm-2/PI"]
        assert validate_telemetry(doc) == []
        path = tmp_path / "BENCH_smoke.json"
        path.write_text(telemetry_to_json(doc))
        loaded = load_telemetry(str(path))
        assert loaded == json.loads(telemetry_to_json(doc))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite_telemetry("nope")

    def test_suite_specs_consistent(self):
        for spec in SUITES.values():
            assert spec.scale > 0
            assert len(spec.unit_ids()) == len(set(spec.unit_ids()))


class TestSchemaValidator:
    @pytest.fixture()
    def valid_doc(self, unit_record):
        return {"schema": SCHEMA, "suite": "test", "scale": 0.02,
                "repeat": 2, "host": {},
                "records": [copy.deepcopy(unit_record)]}

    def test_accepts_valid(self, valid_doc):
        assert validate_telemetry(valid_doc) == []

    def test_rejects_non_object(self):
        assert validate_telemetry([1, 2]) != []

    def test_rejects_wrong_schema(self, valid_doc):
        valid_doc["schema"] = "something/9"
        assert any("schema" in e for e in validate_telemetry(valid_doc))

    def test_rejects_empty_records(self, valid_doc):
        valid_doc["records"] = []
        assert any("records" in e for e in validate_telemetry(valid_doc))

    def test_rejects_missing_field(self, valid_doc):
        del valid_doc["records"][0]["virtual_seconds"]
        assert any("virtual_seconds" in e
                   for e in validate_telemetry(valid_doc))

    def test_rejects_wrong_type(self, valid_doc):
        valid_doc["records"][0]["events_executed"] = "many"
        assert any("events_executed" in e
                   for e in validate_telemetry(valid_doc))

    def test_rejects_duplicate_ids(self, valid_doc):
        valid_doc["records"].append(copy.deepcopy(valid_doc["records"][0]))
        assert any("duplicate" in e for e in validate_telemetry(valid_doc))

    def test_rejects_bad_fingerprint(self, valid_doc):
        valid_doc["records"][0]["fingerprint"] = "xyz"
        assert any("fingerprint" in e for e in validate_telemetry(valid_doc))

    def test_rejects_unknown_critical_path_category(self, valid_doc):
        valid_doc["records"][0]["critical_path"]["gpu"] = 1.0
        assert any("critical_path" in e
                   for e in validate_telemetry(valid_doc))

    def test_rejects_negative_virtual_time(self, valid_doc):
        valid_doc["records"][0]["virtual_seconds"] = -1.0
        assert any("negative" in e for e in validate_telemetry(valid_doc))

    def test_load_rejects_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        with pytest.raises(ValueError):
            load_telemetry(str(bad))


class TestEngineCounters:
    def test_events_and_host_time_exposed(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            env.barrier()
            return env.rank

        from tests.conftest import spmd

        spmd(plat, main)
        assert plat.engine.events_executed > 0
        assert plat.engine.host_seconds > 0
        assert plat.engine.events_per_second() == pytest.approx(
            plat.engine.events_executed / plat.engine.host_seconds)

    def test_counters_zero_before_run(self):
        from repro.sim.engine import Engine

        engine = Engine()
        assert engine.events_executed == 0
        assert engine.host_seconds == 0.0
        assert engine.events_per_second() == 0.0
