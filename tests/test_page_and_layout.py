"""Unit tests for page tables and distribution annotations."""

import pytest

from repro.errors import ConfigurationError, ProtectionError
from repro.memory.layout import block, cyclic, explicit, first_touch, single_home
from repro.memory.page import PageState, PageTable


class TestPageState:
    def test_allows_matrix(self):
        assert not PageState.INVALID.allows(write=False)
        assert not PageState.INVALID.allows(write=True)
        assert PageState.READ_ONLY.allows(write=False)
        assert not PageState.READ_ONLY.allows(write=True)
        assert PageState.READ_WRITE.allows(write=False)
        assert PageState.READ_WRITE.allows(write=True)


class TestPageTable:
    def test_default_state_is_invalid(self):
        pt = PageTable()
        assert pt.state(123) is PageState.INVALID

    def test_set_and_invalidate(self):
        pt = PageTable()
        pt.set_state(5, PageState.READ_WRITE)
        assert pt.state(5) is PageState.READ_WRITE
        pt.invalidate(5)
        assert pt.state(5) is PageState.INVALID
        assert len(pt) == 0

    def test_setting_invalid_removes_entry(self):
        pt = PageTable()
        pt.set_state(5, PageState.READ_ONLY)
        pt.set_state(5, PageState.INVALID)
        assert len(pt) == 0

    def test_faulting_pages_and_counters(self):
        pt = PageTable()
        pt.set_state(1, PageState.READ_ONLY)
        pt.set_state(2, PageState.READ_WRITE)
        assert pt.faulting_pages([1, 2, 3], write=False) == [3]
        assert pt.faulting_pages([1, 2, 3], write=True) == [1, 3]
        assert pt.read_faults == 1 and pt.write_faults == 2

    def test_invalidate_many_counts_only_valid(self):
        pt = PageTable()
        pt.set_state(1, PageState.READ_ONLY)
        pt.set_state(2, PageState.READ_ONLY)
        assert pt.invalidate_many([1, 2, 99]) == 2

    def test_check_raises_protection_error(self):
        pt = PageTable("pt0")
        pt.set_state(1, PageState.READ_ONLY)
        pt.check(1, write=False)
        with pytest.raises(ProtectionError):
            pt.check(1, write=True)
        with pytest.raises(ProtectionError):
            pt.check(2, write=False)

    def test_valid_pages_sorted(self):
        pt = PageTable()
        for p in (9, 2, 5):
            pt.set_state(p, PageState.READ_ONLY)
        assert pt.valid_pages() == [2, 5, 9]


class TestDistributions:
    def test_block(self):
        homes = block().assign(8, 4)
        assert homes == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_uneven(self):
        homes = block().assign(5, 4)
        assert homes == [0, 0, 1, 1, 2]  # ceil(5/4)=2 per node, clamped

    def test_cyclic(self):
        assert cyclic().assign(6, 4) == [0, 1, 2, 3, 0, 1]

    def test_single_home(self):
        assert single_home(2).assign(4, 4) == [2, 2, 2, 2]

    def test_single_home_invalid_node(self):
        with pytest.raises(ConfigurationError):
            single_home(7).assign(4, 4)

    def test_explicit(self):
        assert explicit([3, 1, 0]).assign(3, 4) == [3, 1, 0]

    def test_explicit_wrong_length(self):
        with pytest.raises(ConfigurationError):
            explicit([0, 1]).assign(3, 4)

    def test_explicit_bad_node(self):
        with pytest.raises(ConfigurationError):
            explicit([0, 9, 0]).assign(3, 4)

    def test_first_touch_is_lazy(self):
        d = first_touch()
        assert d.lazy
        assert d.assign(3, 4) == [None, None, None]

    def test_eager_policies_not_lazy(self):
        for d in (block(), cyclic(), single_home(0), explicit([0])):
            assert not d.lazy
