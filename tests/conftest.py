"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import preset
from repro.sim.engine import Engine
from repro.sim.process import SimProcess


@pytest.fixture
def engine() -> Engine:
    return Engine()


def run_procs(engine: Engine, *fns, names=None):
    """Start one process per function (each receives its SimProcess), run
    the engine to completion, return the results in order."""
    procs = []
    for i, fn in enumerate(fns):
        name = names[i] if names else f"p{i}"
        procs.append(SimProcess(engine, fn, name=name).start())
    engine.run()
    return [p.result for p in procs]


def spmd(plat, fn, *args):
    """Run ``fn(env, *args)`` on every rank of a built platform."""
    return plat.hamster.run_spmd(lambda env, *a: fn(env, *a), args=args)


@pytest.fixture
def smp2():
    return preset("smp-2").build()


@pytest.fixture
def swdsm4():
    return preset("sw-dsm-4").build()


@pytest.fixture
def hybrid4():
    return preset("hybrid-4").build()
