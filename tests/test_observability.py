"""Tests for the observability layer (repro.obs).

Covers the span recorder semantics, zero-cost-when-disabled guarantees,
rank attribution, critical-path category accounting (the categories must
partition each rank's total runtime exactly), the metrics sampler, and the
Chrome trace exporter + validator.
"""

import json

import pytest

from repro.config import ClusterConfig, loads, preset
from repro.errors import ConfigurationError
from repro.obs import (NULL_OBS, CriticalPathReport, MetricsSampler,
                       ObsRecorder, Span, category_of, chrome_trace,
                       chrome_trace_json, critical_path,
                       critical_path_report, validate_chrome_trace)
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.trace import Tracer


def run_jiajia_workload(observe: bool, metrics_interval=None, nodes: int = 2):
    """Small JiaJia workload: alloc, barrier, contended lock loop."""
    from repro.models.jiajia_api import JiaJiaApi

    cfg = preset(f"sw-dsm-{nodes}")
    cfg.observe = observe
    cfg.metrics_interval = metrics_interval
    built = cfg.build()
    api = JiaJiaApi(built.hamster)
    sums = []

    def main(jia):
        pid, hosts = jia.jia_init()
        a = jia.jia_alloc_array((64,), name="x")
        jia.jia_barrier()
        for _ in range(3):
            jia.jia_lock(1)
            a[pid] = a[pid] + pid + 1.0
            jia.jia_unlock(1)
        jia.jia_barrier()
        sums.append(float(a[:hosts].sum()))
        jia.jia_exit()

    api.run(main)
    return built, sums[0]


class TestNullObserver:
    def test_engine_default_is_null(self):
        engine = Engine()
        assert engine.obs is NULL_OBS
        assert not engine.obs.enabled

    def test_null_span_is_noop(self):
        with NULL_OBS.span("anything", x=1) as span:
            assert span is None
        assert NULL_OBS.current_id() is None
        assert NULL_OBS.spans == []
        NULL_OBS.record("k", begin=0.0, end=1.0)
        assert NULL_OBS.spans == []


class TestObsRecorder:
    def test_nesting_sets_parent(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert rec.current_id() == inner.span_id
            assert rec.current_id() == outer.span_id
        assert inner.parent == outer.span_id
        assert outer.parent is None
        assert rec.current_id() is None
        # creation order; both closed
        assert [s.kind for s in rec.closed()] == ["outer", "inner"]

    def test_explicit_parent_wins(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        with rec.span("a") as a:
            pass
        with rec.span("b"):
            with rec.span("c", parent=a.span_id) as c:
                pass
        assert c.parent == a.span_id

    def test_rank_inherited_from_parent(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        with rec.span("root", rank=3) as root:
            with rec.span("child") as child:
                pass
        assert root.rank == 3 and child.rank == 3

    def test_per_process_stacks_are_independent(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        engine.obs = rec
        seen = {}

        def task(proc, name):
            with rec.span(name):
                proc.hold(1e-3)
                seen[name] = rec.current_id()

        SimProcess(engine, task, args=("p0",)).start()
        SimProcess(engine, task, args=("p1",)).start()
        engine.run()
        s0 = next(s for s in rec.spans if s.kind == "p0")
        s1 = next(s for s in rec.spans if s.kind == "p1")
        assert seen["p0"] == s0.span_id and seen["p1"] == s1.span_id
        assert s0.parent is None and s1.parent is None

    def test_span_times_use_virtual_clock(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        engine.obs = rec

        def task(proc):
            with rec.span("work"):
                proc.hold(2.5)

        SimProcess(engine, task).start()
        engine.run()
        (span,) = rec.spans
        assert span.begin == 0.0 and span.end == 2.5
        assert span.duration == 2.5

    def test_record_completed_interval(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        span = rec.record("net.xfer", begin=1.0, end=2.0, size=64)
        assert span.end == 2.0 and span.get("size") == 64
        assert rec.of_kind("net.xfer") == [span]

    def test_tracer_is_the_span_sink(self):
        engine = Engine(trace=Tracer(enabled=True))
        rec = ObsRecorder(engine)
        with rec.span("dsm.lock", rank=1):
            pass
        events = engine.trace.of_kind("obs.span")
        assert len(events) == 1
        assert events[0]["span_kind"] == "dsm.lock"
        assert events[0]["rank"] == 1

    def test_exception_still_closes_span(self):
        engine = Engine()
        rec = ObsRecorder(engine, sink_to_trace=False)
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert rec.spans[0].end is not None
        assert rec.current_id() is None


class TestInstrumentedRun:
    def test_spans_cover_the_whole_stack(self):
        built, _ = run_jiajia_workload(observe=True)
        kinds = {s.kind for s in built.obs.spans}
        # model API -> service -> DSM protocol -> active message -> wire
        for expected in ("api.call", "svc.lock", "dsm.lock", "dsm.fault",
                         "dsm.fetch", "am.rpc", "am.wait", "am.handle",
                         "net.xfer"):
            assert expected in kinds, expected

    def test_all_spans_closed_and_ranked(self):
        built, _ = run_jiajia_workload(observe=True)
        assert all(s.end is not None for s in built.obs.spans)
        assert all(s.rank is not None for s in built.obs.spans)

    def test_fetch_links_to_wire_transfer(self):
        built, _ = run_jiajia_workload(observe=True)
        rec = built.obs
        fetches = rec.of_kind("dsm.fetch")
        assert fetches
        for fetch in fetches:
            # dsm.fetch -> am.rpc -> ... -> net.xfer somewhere below
            descendants = list(rec.children(fetch.span_id))
            kinds = set()
            while descendants:
                cur = descendants.pop()
                kinds.add(cur.kind)
                descendants.extend(rec.children(cur.span_id))
            assert "am.rpc" in kinds
            assert "net.xfer" in kinds

    def test_cross_rank_handler_links_to_sender(self):
        built, _ = run_jiajia_workload(observe=True)
        rec = built.obs
        handlers = rec.of_kind("am.handle")
        assert handlers
        crossed = [h for h in handlers
                   if rec.get(h.parent) is not None
                   and rec.get(h.parent).rank != h.rank]
        assert crossed, "no cross-rank causal link recorded"

    def test_disabled_run_is_bit_identical(self):
        built_off, sum_off = run_jiajia_workload(observe=False)
        built_on, sum_on = run_jiajia_workload(observe=True)
        assert built_off.engine.now == built_on.engine.now
        assert sum_off == sum_on
        assert built_off.obs is None
        assert built_off.engine.obs is NULL_OBS

    def test_observe_flag_roundtrips_through_config_text(self):
        cfg = preset("sw-dsm-2")
        cfg.observe = True
        cfg.metrics_interval = 0.25e-3
        again = loads(cfg.to_text())
        assert again.observe is True
        assert again.metrics_interval == 0.25e-3

    def test_config_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(metrics_interval=0.0)


class TestCriticalPath:
    def test_categories_partition_each_rank_total(self):
        built, _ = run_jiajia_workload(observe=True, nodes=4)
        report = critical_path_report(built)
        assert report.total_time == built.engine.now
        assert len(report.ranks) == 4
        for breakdown in report.ranks:
            assert breakdown.total == built.engine.now
            assert breakdown.category_sum() == pytest.approx(
                breakdown.total, abs=1e-12)
            for cat in ("compute", "protocol", "wire", "blocked"):
                assert getattr(breakdown, cat) >= 0.0

    def test_category_mapping(self):
        assert category_of("net.xfer") == "wire"
        assert category_of("am.wait") == "blocked"
        assert category_of("dsm.wait") == "blocked"
        assert category_of("dsm.lock") == "protocol"
        assert category_of("api.call") == "protocol"

    def test_chain_is_causally_ordered(self):
        built, _ = run_jiajia_workload(observe=True)
        chain = critical_path(built.obs)
        assert chain
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.begin <= later.begin
        last = max(built.obs.closed(), key=lambda s: (s.end, s.span_id))
        assert chain[-1] is last

    def test_report_requires_observability(self):
        built, _ = run_jiajia_workload(observe=False)
        with pytest.raises(ValueError):
            critical_path_report(built)

    def test_render_mentions_every_rank(self):
        built, _ = run_jiajia_workload(observe=True)
        text = critical_path_report(built).render()
        assert "critical path" in text
        assert "compute ms" in text and "wire ms" in text

    def test_empty_recorder(self):
        rec = ObsRecorder(Engine(), sink_to_trace=False)
        assert critical_path(rec) == []
        report = CriticalPathReport(platform="x", total_time=0.0)
        assert report.totals() == {"wire": 0.0, "blocked": 0.0,
                                   "protocol": 0.0, "compute": 0.0}


class TestMetricsSampler:
    def test_samples_collected_at_interval(self):
        built, _ = run_jiajia_workload(observe=False,
                                       metrics_interval=0.5e-3)
        sampler = built.metrics
        assert len(sampler) > 2
        times = [p.time for p in sampler.samples]
        assert times == sorted(times)
        assert "net.messages" in sampler.keys()
        assert "sync.barriers" in sampler.keys()
        assert "am.qdepth.total" in sampler.keys()

    def test_cumulative_series_monotone(self):
        built, _ = run_jiajia_workload(observe=False,
                                       metrics_interval=0.5e-3)
        series = built.metrics.series("net.bytes")
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] > 0

    def test_rates_derivative(self):
        built, _ = run_jiajia_workload(observe=False,
                                       metrics_interval=0.5e-3)
        rates = built.metrics.rates("net.bytes")
        assert len(rates) == len(built.metrics)
        assert any(rate > 0 for _, rate in rates)

    def test_csv_and_json_exports(self):
        built, _ = run_jiajia_workload(observe=False,
                                       metrics_interval=0.5e-3)
        csv_text = built.metrics.to_csv()
        header = csv_text.splitlines()[0].split(",")
        assert header[0] == "time"
        assert len(csv_text.splitlines()) == len(built.metrics) + 1
        doc = json.loads(built.metrics.to_json())
        assert len(doc) == len(built.metrics)
        assert "values" in doc[0]

    def test_bad_interval_rejected(self):
        built, _ = run_jiajia_workload(observe=False)
        with pytest.raises(ValueError):
            MetricsSampler(built, interval=0.0)

    def test_sampler_never_blocks_termination(self):
        # The sampler is an engine event, not a process: the run must end.
        built, _ = run_jiajia_workload(observe=False, metrics_interval=1e-4)
        assert built.engine._finished


class TestModuleStatsObserve:
    def test_query_stats_aggregate(self):
        from repro.core.monitoring import ModuleStats

        stats = ModuleStats("m")
        for value in (3.0, 1.0, 2.0):
            stats.observe("lat", value)
        agg = stats.query_stats("lat")
        assert agg == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                       "mean": 2.0}
        # query() keeps the historical high-water-mark semantics
        assert stats.query("lat") == 3.0

    def test_observe_respects_prior_incr_high_water(self):
        from repro.core.monitoring import ModuleStats

        stats = ModuleStats("m")
        stats.incr("peak", 10)
        stats.observe("peak", 4.0)
        assert stats.query("peak") == 10  # max(old, observed)
        assert stats.query_stats("peak")["max"] == 4.0

    def test_unknown_counter_and_reset(self):
        from repro.core.monitoring import ModuleStats

        stats = ModuleStats("m")
        assert stats.query_stats("nope")["count"] == 0
        stats.observe("a", 1.0)
        stats.reset("a")
        assert stats.query_stats("a")["count"] == 0
        stats.observe("b", 1.0)
        stats.reset()
        assert stats.query_stats() == {}


class TestChromeExport:
    def test_export_validates(self):
        built, _ = run_jiajia_workload(observe=True,
                                       metrics_interval=0.5e-3)
        doc = chrome_trace(built.obs, metrics=built.metrics,
                           platform_name="sw-dsm-2")
        assert validate_chrome_trace(doc) == []
        text = chrome_trace_json(built.obs, metrics=built.metrics)
        assert validate_chrome_trace(text) == []

    def test_slices_carry_span_identity(self):
        built, _ = run_jiajia_workload(observe=True)
        doc = chrome_trace(built.obs)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(built.obs.spans)
        assert all("span_id" in e["args"] for e in slices)
        assert {e["cat"] for e in slices} <= {"wire", "blocked", "protocol"}

    def test_flow_events_pair_up(self):
        built, _ = run_jiajia_workload(observe=True)
        doc = chrome_trace(built.obs)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert starts, "expected cross-rank flow arrows"
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_counter_and_metadata_events(self):
        built, _ = run_jiajia_workload(observe=True,
                                       metrics_interval=0.5e-3)
        doc = chrome_trace(built.obs, metrics=built.metrics)
        assert any(e["ph"] == "C" for e in doc["traceEvents"])
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert "rank 0" in names and "rank 1" in names

    def test_validator_catches_structural_errors(self):
        assert validate_chrome_trace("not json")[0].startswith("not valid")
        assert validate_chrome_trace([1, 2]) \
            == ["top level must be an object, got list"]
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]
        errors = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": -1.0, "dur": 1.0,
             "pid": 0, "tid": 0},
            {"name": "y", "ts": 0.0},
            {"ph": "f", "id": 7, "ts": 0.0, "pid": 0, "tid": 0},
        ]})
        assert any("'ts' must be a non-negative number" in e for e in errors)
        assert any("missing 'ph'" in e for e in errors)
        assert any("flow finish without start" in e for e in errors)

    def test_otherdata_totals(self):
        built, _ = run_jiajia_workload(observe=True)
        doc = chrome_trace(built.obs, platform_name="p")
        assert doc["otherData"]["platform"] == "p"
        assert doc["otherData"]["spans"] == len(built.obs.spans)
        assert doc["otherData"]["total_virtual_seconds"] == built.engine.now


class TestSpanDataclass:
    def test_open_span_duration_zero(self):
        span = Span(span_id=1, kind="k", begin=1.0)
        assert span.duration == 0.0
        assert span.get("missing", 7) == 7
