"""Coverage for the model base class, registry, and API surface aliases."""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import ModelError
from repro.models import MODEL_REGISTRY, load_model
from repro.models.base import ProgrammingModel
from tests.conftest import spmd


class TestRegistry:
    def test_nine_table2_models(self):
        assert len(MODEL_REGISTRY) == 9

    def test_load_model_returns_classes(self):
        for name in MODEL_REGISTRY:
            cls = load_model(name)
            assert issubclass(cls, ProgrammingModel)
            assert cls.MODEL_NAME == name

    def test_every_model_declares_consistency(self):
        from repro.consistency import MODELS

        for name in MODEL_REGISTRY:
            assert load_model(name).CONSISTENCY in MODELS

    def test_openmp_extension_not_in_table2(self):
        assert "OpenMP-like model" not in MODEL_REGISTRY


class TestBaseClass:
    def test_check_manifest_catches_missing_method(self):
        class Broken(ProgrammingModel):
            MODEL_NAME = "broken"
            API_CALLS = ("exists", "missing")

            def exists(self):
                return None

        with pytest.raises(ModelError, match="missing"):
            Broken.check_manifest()

    def test_model_instantiation_selects_consistency(self, swdsm4):
        model = load_model("TreadMarks API")(swdsm4.hamster)
        # TreadMarks promises release consistency; the optimized
        # implementation over the scope substrate must be active.
        assert model._cons.name == "release"
        assert not model._cons.free_ride  # scope substrate: needs help

    def test_run_passes_args(self, smp2):
        model = load_model("SPMD model")(smp2.hamster)

        def main(m, a, b):
            return (a, b, m.spmd_proc_id())

        results = model.run(main, args=(1, "x"))
        assert results == [(1, "x", 0), (1, "x", 1)]

    def test_api_call_count(self):
        assert load_model("JiaJia API (subset)").api_call_count() == 8


class TestSharedArrayAliases:
    def test_read_write_aliases(self, smp2):
        def main(env):
            A = env.alloc_array((4, 4), name="A")
            env.barrier()
            if env.rank == 0:
                A.write((slice(0, 2), slice(None)), 3.0)
            env.barrier()
            whole = A.read()
            part = A.read((0, slice(None)))
            return float(whole.sum()), float(part.sum())

        whole, part = spmd(smp2, main)[1]
        assert whole == 3.0 * 8
        assert part == 3.0 * 4

    def test_repr_is_informative(self, smp2):
        def main(env):
            A = env.alloc_array((4, 4), name="grid")
            return repr(A)

        text = spmd(smp2, main)[0]
        assert "grid" in text and "(4, 4)" in text


class TestNativeBindingSurface:
    def test_native_api_is_call_compatible(self):
        """Every jia_* method of the HAMSTER binding exists on the native
        binding with the same name (the 'identical binaries' precondition)."""
        from repro.models.jiajia_api import JiaJiaApi
        from repro.models.native_jiajia import NativeJiaJiaApi

        for name in JiaJiaApi.API_CALLS:
            assert callable(getattr(NativeJiaJiaApi, name, None)), name

    def test_native_wtime_and_alloc(self):
        from repro.models.native_jiajia import NativeJiaJiaApi

        plat = preset("native-jiajia-2").build()
        api = NativeJiaJiaApi(plat.hamster)

        def main(a):
            pid, hosts = a.jia_init()
            region = a.jia_alloc(100)
            t = a.jia_wtime()
            a.jia_exit()
            return region.size, hosts, t >= 0

        results = api.run(main)
        assert results[0] == (4096, 2, True)
