"""Documentation honesty checks: the markdown deliverables must reference
real files, and recorded numbers that are cheap to recompute must match the
code (stale docs are bugs here, not cosmetics)."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`benchmarks/(test_[a-z0-9_]+\.py)`", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_every_module_reference_resolves(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`repro\.([a-z_.]+)`", text):
            dotted = match.group(1).rstrip(".")
            if dotted.endswith("*"):
                continue
            parts = dotted.replace(".*", "").split(".")
            path = REPO / "src" / "repro" / Path(*parts)
            assert (path.with_suffix(".py").exists() or path.is_dir()), dotted

    def test_mismatch_note_absent(self):
        """DESIGN.md must not carry the title-mismatch warning — the
        provided text matched the claimed paper."""
        assert "mismatch" not in read("DESIGN.md").split("\n\n")[0].lower()


class TestExperimentsDoc:
    def test_table2_api_counts_match_code(self):
        """The recorded #calls column must equal the live manifests."""
        from repro.models import MODEL_REGISTRY, load_model

        text = read("EXPERIMENTS.md")
        # Rows look like: | SPMD model | 66 | 23 | ...
        recorded = {}
        for line in text.splitlines():
            cells = [c.strip() for c in line.strip("|").split("|")]
            if len(cells) >= 3 and cells[0] in MODEL_REGISTRY:
                recorded[cells[0]] = int(cells[2])
        assert len(recorded) >= 8
        for name, calls in recorded.items():
            assert load_model(name).api_call_count() == calls, name

    def test_referenced_benches_exist(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(?:benchmarks/)?(test_[a-z0-9_]+\.py)`", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_band_claims_match_fig2_bench(self):
        """EXPERIMENTS and the Figure 2 bench must agree on the band."""
        bench = read("benchmarks/test_fig2_overhead.py")
        assert "6.5" in bench and "6.5" in read("EXPERIMENTS.md")


class TestReadme:
    def test_example_files_exist(self):
        text = read("README.md")
        for match in re.finditer(r"`([a-z_]+\.py)`", text):
            name = match.group(1)
            if (REPO / "examples" / name).exists():
                continue
            # Non-example code files mentioned by bare name must exist too.
            hits = list((REPO / "src").rglob(name))
            assert hits, f"README references missing file {name}"

    def test_docs_files_exist(self):
        for name in ("docs/architecture.md", "docs/protocol.md",
                     "docs/porting.md", "CONTRIBUTING.md", "EXPERIMENTS.md",
                     "DESIGN.md"):
            assert (REPO / name).exists(), name

    def test_cli_commands_in_readme_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        parser.parse_args(["platforms"])
        parser.parse_args(["run", "--preset", "hybrid-4", "--app", "lu",
                           "--param", "n=256", "--profile"])
        parser.parse_args(["experiments", "--scale", "1.0"])


class TestProtocolDocMatchesCode:
    def test_adaptive_constants(self):
        from repro.dsm.jiajia import JiaJiaSystem

        text = read("docs/protocol.md")
        assert f"(`{'ASSUME_STREAK'}`" in text or "ASSUME_STREAK" in text
        assert f"({JiaJiaSystem.ASSUME_STREAK})" in text
        assert f"({JiaJiaSystem.ASSUME_REVALIDATE})" in text
