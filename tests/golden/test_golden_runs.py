"""Golden-run snapshot tests — the differential hard gate, in-tree.

Every Fig 2–4 scenario and every chaos scenario (the PR-1 fault plans)
must reproduce its recorded pre-overhaul capture bit for bit: virtual
times, event counts, trace digests, result checksums. A failure here
means a scheduler or cost-path change altered *simulated* behaviour —
host-side optimizations are expected to leave every field untouched.
See docs/performance.md for how to investigate a failure and when
re-recording (``python -m repro.bench.diffcheck --record``) is
legitimate.
"""

from __future__ import annotations

import pytest

from repro.bench import diffcheck

_SCENARIOS = {sc.id: sc for sc in diffcheck.scenarios()}


@pytest.fixture(scope="module")
def goldens():
    return diffcheck.load_goldens()


def test_every_scenario_has_a_golden(goldens):
    missing = sorted(set(_SCENARIOS) - set(goldens["scenarios"]))
    assert missing == [], f"run --record for: {missing}"


@pytest.mark.parametrize("procs", ["thread", "generator"])
@pytest.mark.parametrize("scenario_id", sorted(_SCENARIOS))
def test_scenario_bit_identical(scenario_id, procs, goldens):
    """Every scenario, under BOTH process backends, against the same
    pre-overhaul goldens: the continuation scheduler must reproduce the
    thread-era virtual-time behaviour bit for bit."""
    problems = diffcheck.check_scenario(_SCENARIOS[scenario_id], goldens,
                                        procs=procs)
    assert problems == []


@pytest.mark.parametrize("scenario_id",
                         [sid for sid in sorted(_SCENARIOS)
                          if sid.startswith("chaos/")])
def test_chaos_dual_run_heap_vs_calendar(scenario_id):
    """The calendar queue must replay PR-1 fault plans exactly as the heapq
    reference does — drops, duplicates, delays, crashes and all."""
    sc = _SCENARIOS[scenario_id]
    ref = diffcheck.capture(sc, queue="heap")
    new = diffcheck.capture(sc, queue="calendar")
    assert diffcheck.diff_records(new, ref) == []


@pytest.mark.parametrize("scenario_id",
                         [sid for sid in sorted(_SCENARIOS)
                          if sid.startswith("chaos/")])
def test_chaos_dual_run_thread_vs_generator(scenario_id):
    """Fault plans replay identically on both process backends: crash
    cleanup, retransmission timing, and the typed outcome included."""
    sc = _SCENARIOS[scenario_id]
    ref = diffcheck.capture(sc, procs="thread")
    new = diffcheck.capture(sc, procs="generator")
    assert diffcheck.diff_records(new, ref) == []


def test_figure_dual_run_spot():
    """One figure scenario through both queues (the full sweep runs in CI's
    diffcheck job; this keeps a scheduler-divergence canary in tier-1)."""
    sc = _SCENARIOS["fig/sw-dsm-2/PI"]
    ref = diffcheck.capture(sc, queue="heap")
    new = diffcheck.capture(sc, queue="calendar")
    assert diffcheck.diff_records(new, ref) == []


def test_figure_dual_procs_spot():
    """One figure scenario through both process backends in one invocation
    (the full 45-scenario sweep runs in CI's --dual-procs job)."""
    sc = _SCENARIOS["fig/sw-dsm-2/PI"]
    ref = diffcheck.capture(sc, procs="thread")
    new = diffcheck.capture(sc, procs="generator")
    assert diffcheck.diff_records(new, ref) == []
