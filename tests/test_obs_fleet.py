"""FleetReport: rolling an event log up into fleet metrics.

Synthetic event streams keep these deterministic — the report is a pure
function of (header, events), so a handcrafted log exercises exact
numbers (utilization, ETA, throughput) that a real sweep's host timing
would blur. One integration test at the end runs a real sweep through
the whole chain. Also covers the MetricsSampler edge cases the sweep
console leans on (empty series, single sample, zero-interval guard).
"""

import pytest

from repro.bench.telemetry import CP_CATEGORIES
from repro.fabric.events import EVENTS_SCHEMA
from repro.obs.export import validate_chrome_trace
from repro.obs.fleet import FleetReport, WorkerStats, fleet_report_from_path
from repro.obs.metrics import MetricPoint, MetricsSampler


def header(cells=2, workers=1, suite="s"):
    return {"schema": EVENTS_SCHEMA, "suite": suite, "cells": cells,
            "workers": workers}


def finished_log():
    """One worker, one cache hit, one executed cell; 10s elapsed."""
    return [
        {"t": 0.0, "kind": "sweep-begin"},
        {"t": 0.0, "kind": "worker-spawn", "worker": 0,
         "data": {"pid": 4242}},
        {"t": 0.1, "kind": "cache-hit", "cell": 0, "id": "a"},
        {"t": 0.2, "kind": "enqueued", "cell": 1, "id": "b"},
        {"t": 0.3, "kind": "dispatched", "cell": 1, "worker": 0},
        {"t": 1.0, "kind": "started", "cell": 1, "id": "b", "worker": 0},
        {"t": 2.0, "kind": "heartbeat", "cell": 1, "worker": 0,
         "data": {"events_executed": 500, "virtual_seconds": 0.5}},
        {"t": 6.0, "kind": "done", "cell": 1, "id": "b", "worker": 0,
         "data": {"events_executed": 1000}},
        {"t": 9.0, "kind": "worker-exit", "worker": 0},
        {"t": 10.0, "kind": "sweep-end"},
    ]


class TestFleetReportFinished:
    def report(self):
        return FleetReport(header(), finished_log())

    def test_counts_and_cache_hit_ratio(self):
        rep = self.report()
        assert rep.finished and rep.elapsed == 10.0
        assert rep.resolved_cells() == 2 and rep.remaining_cells() == 0
        assert rep.cache_hit_ratio() == 0.5
        assert rep.eta_seconds() == 0.0

    def test_worker_stats(self):
        rep = self.report()
        ws = rep.workers[0]
        assert ws.pid == 4242
        assert (ws.done, ws.failed) == (1, 0)
        assert ws.busy_seconds == 5.0          # started 1.0 -> done 6.0
        assert ws.utilization(rep.elapsed) == 0.5
        assert ws.events_executed == 1000      # from the done payload
        assert ws.events_per_sec() == 200.0
        assert rep.aggregate_events_per_sec() == 100.0

    def test_to_dict_shape(self):
        d = self.report().to_dict()
        assert d["schema"] == "repro.obs.fleet/1"
        assert d["cells"] == {"total": 2, "resolved": 2, "remaining": 0,
                              "cache_hits": 1, "executed": 1, "failed": 0,
                              "retried": 0}
        assert d["workers"]["0"]["utilization"] == 0.5
        assert d["aggregate_events_per_sec"] == 100.0

    def test_prometheus_text(self):
        text = self.report().to_prometheus()
        assert '# TYPE repro_sweep_cells gauge' in text
        assert 'repro_sweep_cells{suite="s",outcome="cache-hit"} 1' in text
        assert 'repro_sweep_cache_hit_ratio{suite="s"} 0.5' in text
        assert 'repro_sweep_worker_utilization{suite="s",worker="0"} 0.5' \
            in text
        # every sample line belongs to a HELP/TYPE'd metric
        for line in text.splitlines():
            assert line.startswith(("#", "repro_sweep_"))

    def test_chrome_trace_one_track_per_worker(self):
        trace = self.report().chrome_trace()
        assert validate_chrome_trace(trace) == []
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in slices] == ["b"]
        assert slices[0]["pid"] == 0 and slices[0]["ts"] == 1.0e6
        assert slices[0]["dur"] == 5.0e6
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "worker 0"
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"]["value"] == 500

    def test_render_names_the_required_signals(self):
        text = self.report().render()
        assert "w0" in text
        assert "cache hit ratio: 50%" in text
        assert "events/s" in text
        assert "ETA: done" in text


class TestFleetReportLive:
    def live_log(self):
        # 4 cells, one done in 2s, one still running at t=5
        return [
            {"t": 0.0, "kind": "sweep-begin"},
            {"t": 0.0, "kind": "worker-spawn", "worker": 0,
             "data": {"pid": 1}},
            {"t": 1.0, "kind": "started", "cell": 0, "id": "a", "worker": 0},
            {"t": 3.0, "kind": "done", "cell": 0, "id": "a", "worker": 0,
             "data": {"events_executed": 100}},
            {"t": 3.0, "kind": "started", "cell": 1, "id": "b", "worker": 0},
            {"t": 5.0, "kind": "heartbeat", "cell": 1, "worker": 0,
             "data": {"events_executed": 40, "virtual_seconds": 0.1}},
        ]

    def test_eta_projects_from_completed_cells(self):
        rep = FleetReport(header(cells=4), self.live_log())
        assert not rep.finished
        assert rep.resolved_cells() == 1 and rep.remaining_cells() == 3
        # one finished cell took 2s; 3 remain on 1 active worker
        assert rep.eta_seconds() == pytest.approx(6.0)

    def test_eta_is_none_without_history(self):
        rep = FleetReport(header(cells=4), self.live_log()[:3])
        assert rep.eta_seconds() is None
        assert "ETA: n/a" in rep.render()

    def test_running_cell_counts_toward_busy_and_events(self):
        rep = FleetReport(header(cells=4), self.live_log())
        ws = rep.workers[0]
        assert ws.state == "running b"
        assert ws.busy_seconds == 4.0    # 1->3 done + 3->5 still running
        assert ws.events_executed == 140  # 100 done + 40 from the beat
        assert "40 ev / 0.100s" in rep.render()

    def test_live_trace_has_an_open_slice(self):
        trace = FleetReport(header(cells=4), self.live_log()).chrome_trace()
        assert validate_chrome_trace(trace) == []
        live = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e["args"].get("live")]
        assert len(live) == 1 and live[0]["dur"] == 2.0e6


class TestFleetReportFailures:
    def test_kill_death_and_retry_accounting(self):
        events = [
            {"t": 0.0, "kind": "sweep-begin"},
            {"t": 0.0, "kind": "worker-spawn", "worker": 0,
             "data": {"pid": 1}},
            {"t": 1.0, "kind": "started", "cell": 0, "id": "a", "worker": 0},
            {"t": 2.0, "kind": "worker-kill", "cell": 0, "worker": 0,
             "data": {"progress": {"events_executed": 64,
                                   "virtual_seconds": 0.1}}},
            {"t": 2.1, "kind": "retried", "cell": 0},
            {"t": 2.2, "kind": "worker-respawn", "worker": 1,
             "data": {"pid": 2}},
            {"t": 3.0, "kind": "started", "cell": 0, "id": "a", "worker": 1},
            {"t": 4.0, "kind": "failed", "cell": 0, "id": "a", "worker": 1,
             "data": {"kind": "timeout"}},
            {"t": 5.0, "kind": "worker-death", "worker": 1,
             "data": {"exitcode": -9}},
            {"t": 6.0, "kind": "sweep-end"},
        ]
        rep = FleetReport(header(cells=1, workers=2), events)
        assert (rep.kills, rep.deaths, rep.respawns) == (1, 1, 1)
        assert rep.counts["retried"] == 1
        assert rep.workers[0].state == "killed"
        assert rep.workers[0].events_executed == 64  # progress-at-kill
        assert rep.workers[1].state == "dead"
        assert rep.workers[1].failed == 1
        d = rep.to_dict()
        assert d["worker_kills"] == 1 and d["worker_deaths"] == 1
        text = rep.to_prometheus()
        assert 'repro_sweep_worker_kills_total{suite="s"} 1' in text
        # killed slice still lands on the trace so the gap is visible
        trace = rep.chrome_trace()
        assert validate_chrome_trace(trace) == []


class TestCriticalPathJoin:
    def test_totals_sum_over_records(self):
        records = [
            {"critical_path": {"compute": 1.0, "wire": 0.5}},
            {"critical_path": {"compute": 2.0, "blocked": 0.25}},
        ]
        rep = FleetReport(header(), finished_log(), records=records)
        totals = rep.critical_path_totals()
        assert set(totals) == set(CP_CATEGORIES)
        assert totals["compute"] == 3.0 and totals["wire"] == 0.5
        assert "critical_path_totals" in rep.to_dict()
        assert 'repro_sweep_critical_path_seconds{suite="s",' \
            'category="compute"} 3' in rep.to_prometheus()


class TestWorkerStatsEdges:
    def test_zero_division_guards(self):
        ws = WorkerStats(worker=0)
        assert ws.events_per_sec() == 0.0
        assert ws.utilization(0.0) == 0.0
        rep = FleetReport(header(), [{"t": 0.0, "kind": "sweep-begin"}])
        assert rep.cache_hit_ratio() == 0.0
        assert rep.aggregate_events_per_sec() == 0.0


class TestMetricsSamplerEdges:
    """Edge cases of the per-interval surfaces the consoles consume."""

    def sampler(self):
        # samples can be appended directly: rates/to_csv are pure
        return MetricsSampler.__new__(MetricsSampler)

    def make(self, samples):
        s = self.sampler()
        s.samples = samples
        return s

    def test_empty_series(self):
        s = self.make([])
        assert s.rates("net.bytes") == []
        assert s.to_csv() == "time\n"
        assert s.keys() == [] and len(s) == 0

    def test_single_sample_rate_uses_origin(self):
        s = self.make([MetricPoint(time=2.0, values={"net.bytes": 10.0})])
        assert s.rates("net.bytes") == [(2.0, 5.0)]
        assert s.to_csv() == "time,net.bytes\n2.000000000,10\n"

    def test_zero_interval_guard(self):
        # two samples at the same instant: rate is 0.0, not a ZeroDivision
        s = self.make([MetricPoint(time=0.0, values={"k": 1.0}),
                       MetricPoint(time=0.0, values={"k": 5.0})])
        assert s.rates("k") == [(0.0, 0.0), (0.0, 0.0)]

    def test_missing_key_reads_as_zero(self):
        s = self.make([MetricPoint(time=1.0, values={"a": 1.0}),
                       MetricPoint(time=2.0, values={"a": 2.0, "b": 4.0})])
        assert s.series("b") == [(1.0, 0.0), (2.0, 4.0)]
        assert s.rates("b")[-1] == (2.0, 4.0)
        assert "a,b" in s.to_csv().splitlines()[0]

    def test_bad_interval_is_rejected(self):
        class FakePlatform:
            engine = None

        with pytest.raises(ValueError):
            MetricsSampler(FakePlatform(), interval=0.0)


class TestIntegration:
    def test_real_sweep_through_the_whole_chain(self, tmp_path):
        from repro.bench.telemetry import telemetry_to_json
        from repro.fabric import GridSpec, ResultCache, run_sweep

        spec = GridSpec(presets=("smp-2",), labels=("PI", "MatMult"),
                        scales=(0.04,), suite="fleet-int")
        ev = tmp_path / "events.jsonl"
        man = tmp_path / "manifest.json"
        tel = tmp_path / "telemetry.json"
        result = run_sweep(spec, workers=2,
                           cache=ResultCache(str(tmp_path / "cache")),
                           events=str(ev), heartbeat=0.02)
        result.manifest.save(str(man))
        tel.write_text(telemetry_to_json(result.doc))

        rep = fleet_report_from_path(str(ev), manifest_path=str(man),
                                     telemetry_path=str(tel))
        assert rep.finished
        assert rep.resolved_cells() == 2
        assert validate_chrome_trace(rep.chrome_trace()) == []
        d = rep.to_dict()
        assert d["cache"]["stores"] == 2      # joined from the manifest
        assert sum(d["critical_path_totals"].values()) > 0.0
        text = rep.render()
        assert "cache hit ratio:" in text and "ETA:" in text
