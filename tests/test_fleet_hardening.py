"""FleetReport hardening: degenerate and malformed event logs.

A live ``sweep watch`` tails a log that may be header-only, truncated
mid-write, or missing fields — the report must keep answering (with
zeros, not ZeroDivisionError or AttributeError) and every exporter must
stay loadable. Also covers the sharing-gauge rollup that rides on joined
telemetry records (``bench run --sharing``).
"""

import math

from repro.obs.export import validate_chrome_trace
from repro.obs.fleet import FleetReport


def record(rec_id="a", **sharing):
    """Minimal telemetry record, optionally carrying a sharing rollup."""
    rec = {"id": rec_id, "critical_path": {"compute": 1.0}}
    if sharing:
        base = {"schema": "repro.obs.sharing/1", "ping_pong_pages": 0,
                "false_sharing_pages": 0, "false_sharing_ranges": [],
                "top_hot_page": None, "top_hot_page_fault_rate_hz": 0.0,
                "hot_lock": None, "barrier_max_skew_s": 0.0}
        base.update(sharing)
        rec["sharing"] = base
    return rec


class TestEmptyReport:
    """No events at all — the moment after `sweep run` creates the log."""

    def report(self):
        return FleetReport({}, [])

    def test_no_division_by_zero_anywhere(self):
        rep = self.report()
        assert rep.elapsed == 0.0
        assert rep.cache_hit_ratio() == 0.0
        assert rep.aggregate_events_per_sec() == 0.0
        assert rep.resolved_cells() == 0
        assert rep.remaining_cells() == 0
        assert rep.eta_seconds() == 0.0      # nothing left, not None
        assert rep.total_events() == 0

    def test_exports_stay_loadable(self):
        rep = self.report()
        d = rep.to_dict()
        assert d["cells"]["total"] == 0
        assert not math.isnan(d["cache_hit_ratio"])
        prom = rep.to_prometheus()
        assert "repro_sweep_cells" in prom
        assert "nan" not in prom
        assert rep.render()          # console rendering must not raise
        assert validate_chrome_trace(rep.chrome_trace()) == []

    def test_no_records_means_no_sharing_gauges(self):
        rep = self.report()
        assert rep.sharing_totals() is None
        assert "hot_page_fault_rate" not in rep.to_prometheus()
        assert "sharing_totals" not in rep.to_dict()


class TestNoCompletedCells:
    """Workers spawned, cells started, nothing finished yet: ETA must be
    'unknown', never a divide-by-zero over the empty duration history."""

    def report(self):
        events = [
            {"t": 0.0, "kind": "sweep-begin"},
            {"t": 0.0, "kind": "worker-spawn", "worker": 0,
             "data": {"pid": 1}},
            {"t": 1.0, "kind": "started", "cell": 0, "id": "a", "worker": 0},
        ]
        return FleetReport({"cells": 4}, events)

    def test_eta_is_unknown_not_crash(self):
        rep = self.report()
        assert rep.cell_durations == []
        assert rep.eta_seconds() is None
        assert rep.remaining_cells() == 4

    def test_live_busy_time_and_render(self):
        rep = self.report()
        ws = rep.workers[0]
        assert ws.state == "running a"
        assert ws.utilization(rep.elapsed) == 0.0   # elapsed == started_at
        assert "running a" in rep.render()
        assert validate_chrome_trace(rep.chrome_trace()) == []


class TestMalformedEvents:
    def test_spawn_without_worker_id_survives(self):
        rep = FleetReport({}, [
            {"t": 0.0, "kind": "worker-spawn", "data": {"pid": 7}},
            {"t": 0.5, "kind": "worker-respawn", "data": {"pid": 8}},
        ])
        assert rep.workers == {}
        assert rep.respawns == 1

    def test_null_timestamps_and_cells(self):
        rep = FleetReport({}, [
            {"t": None, "kind": "worker-spawn", "worker": 0, "data": {}},
            {"t": 1.0, "kind": "started", "cell": None, "id": "x",
             "worker": 0},
            {"t": 2.0, "kind": "done", "cell": None, "id": "x", "worker": 0,
             "data": {"events_executed": 10}},
        ])
        ws = rep.workers[0]
        assert ws.done == 1
        assert ws.slices[0][2] == -1          # sentinel cell index
        assert validate_chrome_trace(rep.chrome_trace()) == []

    def test_done_without_started_counts_but_adds_no_busy_time(self):
        rep = FleetReport({}, [
            {"t": 3.0, "kind": "done", "cell": 0, "id": "a", "worker": 0,
             "data": {"events_executed": 100}},
        ])
        ws = rep.workers[0]
        assert ws.done == 1 and ws.busy_seconds == 0.0
        assert ws.events_per_sec() == 0.0     # zero busy time guarded

    def test_kill_with_empty_progress(self):
        rep = FleetReport({}, [
            {"t": 1.0, "kind": "started", "cell": 0, "id": "a", "worker": 0},
            {"t": 2.0, "kind": "worker-kill", "worker": 0, "cell": None,
             "data": {}},
        ])
        assert rep.kills == 1
        assert rep.workers[0].state == "killed"


class TestSharingGauges:
    def test_rollup_over_records(self):
        rep = FleetReport({"suite": "s"}, [], records=[
            record("a", ping_pong_pages=3, false_sharing_pages=2,
                   top_hot_page_fault_rate_hz=100.0),
            record("b", ping_pong_pages=1, false_sharing_pages=0,
                   top_hot_page_fault_rate_hz=250.0),
            {"id": "c", "critical_path": {}},   # no sharing: skipped
        ])
        totals = rep.sharing_totals()
        assert totals == {"hot_page_fault_rate_hz": 250.0,
                          "ping_pong_pages": 4.0,
                          "false_sharing_pages": 2.0}

    def test_prometheus_exposition(self):
        rep = FleetReport({"suite": "s"}, [], records=[
            record("a", ping_pong_pages=2, false_sharing_pages=1,
                   top_hot_page_fault_rate_hz=42.5)])
        prom = rep.to_prometheus()
        assert 'repro_sweep_hot_page_fault_rate{suite="s"} 42.5' in prom
        assert 'repro_sweep_ping_pong_pages{suite="s"} 2' in prom
        assert 'repro_sweep_false_sharing_pages{suite="s"} 1' in prom
        for name in ("repro_sweep_hot_page_fault_rate",
                     "repro_sweep_ping_pong_pages",
                     "repro_sweep_false_sharing_pages"):
            assert f"# TYPE {name} gauge" in prom

    def test_gauges_absent_without_sharing_records(self):
        rep = FleetReport({"suite": "s"}, [],
                          records=[{"id": "a", "critical_path": {}}])
        assert rep.sharing_totals() is None
        assert "hot_page_fault_rate" not in rep.to_prometheus()

    def test_to_dict_carries_rollup(self):
        rep = FleetReport({"suite": "s"}, [],
                          records=[record("a", ping_pong_pages=1)])
        assert rep.to_dict()["sharing_totals"]["ping_pong_pages"] == 1.0
