"""Protocol tests for the SCI-VM-style hybrid DSM."""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.dsm.scivm.mapping import RemoteMapper
from repro.errors import ProtectionError
from repro.machine.cluster import Cluster
from repro.machine.params import PAPER_PLATFORM
from repro.memory.layout import block, cyclic, first_touch, single_home
from repro.sim.engine import Engine
from tests.conftest import spmd


def build(nodes=2):
    return preset(f"hybrid-{nodes}").build()


class TestAccessPath:
    def test_local_access_uses_memory_bus_not_sci(self):
        plat = build()
        sci = plat.cluster.sci

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=block())
            env.barrier()
            if env.rank == 0:
                A[0:64] = 1.0  # page 0 is homed on rank 0: local
            env.barrier()
            return True

        spmd(plat, main)
        assert sci.remote_writes == 0

    def test_remote_access_issues_sci_transactions(self):
        plat = build()
        sci = plat.cluster.sci
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[0:4] = 1.0         # remote write
                _ = A[0:4]           # remote read
            env.barrier()
            return dsm.stats(env.rank)

        stats = spmd(plat, main)[1]
        assert stats["remote_writes"] == 1
        assert stats["remote_reads"] == 1
        assert sci.remote_writes >= 1 and sci.remote_reads >= 1

    def test_first_remote_access_pays_mapping_once(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[0] = 1.0
                A[1] = 2.0
                A[2] = 3.0
            env.barrier()
            return dsm.stats(env.rank)["pages_mapped"]

        assert spmd(plat, main)[1] == 1  # one page, mapped once

    def test_data_immediately_visible(self):
        """Hardware data path: one physical copy, no staleness."""
        plat = build()

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 0:
                A[0] = 5.0
                env.hamster.cluster_ctl.send_msg(1, "go")
            else:
                env.hamster.cluster_ctl.recv_msg()
                return float(A[0])  # no lock needed: single copy
            return None

        assert spmd(plat, main)[1] == 5.0

    def test_run_split_across_page_boundary(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            # 2 pages; page 0 home=0, page 1 home=1 (block over 2 ranks).
            A = env.alloc_array((1024,), name="A", distribution=block())
            env.barrier()
            if env.rank == 0:
                A[:] = 1.0  # half local, half remote
            env.barrier()
            return dsm.stats(env.rank)

        stats = spmd(plat, main)[0]
        assert stats["remote_writes"] == 1   # only the remote page's chunk


class TestSync:
    def test_lock_and_barrier_use_atomics(self):
        plat = build()
        sci = plat.cluster.sci

        def main(env):
            env.hamster.dsm.lock(1)
            env.hamster.dsm.unlock(1)
            env.barrier()
            return True

        spmd(plat, main)
        assert sci.atomics >= 2 * 2 + 2  # 2 per lock/unlock pair + barrier arrivals

    def test_unlock_flushes_write_buffer(self):
        plat = build()
        sci = plat.cluster.sci

        def main(env):
            if env.rank == 0:
                env.hamster.dsm.lock(1)
                env.hamster.dsm.unlock(1)
            env.barrier()
            return True

        spmd(plat, main)
        # flush cost is charged; visible via the atomics + stats counters
        assert sci.atomics > 0

    def test_counter_under_lock(self):
        plat = build(4)

        def main(env):
            A = env.alloc_array((512,), name="c", distribution=single_home(0))
            if env.rank == 0:
                A[0] = 0.0
            env.barrier()
            for _ in range(3):
                env.lock(2)
                A[0] = float(A[0]) + 1.0
                env.unlock(2)
            env.barrier()
            return float(A[0])

        assert spmd(plat, main) == [12.0] * 4

    def test_try_lock(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            env.barrier()
            if env.rank == 0:
                ok = dsm.try_lock(9)
                env.barrier()
                env.barrier()
                dsm.unlock(9)
                return ok
            env.barrier()
            got = dsm.try_lock(9)
            env.barrier()
            return got

        assert spmd(plat, main) == [True, False]


class TestMapper:
    def test_att_eviction(self, engine):
        cl = Cluster.sci_cluster(engine, 2)
        mapper = RemoteMapper(cl.sci, 0, att_entries=2)

        def body(proc):
            cl.engine._set_current(proc)
            assert mapper.ensure_mapped(1)
            assert mapper.ensure_mapped(2)
            assert not mapper.ensure_mapped(1)  # already mapped
            assert mapper.ensure_mapped(3)       # evicts page 1 (FIFO)
            return mapper.is_mapped(1), mapper.is_mapped(2), mapper.is_mapped(3)

        from tests.conftest import run_procs
        res = run_procs(engine, body)[0]
        assert res == (False, True, True)
        assert mapper.evictions == 1

    def test_require_mapped(self, engine):
        cl = Cluster.sci_cluster(engine, 2)
        mapper = RemoteMapper(cl.sci, 0)
        with pytest.raises(ProtectionError):
            mapper.require_mapped(5)


class TestProperties:
    def test_consistency_model_and_capabilities(self):
        plat = build()
        assert plat.dsm.consistency_model() == "release"
        caps = plat.dsm.capabilities()
        assert "hybrid_dsm" in caps
        assert "hardware_data_path" in caps
        assert "remote_put_get" in caps

    def test_first_touch_home(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((1024,), name="A", distribution=first_touch())
            env.barrier()
            A[env.rank * 512:(env.rank + 1) * 512] = 1.0
            env.barrier()
            return dsm.home_of(A.region.first_page + env.rank)

        assert spmd(plat, main) == [0, 1]

    def test_needs_sci_network(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="beowulf", dsm="scivm")
