"""Advanced thread-API behaviours: cancellation states, APCs, suspend /
resume bookkeeping, priorities, and thread models over the composite DSM."""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.models.pthreads import (PTHREAD_CANCEL_DISABLE,
                                   PTHREAD_CANCEL_ENABLE, EINVAL,
                                   PosixThreadsApi)
from repro.models.win32 import (STILL_ACTIVE, WAIT_OBJECT_0, Win32ThreadsApi)


class TestPthreadCancellation:
    def test_cancel_disabled_thread_survives(self):
        plat = preset("smp-2").build()
        api = PosixThreadsApi(plat.hamster)

        def main(p):
            def body(_):
                p.pthread_setcancelstate(PTHREAD_CANCEL_DISABLE)
                proc = p.hamster.engine.require_process()
                for _ in range(10):
                    proc.hold(1e-3)
                    p.pthread_testcancel()   # ignored while disabled
                return "survived"

            tid = p.pthread_create(body, None)
            p.hamster.engine.require_process().hold(2e-3)
            p.pthread_cancel(tid)
            return p.pthread_join(tid)[1]

        assert api.run(main) == "survived"

    def test_setcancelstate_invalid(self):
        plat = preset("smp-2").build()
        api = PosixThreadsApi(plat.hamster)

        def main(p):
            return p.pthread_setcancelstate(42)

        assert api.run(main) == EINVAL

    def test_cancel_of_finished_thread_harmless(self):
        plat = preset("smp-2").build()
        api = PosixThreadsApi(plat.hamster)

        def main(p):
            tid = p.pthread_create(lambda _: "done", None)
            p.hamster.engine.require_process().hold(1e-3)
            assert p.pthread_cancel(tid) == 0
            return p.pthread_join(tid)[1]

        assert api.run(main) == "done"


class TestWin32ThreadControl:
    def test_suspend_resume_counts(self):
        plat = preset("smp-2").build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            h = w.CreateThread(lambda _: w.Sleep(5) or 1)
            assert w.SuspendThread(h) == 0      # previous suspend count
            assert w.ResumeThread(h) == 1       # was suspended
            assert w.ResumeThread(h) == 0       # was not
            w.WaitForSingleObject(h)
            return w.GetExitCodeThread(h)

        assert api.run(main) == 1

    def test_priority_roundtrip(self):
        plat = preset("smp-2").build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            h = w.CreateThread(lambda _: w.Sleep(1))
            assert w.SetThreadPriority(h, 2)
            level = w.GetThreadPriority(h)
            w.WaitForSingleObject(h)
            return level

        assert api.run(main) == 2

    def test_queue_user_apc_runs_on_target_rank(self):
        plat = preset("sw-dsm-4").build()
        api = Win32ThreadsApi(plat.hamster)
        dsm = plat.dsm
        where = []

        def main(w):
            h = w.CreateRemoteThread(2, lambda _: w.Sleep(10))
            assert w.QueueUserAPC(lambda arg: where.append(dsm.current_rank()),
                                  h, None)
            w.WaitForSingleObject(h)
            return True

        assert api.run(main)
        assert where == [2]

    def test_terminate_thread_marks_exit_code(self):
        plat = preset("smp-2").build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            h = w.CreateThread(lambda _: w.Sleep(60_000))  # long sleeper
            assert w.TerminateThread(h, exit_code=99)
            return w.GetExitCodeThread(h)

        assert api.run(main) == 99

    def test_closed_handle_rejected(self):
        from repro.errors import ModelError

        plat = preset("smp-2").build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            m = w.CreateMutex()
            w.CloseHandle(m)
            with pytest.raises(ModelError):
                w.WaitForSingleObject(m)
            return True

        assert api.run(main)

    def test_handle_kind_mismatch_rejected(self):
        from repro.errors import ModelError

        plat = preset("smp-2").build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            m = w.CreateMutex()
            with pytest.raises(ModelError):
                w.GetExitCodeThread(m)  # mutex is not a thread
            return True

        assert api.run(main)


class TestThreadsOnComposite:
    """Thread APIs over the multi-DSM platform: full-stack integration."""

    def test_pthreads_mutex_counter_on_composite(self):
        plat = ClusterConfig(platform="sci", dsm="composite", nodes=2).build()
        api = PosixThreadsApi(plat.hamster)

        def main(p):
            arr = p.hamster.dsm.make_array_on("scivm", (1,), name="c")
            arr[0] = 0.0
            mutex = p.pthread_mutex_init()

            def body(_):
                for _ in range(3):
                    p.pthread_mutex_lock(mutex)
                    arr[0] = float(arr[0]) + 1.0
                    p.pthread_mutex_unlock(mutex)

            tids = [p.pthread_create(body, None) for _ in range(2)]
            for t in tids:
                p.pthread_join(t)
            return float(arr[0])

        assert api.run(main) == 6.0

    def test_win32_events_on_composite(self):
        plat = ClusterConfig(platform="sci", dsm="composite", nodes=2).build()
        api = Win32ThreadsApi(plat.hamster)

        def main(w):
            ev = w.CreateEvent(manual_reset=False, initial_state=False)
            h = w.CreateThread(lambda _: w.WaitForSingleObject(ev))
            w.Sleep(1)
            w.SetEvent(ev)
            w.WaitForSingleObject(h)
            return w.GetExitCodeThread(h)

        assert api.run(main) == WAIT_OBJECT_0
