"""Property tests (hypothesis): seeded fault plans are masked and repeatable.

Two properties over randomly drawn plans with drop-rate < 30%:

1. **Masking** — with reliable messaging on, a faulty run of a small shared-
   array kernel on ``sw-dsm-2`` produces memory *bitwise identical* to the
   fault-free run.
2. **Determinism** — running the same plan + seed twice yields the identical
   event trace (modulo process pids, which are interpreter-global).
"""

from __future__ import annotations

import re

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import preset
from repro.faults import FaultPlan, LinkFaults
from tests.conftest import spmd

_PID = re.compile(r"#\d+")


def _kernel(env):
    """Small SPMD kernel: per-rank writes, a reduction, raw bytes out."""
    arr = env.alloc_array((8,), dtype=float, name="prop")
    lo, hi = env.rank * 4, env.rank * 4 + 4
    for i in range(lo, hi):
        arr[i] = (i + 1) * 1.5
    env.barrier()
    total = float(arr[:].sum())
    env.barrier()
    return arr[:].tobytes(), total


def _run(plan):
    cfg = preset("sw-dsm-2")
    cfg.trace = True
    cfg.faults = plan
    plat = cfg.build()
    results = spmd(plat, _kernel)
    trace = [(ev.time, ev.kind,
              tuple(sorted((k, _PID.sub("", v) if isinstance(v, str) else v)
                           for k, v in ev.fields.items())))
             for ev in plat.engine.trace]
    return results, trace, plat


_FAULT_FREE = None


def _fault_free_bytes():
    global _FAULT_FREE
    if _FAULT_FREE is None:
        _FAULT_FREE = _run(None)[0]
    return _FAULT_FREE


plans = st.builds(
    lambda seed, drop, dup, delay: FaultPlan(
        seed=seed,
        link=LinkFaults(drop_rate=drop, dup_rate=dup, delay_rate=delay,
                        delay_max=200e-6),
        heartbeat=False),
    seed=st.integers(min_value=0, max_value=2**31),
    drop=st.floats(min_value=0.0, max_value=0.29),
    dup=st.floats(min_value=0.0, max_value=0.2),
    delay=st.floats(min_value=0.0, max_value=0.3))


# derandomize: the masking property is probabilistic in the tail (a plan
# near the 30% drop bound can exhaust one message's retry budget with
# ~1e-6 probability), so explore a fixed, known-good example set instead
# of resampling per run.
@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=plans)
def test_bounded_loss_is_fully_masked(plan):
    """drop < 30% + retries → results bitwise equal to the fault-free run."""
    results, _, plat = _run(plan)
    assert results == _fault_free_bytes()
    assert plat.fabric.layer.delivery_failures == 0


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(plan=plans)
def test_same_plan_same_trace(plan):
    """Same plan + seed → identical event trace and fault statistics."""
    results1, trace1, plat1 = _run(plan)
    results2, trace2, plat2 = _run(plan)
    assert results1 == results2
    assert trace1 == trace2
    assert plat1.faults.stats() == plat2.faults.stats()
    assert plat1.engine.now == plat2.engine.now
