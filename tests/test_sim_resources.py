"""Unit + property tests for virtual-time synchronization resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, SynchronizationError
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.resources import SimBarrier, SimCondition, SimLock, SimQueue, SimSemaphore
from tests.conftest import run_procs


class TestSimLock:
    def test_mutual_exclusion(self, engine):
        lock = SimLock(engine)
        inside = []

        def body(proc, i):
            with lock:
                inside.append(i)
                assert len(inside) == i + 1  # one at a time, FIFO
                proc.hold(1.0)

        run_procs(engine, *(lambda p, i=i: body(p, i) for i in range(3)))
        assert inside == [0, 1, 2]
        assert engine.now == 3.0  # fully serialized

    def test_fifo_ordering(self, engine):
        lock = SimLock(engine)
        order = []

        def body(proc, i):
            proc.hold(0.001 * i)  # arrival order = index order
            with lock:
                order.append(i)
                proc.hold(1.0)

        run_procs(engine, *(lambda p, i=i: body(p, i) for i in range(5)))
        assert order == [0, 1, 2, 3, 4]

    def test_release_by_non_owner_rejected(self, engine):
        lock = SimLock(engine)

        def owner(proc):
            lock.acquire()
            proc.hold(2.0)
            lock.release()

        def intruder(proc):
            proc.hold(1.0)
            with pytest.raises(SynchronizationError):
                lock.release()

        run_procs(engine, owner, intruder)

    def test_reacquire_rejected(self, engine):
        lock = SimLock(engine)

        def body(proc):
            lock.acquire()
            with pytest.raises(SynchronizationError):
                lock.acquire()
            lock.release()

        run_procs(engine, body)

    def test_locked_property(self, engine):
        lock = SimLock(engine)

        def body(proc):
            assert not lock.locked
            with lock:
                assert lock.locked
            assert not lock.locked

        run_procs(engine, body)


class TestSimSemaphore:
    def test_initial_value_consumed(self, engine):
        sem = SimSemaphore(engine, value=2)

        def body(proc):
            sem.acquire()
            return proc.now

        assert run_procs(engine, body, body) == [0.0, 0.0]

    def test_blocks_until_release(self, engine):
        sem = SimSemaphore(engine, value=0)

        def taker(proc):
            sem.acquire()
            return proc.now

        def giver(proc):
            proc.hold(2.0)
            sem.release()

        t, _ = run_procs(engine, taker, giver)
        assert t == 2.0

    def test_bulk_release(self, engine):
        sem = SimSemaphore(engine, value=0)

        def taker(proc):
            sem.acquire()
            return proc.now

        def giver(proc):
            proc.hold(1.0)
            sem.release(3)

        res = run_procs(engine, taker, taker, taker, giver)
        assert res[:3] == [1.0, 1.0, 1.0]
        assert sem.value == 0

    def test_negative_initial_rejected(self, engine):
        with pytest.raises(SimulationError):
            SimSemaphore(engine, value=-1)


class TestSimCondition:
    def test_wait_signal(self, engine):
        cond = SimCondition(engine)
        state = {"ready": False}

        def waiter(proc):
            with cond.lock:
                while not state["ready"]:
                    cond.wait()
            return proc.now

        def signaler(proc):
            proc.hold(3.0)
            with cond.lock:
                state["ready"] = True
                cond.signal()

        t, _ = run_procs(engine, waiter, signaler)
        assert t == 3.0

    def test_broadcast_wakes_all(self, engine):
        cond = SimCondition(engine)

        def waiter(proc):
            with cond.lock:
                cond.wait()
            return proc.now

        def caster(proc):
            proc.hold(1.0)
            with cond.lock:
                cond.broadcast()

        res = run_procs(engine, waiter, waiter, waiter, caster)
        assert res[:3] == [1.0, 1.0, 1.0]

    def test_wait_without_lock_rejected(self, engine):
        cond = SimCondition(engine)

        def body(proc):
            with pytest.raises(SynchronizationError):
                cond.wait()

        run_procs(engine, body)


class TestSimQueue:
    def test_fifo_delivery(self, engine):
        q = SimQueue(engine)

        def producer(proc):
            for i in range(3):
                proc.hold(1.0)
                q.put(i)

        def consumer(proc):
            return [q.get() for _ in range(3)]

        _, got = run_procs(engine, producer, consumer)
        assert got == [0, 1, 2]

    def test_get_blocks_in_virtual_time(self, engine):
        q = SimQueue(engine)

        def consumer(proc):
            q.get()
            return proc.now

        def producer(proc):
            proc.hold(5.0)
            q.put("x")

        t, _ = run_procs(engine, consumer, producer)
        assert t == 5.0

    def test_try_get(self, engine):
        q = SimQueue(engine)

        def body(proc):
            assert q.try_get() is None
            q.put(1)
            assert q.try_get() == 1

        run_procs(engine, body)


class TestSimBarrier:
    def test_all_parties_synchronize(self, engine):
        bar = SimBarrier(engine, 3)

        def body(proc, i):
            proc.hold(float(i))
            bar.wait()
            return proc.now

        res = run_procs(engine, *(lambda p, i=i: body(p, i) for i in range(3)))
        assert res == [2.0, 2.0, 2.0]  # all leave when the slowest arrives

    def test_generations(self, engine):
        bar = SimBarrier(engine, 2)
        gens = []

        def body(proc):
            gens.append(bar.wait())
            gens.append(bar.wait())

        run_procs(engine, body, body)
        assert sorted(gens) == [0, 0, 1, 1]

    def test_single_party_barrier_never_blocks(self, engine):
        bar = SimBarrier(engine, 1)

        def body(proc):
            return [bar.wait(), bar.wait()]

        assert run_procs(engine, body) == [[0, 1]]

    def test_invalid_party_count(self, engine):
        with pytest.raises(SimulationError):
            SimBarrier(engine, 0)


class TestLockFairnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.integers(min_value=0, max_value=50),
                           min_size=2, max_size=8))
    def test_grant_order_matches_arrival_order(self, delays):
        """Whatever the arrival pattern, the lock grants strictly in
        arrival order (ties by start order)."""
        engine = Engine()
        lock = SimLock(engine)
        arrivals, grants = [], []

        def body(proc, i, d):
            proc.hold(d * 1e-3)
            arrivals.append((proc.now, i))
            lock.acquire()
            grants.append(i)
            proc.hold(1.0)  # force queuing
            lock.release()

        for i, d in enumerate(delays):
            SimProcess(engine, lambda p, i=i, d=d: body(p, i, d)).start()
        engine.run()
        expected = [i for _, i in sorted(arrivals, key=lambda t: (t[0],))]
        # Stable arrival order: holds of equal delay arrive in start order,
        # which `sorted` preserves.
        assert grants == expected
