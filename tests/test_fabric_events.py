"""The fleet's flight recorder: event log, heartbeats, progress-at-kill.

Covers the structured event log contract end to end: the writer/reader
pair, live tailing over complete lines only, the ``validate_events``
schema gate, the engine host hook heartbeats flow through, the sweep
determinism guarantee (enabling the log cannot change canonical
records), symmetric progress callbacks, and the manifest's new
cache-stats / progress-at-kill surfaces.
"""

import json

import pytest

from repro.fabric import (EVENT_KINDS, EVENTS_SCHEMA, EventLog, GridSpec,
                          ResultCache, canonical_records_json, read_events,
                          run_sweep, tail_events, validate_events)
from repro.fabric.manifest import CellOutcome, SweepManifest
from repro.sim.engine import Engine, clear_host_hook, set_host_hook

SMALL = GridSpec(presets=("smp-2", "sw-dsm-2"), labels=("PI", "MatMult"),
                 scales=(0.04,))


def small_cache(tmp_path, name="cache"):
    return ResultCache(str(tmp_path / name))


class TestEventLog:
    def test_writes_header_then_flushed_event_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path), suite="s", cells=3, workers=2) as log:
            log.emit("sweep-begin")
            log.emit("enqueued", cell=0, id="a", key="k0")
            # flushed per line: a concurrent reader sees both already
            lines = path.read_text().splitlines()
            assert len(lines) == 3
        header, events = read_events(str(path))
        assert header["schema"] == EVENTS_SCHEMA
        assert (header["suite"], header["cells"], header["workers"]) == \
            ("s", 3, 2)
        assert [e["kind"] for e in events] == ["sweep-begin", "enqueued"]
        assert events[1]["cell"] == 0 and events[1]["key"] == "k0"

    def test_timestamps_never_go_backwards(self):
        log = EventLog(suite="s")  # in-memory only
        ts = [log.emit(k)["t"] for k in ("sweep-begin", "sweep-end")] + \
            [log.emit("worker-spawn", worker=0)["t"]]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            EventLog(suite="s").emit("teleported")

    def test_tail_skips_header_and_partial_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), suite="s", cells=1)
        log.emit("sweep-begin")
        events, offset = tail_events(str(path), 0)
        assert [e["kind"] for e in events] == ["sweep-begin"]
        # a torn trailing line is left for the next call
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 9.0, "kind": "sweep-en')
            fh.flush()
            events, offset2 = tail_events(str(path), offset)
            assert events == [] and offset2 == offset
            fh.write('d"}\n')
        events, _ = tail_events(str(path), offset2)
        assert [e["kind"] for e in events] == ["sweep-end"]
        log.close()


class TestValidateEvents:
    def header(self, **over):
        d = {"schema": EVENTS_SCHEMA, "suite": "s", "cells": 1, "workers": 1}
        d.update(over)
        return json.dumps(d)

    def test_accepts_a_minimal_valid_log(self):
        lines = [self.header(),
                 '{"t": 0.0, "kind": "sweep-begin"}',
                 '{"t": 0.5, "kind": "sweep-end"}']
        assert validate_events(lines) == []

    @pytest.mark.parametrize("line,needle", [
        ('{"t": 0.1, "kind": "warp"}', "unknown kind"),
        ('{"t": -1, "kind": "sweep-end"}', "non-negative"),
        ('{"kind": "sweep-end"}', "'t' must be"),
        ('{"t": 0.1, "kind": "done"}', "'cell' must be"),
        ('{"t": 0.1, "kind": "worker-spawn"}', "'worker' must be"),
        ('{"t": 0.1, "kind": "heartbeat", "cell": 0, "worker": 0}',
         "missing 'data'"),
        ('{"t": 0.1, "kind": "heartbeat", "cell": 0, "worker": 0, '
         '"data": {"events_executed": "many"}}', "must be a number"),
    ])
    def test_flags_bad_event_lines(self, line, needle):
        lines = [self.header(), '{"t": 0.0, "kind": "sweep-begin"}', line]
        assert any(needle in err for err in validate_events(lines))

    def test_flags_backwards_time_and_missing_begin(self):
        lines = [self.header(),
                 '{"t": 2.0, "kind": "sweep-end"}',
                 '{"t": 1.0, "kind": "worker-exit", "worker": 0}']
        errors = validate_events(lines)
        assert any("backwards" in err for err in errors)
        assert any("sweep-begin" in err for err in errors)

    def test_flags_foreign_header_and_empty_log(self):
        assert any("schema" in e for e in
                   validate_events([self.header(schema="nope/9")]))
        assert validate_events([]) == ["event log is empty (no header line)"]

    def test_unreadable_path_reports_not_raises(self, tmp_path):
        errors = validate_events(str(tmp_path / "missing.jsonl"))
        assert errors and "cannot read" in errors[0]


class TestEngineHostHook:
    def teardown_method(self):
        clear_host_hook()

    def run_some_events(self, n=10):
        engine = Engine()

        def chain(remaining):
            if remaining:
                engine.schedule(0.001, lambda: chain(remaining - 1))

        chain(n)
        engine.run()
        return engine

    def test_default_hook_fires_every_n_events(self):
        seen = []
        set_host_hook(lambda eng: seen.append(eng.events_executed),
                      every_events=3)
        self.run_some_events(10)
        assert seen and all(c % 3 == 0 for c in seen)

    def test_hook_does_not_touch_virtual_time(self):
        baseline = self.run_some_events(10).now
        set_host_hook(lambda eng: None, every_events=1)
        assert self.run_some_events(10).now == baseline

    def test_hook_disarms_itself_on_exception(self):
        calls = []

        def boom(engine):
            calls.append(1)
            raise RuntimeError("observer crashed")

        set_host_hook(boom, every_events=1)
        self.run_some_events(10)     # must not propagate the error
        assert len(calls) == 1

    def test_bad_interval_is_rejected(self):
        with pytest.raises(ValueError):
            set_host_hook(lambda eng: None, every_events=0)


class TestSweepEvents:
    def test_serial_sweep_produces_a_valid_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        result = run_sweep(SMALL, cache=small_cache(tmp_path),
                           events=str(path))
        assert validate_events(str(path)) == []
        assert result.event_log is not None and len(result.event_log) > 0
        kinds = [e["kind"] for e in result.event_log.events]
        assert kinds[0] == "sweep-begin" and kinds[-1] == "sweep-end"
        assert kinds.count("enqueued") == 4 == kinds.count("done")
        assert set(kinds) <= set(EVENT_KINDS)

    def test_parallel_sweep_produces_a_valid_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_sweep(SMALL, workers=2, cache=small_cache(tmp_path),
                  events=str(path), heartbeat=0.02)
        assert validate_events(str(path)) == []
        _, events = read_events(str(path))
        spawns = [e for e in events if e["kind"] == "worker-spawn"]
        assert [e["worker"] for e in spawns] == [0, 1]
        assert all(e["kind"] != "worker-respawn" for e in events)

    def test_event_log_cannot_change_canonical_records(self, tmp_path):
        plain = run_sweep(SMALL, cache=small_cache(tmp_path, "a"))
        logged = run_sweep(SMALL, cache=small_cache(tmp_path, "b"),
                           events=str(tmp_path / "ev.jsonl"))
        assert canonical_records_json(logged.records) == \
            canonical_records_json(plain.records)

    def test_cached_rerun_emits_hit_events_and_callbacks(self, tmp_path):
        cache = small_cache(tmp_path)
        run_sweep(SMALL, cache=cache)
        seen = []
        result = run_sweep(SMALL, cache=cache,
                           events=str(tmp_path / "ev.jsonl"),
                           progress=lambda cell, outcome:
                           seen.append((cell, outcome)))
        # cached cells fire the same callbacks an executing sweep would
        assert [o for _, o in seen] == ["hit"] * 4
        kinds = [e["kind"] for e in result.event_log.events]
        assert kinds.count("cache-hit") == 4
        assert kinds.count("dispatched") == 0

    def test_duplicate_cells_fire_symmetric_callbacks(self, tmp_path):
        spec = GridSpec(presets=("smp-2", "smp-2"), labels=("PI",),
                        scales=(0.04,), native=(False, False))
        seen = []
        run_sweep(spec, cache=small_cache(tmp_path),
                  progress=lambda cell, outcome: seen.append(outcome))
        assert sorted(seen) == ["hit", "miss"]

    def test_timeout_records_progress_at_kill(self, tmp_path):
        spec = GridSpec(presets=("sw-dsm-4",), labels=("MatMult",),
                        scales=(0.5,), timeout=0.5)
        path = tmp_path / "events.jsonl"
        result = run_sweep(spec, workers=2, cache=small_cache(tmp_path),
                           stall_grace=0.5, events=str(path),
                           heartbeat=0.02)
        assert validate_events(str(path)) == []
        cell = result.manifest.cells[0]
        assert cell.outcome == "failed"
        assert cell.progress is not None
        assert cell.progress["events_executed"] > 0
        assert cell.progress["virtual_seconds"] > 0.0
        # the timeout message carries the same progress numbers
        assert "events" in cell.error and "virtual" in cell.error
        _, events = read_events(str(path))
        kinds = [e["kind"] for e in events]
        assert kinds.count("heartbeat") > 0
        assert kinds.count("worker-kill") >= 1
        assert kinds.count("retried") >= 1
        kill = next(e for e in events if e["kind"] == "worker-kill")
        assert kill["data"]["progress"]["events_executed"] > 0
        # the manifest round-trips progress through JSON
        again = SweepManifest.from_dict(
            json.loads(result.manifest.dumps()))
        assert again.cells[0].progress == cell.progress

    def test_bad_heartbeat_interval_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(SMALL, cache=small_cache(tmp_path), heartbeat=0.0)


class TestManifestRender:
    def outcome(self, **over):
        d = dict(index=0, id="smp-2/PI@0.04", key="c0ffee" * 8,
                 outcome="miss", host_seconds=0.01, events=42)
        d.update(over)
        return CellOutcome(**d)

    def test_render_empty_manifest(self):
        text = SweepManifest(suite="empty", workers=1).render()
        assert "0 cells" in text and "0% cache hits" in text

    def test_render_includes_hit_ratio_and_cache_stats(self):
        manifest = SweepManifest(
            suite="s", workers=2,
            cells=[self.outcome(), self.outcome(index=1, outcome="hit")],
            cache={"hits": 1, "misses": 1, "stores": 1,
                   "entries": 7, "bytes": 1234, "root": "/tmp/c"})
        text = manifest.render()
        assert "50% cache hits" in text
        assert "7 entries / 1234 evictable bytes in /tmp/c" in text

    def test_render_shows_progress_at_kill(self):
        manifest = SweepManifest(suite="s", workers=2, cells=[self.outcome(
            outcome="failed", error="timeout: exceeded 1s wall clock",
            progress={"events_executed": 16384, "virtual_seconds": 0.25})])
        text = manifest.render()
        assert "[at kill: 16384 events, 0.250000s virtual]" in text

    def test_render_without_cache_stats_has_no_cache_line(self):
        text = SweepManifest(suite="s", workers=1,
                             cells=[self.outcome()]).render()
        assert "evictable" not in text
