"""Sharing-pattern analytics (repro.obs.sharing / repro.obs.diagnose).

Three layers of coverage:

* recorder mechanics on synthetic feeds (interval merging, writer-log
  compression, lock histograms, barrier episodes, the stream cap);
* the zero-cost contract — sharing off is the engine default, sharing on
  never changes virtual time (the bit-identity the diffcheck goldens
  enforce, checked here on a live run pair);
* end-to-end diagnosis — SOR on the 4-node SW-DSM exhibits *false*
  sharing on its boundary pages (disjoint sub-page writes), PI exhibits
  *true* sharing on its accumulator page plus a hot contended lock, and
  the report/exporters (JSON schema, heatmap CSV, Chrome trace,
  telemetry rollup) validate cleanly on both.
"""

import json

import pytest

from repro.config import preset
from repro.obs import (NULL_SHARING, SharingRecorder, classify_sharing,
                       ping_pong_pages, render_sharing_report,
                       sharing_chrome_trace, sharing_heatmap_csv,
                       sharing_report, sharing_summary,
                       validate_chrome_trace, validate_sharing_report)
from repro.obs.sharing import LockSharing, merge_interval
from repro.sim.engine import Engine


def run_app(preset_name, app, sharing=True, **params):
    """Run one app with the sharing recorder on; returns the platform."""
    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi

    cfg = preset(preset_name)
    cfg.sharing = sharing
    plat = cfg.build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app(app)
    merged = merge_rank_results(api.run(lambda a: fn(a, **params)))
    assert merged.verified
    return plat, merged


# ------------------------------------------------------------ unit: recorder
class TestNullSharing:
    def test_engine_default_is_null(self):
        engine = Engine()
        assert engine.sharing is NULL_SHARING
        assert not engine.sharing.enabled

    def test_all_hooks_are_noops(self):
        NULL_SHARING.access(0, 1, 0, 8, True)
        NULL_SHARING.fault(0, 1, True, 0.0)
        NULL_SHARING.fetch(0, 1, 1, 4096, 0.0)
        NULL_SHARING.notice(1, 0, 0.0)
        NULL_SHARING.transition(0, 1, 2, 0, 0.0)
        NULL_SHARING.remote(0, 1, 1, True, 8, 0.0)
        NULL_SHARING.lock_acquired(3, 0, 0.0, 1.0)
        NULL_SHARING.lock_released(3, 0, 2.0)
        NULL_SHARING.barrier(0, 0.0, 1.0)


class TestMergeInterval:
    def test_disjoint_stays_sorted(self):
        ivs = []
        merge_interval(ivs, 8, 16)
        merge_interval(ivs, 0, 4)
        merge_interval(ivs, 32, 40)
        assert ivs == [[0, 4], [8, 16], [32, 40]]

    def test_overlap_and_adjacency_absorb(self):
        ivs = [[0, 4], [8, 16]]
        merge_interval(ivs, 4, 8)   # adjacent on both sides: one interval
        assert ivs == [[0, 16]]
        merge_interval(ivs, 12, 20)
        assert ivs == [[0, 20]]

    def test_empty_interval_ignored(self):
        ivs = [[0, 4]]
        merge_interval(ivs, 5, 5)
        assert ivs == [[0, 4]]


class TestRecorderMechanics:
    def recorder(self, **kw):
        return SharingRecorder(Engine(), **kw)

    def test_writer_log_compresses_same_rank(self):
        rec = self.recorder()
        for t in (0.1, 0.2, 0.3):
            rec.notice(7, 0, t)
        rec.notice(7, 1, 0.4)
        rec.notice(7, 0, 0.5)
        ps = rec.pages[7]
        assert ps.writer_log == [(0.1, 0), (0.4, 1), (0.5, 0)]
        assert ps.alternations == 2
        assert ps.notices == 5

    def test_transition_maps_invalidation_and_downgrade(self):
        rec = self.recorder()
        rec.transition(0, 5, 2, 0, 0.1)   # RW -> INVALID
        rec.transition(0, 5, 2, 1, 0.2)   # RW -> RO
        rec.transition(0, 5, 0, 1, 0.3)   # upgrade: neither
        ps = rec.pages[5]
        assert (ps.invalidations, ps.downgrades) == (1, 1)

    def test_access_tracks_write_ranges_per_rank(self):
        rec = self.recorder()
        rec.access(0, 9, 0, 8, True)
        rec.access(0, 9, 8, 16, True)
        rec.access(1, 9, 512, 1024, True)
        rec.access(2, 9, 0, 4096, False)   # reads never enter the map
        ps = rec.pages[9]
        assert ps.write_ranges == {0: [[0, 16]], 1: [[512, 1024]]}
        assert (ps.reads, ps.writes) == (1, 3)

    def test_event_stream_cap_counts_drops(self):
        rec = self.recorder(max_events=2)
        for t in range(5):
            rec.fault(0, 1, True, float(t))
        assert len(rec.events) == 2
        assert rec.dropped == 3
        assert rec.pages[1].write_faults == 5   # aggregates keep counting

    def test_lock_wait_hold_histograms(self):
        rec = self.recorder()
        rec.lock_acquired(3, 0, 0.0, 0.0)       # uncontended
        rec.lock_released(3, 0, 0.002)          # 2 ms hold
        rec.lock_acquired(3, 1, 0.002, 0.005)   # 3 ms wait
        rec.lock_released(3, 1, 0.005)
        ls = rec.locks[3]
        assert ls.acquires == 2 and ls.contended == 1
        assert ls.wait_total == pytest.approx(0.003)
        assert ls.hold_max == pytest.approx(0.002)
        assert ls.wait_hist[-9] == 1            # zero-wait bucket
        assert ls.wait_hist[-3] == 1            # millisecond bucket

    def test_lock_release_without_acquire_is_ignored(self):
        rec = self.recorder()
        rec.lock_released(3, 0, 1.0)
        assert rec.locks[3].hold_total == 0.0

    def test_bucket_exponents(self):
        assert LockSharing._bucket(0.0) == -9
        assert LockSharing._bucket(3e-6) == -6
        assert LockSharing._bucket(0.2) == -1
        assert LockSharing._bucket(500.0) == 2   # clamped at the top

    def test_barrier_episodes_index_per_rank(self):
        rec = self.recorder()
        for rank in range(3):
            rec.barrier(rank, 0.1 * rank, 0.5)   # episode 0
        rec.barrier(0, 1.0, 1.5)                  # episode 1 (rank 0 only)
        assert len(rec.barrier_episodes) == 2
        assert rec.barrier_episodes[0]["arrive"] == {0: 0.0, 1: 0.1, 2: 0.2}
        assert rec.barrier_episodes[1]["arrive"] == {0: 1.0}

    def test_write_events_round_trips_writer_logs(self):
        rec = self.recorder()
        rec.notice(4, 0, 0.1)
        rec.notice(4, 1, 0.2)
        rec.remote(2, 8, 0, True, 8, 0.3)
        assert rec.write_events() == [(0.1, 4, 0), (0.2, 4, 1), (0.3, 8, 2)]
        assert rec.ranks_seen() == [0, 1, 2]


# ------------------------------------------------------------ unit: detectors
class TestDetectors:
    def test_single_writer_never_ping_pongs(self):
        events = [(0.1 * i, 7, 0) for i in range(100)]
        assert ping_pong_pages(events, min_alternations=1) == {}

    def test_alternation_threshold(self):
        events = [(0.1 * i, 7, i % 2) for i in range(5)]   # 4 alternations
        assert 7 in ping_pong_pages(events, min_alternations=4)
        assert 7 not in ping_pong_pages(events, min_alternations=5)

    def test_rate_threshold(self):
        slow = [(10.0 * i, 7, i % 2) for i in range(6)]    # 0.1 altern/s
        assert 7 not in ping_pong_pages(slow, min_alternations=4, min_rate=1.0)
        assert 7 in ping_pong_pages(slow, min_alternations=4, min_rate=0.05)

    def test_classify_disjoint_is_false(self):
        assert classify_sharing({0: [[0, 8]], 1: [[8, 16]]}) == "false"

    def test_classify_overlap_is_true(self):
        assert classify_sharing({0: [[0, 8]], 1: [[4, 16]]}) == "true"

    def test_classify_needs_two_writers(self):
        assert classify_sharing({0: [[0, 8]]}) == "unknown"
        assert classify_sharing({}) == "unknown"
        assert classify_sharing({0: [[0, 8]], 1: []}) == "unknown"


# --------------------------------------------------------------- zero cost
class TestZeroCost:
    def test_sharing_does_not_change_virtual_time(self):
        plat_off, merged_off = run_app("sw-dsm-2", "sor", sharing=False,
                                       n=64, iterations=2)
        plat_on, merged_on = run_app("sw-dsm-2", "sor", sharing=True,
                                     n=64, iterations=2)
        assert merged_on.phases == merged_off.phases
        assert plat_on.engine.now == plat_off.engine.now
        assert plat_on.engine.events_executed == plat_off.engine.events_executed
        assert plat_off.sharing is None
        assert plat_on.sharing is not None and plat_on.sharing.enabled

    def test_config_round_trip(self):
        cfg = preset("sw-dsm-2")
        cfg.sharing = True
        from repro.config import loads

        again = loads(cfg.to_text())
        assert again.sharing is True
        assert loads(preset("sw-dsm-2").to_text()).sharing is False


# ------------------------------------------------------------- end to end
class TestSorFalseSharing:
    """SOR without locality placement: rank boundaries land mid-page, so
    neighbouring ranks write disjoint halves of the same page — the
    canonical false-sharing pattern the detector must name."""

    @pytest.fixture(scope="class")
    def report(self):
        plat, _ = run_app("sw-dsm-4", "sor", n=128, iterations=4)
        doc = sharing_report(plat.sharing,
                             platform_name="test",
                             n_ranks=plat.dsm.n_procs,
                             page_size=plat.dsm.space.page_size)
        return plat, doc

    def test_detects_false_sharing_pages_and_ranks(self, report):
        _, doc = report
        fs = doc["false_sharing"]
        assert fs["pages"], "SOR boundary pages must flag as false sharing"
        assert len(fs["ranks"]) >= 2
        for entry in doc["ping_pong"]:
            if entry["classification"] != "false":
                continue
            ranges = entry["write_ranges"]
            assert len(ranges) >= 2
            # disjointness is what makes it *false* sharing
            flat = [(lo, hi, r) for r, ivs in ranges.items()
                    for lo, hi in ivs]
            flat.sort()
            for (lo_a, hi_a, ra), (lo_b, hi_b, rb) in zip(flat, flat[1:]):
                if ra != rb:
                    assert lo_b >= hi_a

    def test_report_validates_and_renders(self, report):
        _, doc = report
        assert validate_sharing_report(doc) == []
        assert validate_sharing_report(json.dumps(doc)) == []
        text = render_sharing_report(doc)
        assert "FALSE SHARING" in text
        assert "barriers" in text

    def test_heatmap_and_trace_exports(self, report):
        plat, _ = report
        csv = sharing_heatmap_csv(plat.sharing, bins=20)
        header, *rows = csv.strip().split("\n")
        assert header == ("page,bin,t_start,t_end,faults,fetches,"
                          "invalidations,writes")
        assert rows, "an active run must produce heatmap cells"
        for row in rows:
            parts = row.split(",")
            assert len(parts) == 8
            assert float(parts[3]) > float(parts[2])
        trace = sharing_chrome_trace(plat.sharing, platform_name="test")
        assert validate_chrome_trace(trace) == []
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters and all(e["pid"] == 98 for e in counters)

    def test_summary_rollup(self, report):
        plat, doc = report
        summary = sharing_summary(plat.sharing)
        assert summary["schema"] == "repro.obs.sharing/1"
        assert summary["ping_pong_pages"] == len(doc["ping_pong"])
        assert summary["false_sharing_pages"] == len(
            doc["false_sharing"]["pages"])
        assert summary["top_hot_page"]["fault_rate_hz"] > 0
        assert summary["barrier_max_skew_s"] > 0


class TestPiTrueSharingAndLocks:
    """PI sums into one accumulator under a lock: every rank writes the
    same bytes (true sharing, not false), and the lock is hot."""

    @pytest.fixture(scope="class")
    def plat(self):
        plat, _ = run_app("sw-dsm-4", "pi", intervals=1 << 14)
        return plat

    def test_accumulator_is_true_sharing(self, plat):
        # Every handoff writes the same 8 bytes -> never "false".
        found = ping_pong_pages(plat.sharing.write_events(),
                                min_alternations=2)
        assert found, "the shared accumulator page must alternate writers"
        for page in found:
            cls = classify_sharing(plat.sharing.pages[page].write_ranges)
            assert cls == "true"
        # At the default threshold it must not be reported as false sharing.
        doc = sharing_report(plat.sharing)
        assert doc["false_sharing"]["pages"] == []

    def test_hot_lock_profile(self, plat):
        doc = sharing_report(plat.sharing)
        assert doc["hot_locks"], "PI's accumulator lock must be profiled"
        top = doc["hot_locks"][0]
        assert top["acquires"] == 4          # one per rank
        assert top["contended"] >= 1
        assert top["wait_total_s"] > 0
        assert top["hold_total_s"] > 0
        assert sum(top["wait_hist"].values()) == top["acquires"]


class TestOtherSubstrates:
    def test_scivm_records_remote_ops(self):
        plat, _ = run_app("hybrid-4", "sor", n=128, iterations=2)
        doc = sharing_report(plat.sharing)
        assert (doc["totals"]["remote_reads"]
                + doc["totals"]["remote_writes"]) > 0
        # SCI-VM never migrates pages, so no JiaJia-style notices...
        assert doc["totals"]["notices"] == 0
        assert validate_sharing_report(doc) == []

    def test_smp_records_accesses_only(self):
        plat, _ = run_app("smp-2", "sor", n=64, iterations=2)
        doc = sharing_report(plat.sharing)
        # hardware coherence: no protocol events at all...
        for key in ("read_faults", "write_faults", "fetches",
                    "invalidations", "notices"):
            assert doc["totals"][key] == 0
        # ...but access counts still locate the hot pages
        assert doc["hot_pages"]
        assert all(e["accesses"] > 0 for e in doc["hot_pages"])
        assert doc["barriers"]["episodes"] > 0

    def test_jiajia_transitions_recorded(self):
        plat, _ = run_app("sw-dsm-2", "sor", n=64, iterations=2)
        doc = sharing_report(plat.sharing)
        assert doc["totals"]["invalidations"] > 0
        assert doc["totals"]["fetches"] > 0
        assert doc["totals"]["fetch_bytes"] > 0


# ------------------------------------------------------------ schema gates
class TestValidation:
    def test_rejects_wrong_schema(self):
        assert validate_sharing_report({"schema": "nope"}) != []

    def test_rejects_bad_classification(self):
        plat, _ = run_app("sw-dsm-2", "pi", intervals=1 << 12)
        doc = sharing_report(plat.sharing, min_alternations=2)
        if doc["ping_pong"]:
            doc["ping_pong"][0]["classification"] = "maybe"
            assert any("classification" in e
                       for e in validate_sharing_report(doc))

    def test_rejects_non_json(self):
        assert validate_sharing_report("{not json")[0].startswith(
            "not valid JSON")
        assert validate_sharing_report([1, 2]) != []


# ------------------------------------------------------- telemetry riding
class TestTelemetrySharing:
    def test_record_gains_schema_versioned_field(self):
        from repro.bench.telemetry import run_unit, validate_telemetry

        base = run_unit("sw-dsm-2", "PI", 0.05)
        rec = run_unit("sw-dsm-2", "PI", 0.05, sharing=True)
        assert "sharing" not in base
        assert rec["sharing"]["schema"] == "repro.obs.sharing/1"
        # canonical fields are untouched by the extra analytics
        assert rec["fingerprint"] == base["fingerprint"]
        assert rec["virtual_seconds"] == base["virtual_seconds"]
        assert rec["phases"] == base["phases"]
        doc = {"schema": "repro.bench.telemetry/1", "suite": "adhoc",
               "scale": 0.05, "records": [rec]}
        assert validate_telemetry(doc) == []

    def test_bad_sharing_field_is_rejected(self):
        from repro.bench.telemetry import run_unit, validate_telemetry

        rec = run_unit("sw-dsm-2", "PI", 0.05, sharing=True)
        rec["sharing"]["schema"] = "bogus"
        rec["sharing"]["ping_pong_pages"] = -1
        doc = {"schema": "repro.bench.telemetry/1", "suite": "adhoc",
               "scale": 0.05, "records": [rec]}
        errors = validate_telemetry(doc)
        assert any("sharing.schema" in e for e in errors)
        assert any("ping_pong_pages" in e for e in errors)


# ----------------------------------------------------------------- the CLI
class TestDiagnoseCli:
    def test_diagnose_end_to_end(self, tmp_path, capsys):
        from repro.cli import _main

        out = tmp_path / "report.json"
        trace = tmp_path / "sharing.trace.json"
        heat = tmp_path / "heat.csv"
        rc = _main(["diagnose", "--preset", "sw-dsm-4", "--app", "sor",
                    "--param", "n=128", "--param", "iterations=4",
                    "--json-out", str(out), "--trace-out", str(trace),
                    "--heatmap-out", str(heat)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "sharing diagnosis" in text
        assert "FALSE SHARING" in text
        doc = json.loads(out.read_text())
        assert validate_sharing_report(doc) == []
        assert doc["false_sharing"]["pages"]
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        assert heat.read_text().startswith("page,bin,")

    def test_diagnose_validate_mode(self, tmp_path, capsys):
        from repro.cli import _main

        out = tmp_path / "r.json"
        rc = _main(["diagnose", "--preset", "sw-dsm-2", "--app", "pi",
                    "--param", "intervals=4096", "--json-out", str(out)])
        assert rc == 0
        assert _main(["diagnose", "--validate", str(out)]) == 0
        out.write_text(json.dumps({"schema": "bogus"}))
        assert _main(["diagnose", "--validate", str(out)]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_run_sharing_out(self, tmp_path, capsys):
        from repro.cli import _main

        out = tmp_path / "sharing.json"
        rc = _main(["run", "--preset", "sw-dsm-2", "--app", "pi",
                    "--param", "intervals=4096", "--sharing-out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_sharing_report(doc) == []
        assert doc["totals"]["lock_acquires"] > 0
