"""Tests for the adaptive single-writer write detection in the SW-DSM.

A home page dirtied ``ASSUME_STREAK`` intervals in a row stops being
re-protected (no more faults); it is auto-announced every interval and
revalidated every ``ASSUME_REVALIDATE``-th interval. The optimization must
be invisible to correctness and strictly reduce fault counts for
iterative owner-computes workloads (the SOR-opt pattern).
"""

import numpy as np
import pytest

from repro.config import preset
from repro.dsm.jiajia import JiaJiaSystem
from repro.memory.layout import block, single_home
from repro.memory.page import PageState
from tests.conftest import spmd


def build():
    return preset("sw-dsm-2").build()


class TestAssumptionLifecycle:
    def test_page_enters_assumption_after_streak(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            page = A.region.first_page
            states = []
            for _ in range(JiaJiaSystem.ASSUME_STREAK + 1):
                if env.rank == 0:
                    A[0] = 1.0
                env.barrier()
                if env.rank == 0:
                    states.append((dsm.page_state(0, page),
                                   page in dsm._assumed[0]))
            return states if env.rank == 0 else None

        states = spmd(plat, main)[0]
        # Before the streak completes: re-protected to RO, not assumed.
        assert states[0] == (PageState.READ_ONLY, False)
        # After ASSUME_STREAK dirty intervals: left writable, assumed.
        assert states[JiaJiaSystem.ASSUME_STREAK - 1][1] is True
        assert states[JiaJiaSystem.ASSUME_STREAK - 1][0] == PageState.READ_WRITE

    def test_faults_drop_once_assumed(self):
        plat = build()
        dsm = plat.dsm
        iters = JiaJiaSystem.ASSUME_STREAK + 4  # inside one revalidation window

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            for _ in range(iters):
                if env.rank == 0:
                    A[0] = 1.0
                env.barrier()
            return dsm.stats(env.rank)["write_faults"]

        faults = spmd(plat, main)[0]
        # Only the streak-building intervals fault; assumed ones are free.
        assert faults == JiaJiaSystem.ASSUME_STREAK

    def test_revalidation_reprotects(self):
        plat = build()
        dsm = plat.dsm
        streak, reval = JiaJiaSystem.ASSUME_STREAK, JiaJiaSystem.ASSUME_REVALIDATE
        iters = streak + reval + 1

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            page = A.region.first_page
            for _ in range(iters):
                if env.rank == 0:
                    A[0] = 1.0
                env.barrier()
            # The revalidation dropped and re-entered the assumption;
            # faults = streak buildup + one revalidation fault.
            return dsm.stats(0)["write_faults"] if env.rank == 0 else None

        faults = spmd(plat, main)[0]
        assert faults == JiaJiaSystem.ASSUME_STREAK + 1

    def test_notices_still_flow_while_assumed(self):
        """Correctness: readers keep seeing every update even when the
        writer's page no longer faults."""
        plat = build()

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            seen = []
            for it in range(JiaJiaSystem.ASSUME_STREAK + 3):
                if env.rank == 0:
                    A[0] = float(it + 1)
                env.barrier()
                if env.rank == 1:
                    seen.append(float(A[0]))
                env.barrier()
            return seen if env.rank == 1 else None

        seen = spmd(plat, main)[1]
        assert seen == [float(i + 1) for i in range(len(seen))]

    def test_streak_resets_on_quiet_interval(self):
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            page = A.region.first_page
            # Alternate dirty/quiet: the streak never completes.
            for it in range(2 * JiaJiaSystem.ASSUME_STREAK):
                if env.rank == 0 and it % 2 == 0:
                    A[0] = 1.0
                env.barrier()
            return page in dsm._assumed[0] if env.rank == 0 else None

        assert spmd(plat, main)[0] is False

    def test_remote_pages_never_assumed(self):
        """Only home pages may skip detection (remote pages need twins)."""
        plat = build()
        dsm = plat.dsm

        def main(env):
            A = env.alloc_array((512,), name="A", distribution=single_home(0))
            env.barrier()
            page = A.region.first_page
            for _ in range(JiaJiaSystem.ASSUME_STREAK + 2):
                if env.rank == 1:       # remote writer
                    A[0] = 1.0
                env.barrier()
            return page in dsm._assumed[1] if env.rank == 1 else None

        assert spmd(plat, main)[1] is False

    def test_sor_like_fault_reduction_end_to_end(self):
        """Fault counts on the SOR-opt pattern drop well below one fault
        per page per interval once the assumption engages."""
        plat = build()
        dsm = plat.dsm
        iters = 12

        def main(env):
            A = env.alloc_array((16, 512), name="grid", distribution=block())
            env.barrier()
            rows = 8
            lo = env.rank * rows
            for _ in range(iters):
                A[lo:lo + rows, :] = float(env.rank)
                env.barrier()
            return dsm.stats(env.rank)["write_faults"]

        faults = spmd(plat, main)[0]
        pages_per_rank = 8  # 8 rows x 4 KiB
        naive = pages_per_rank * iters
        assert faults < naive / 2
