"""Tests for the SCI ringlet topology model (hop-dependent latency)."""

import pytest

from repro.machine.cluster import Cluster
from repro.machine.params import PAPER_PLATFORM
from repro.machine.sci import SciInterconnect
from repro.sim.engine import Engine
from tests.conftest import run_procs


def make_sci(engine, n=4, hop=0.35e-6):
    params = PAPER_PLATFORM.with_overrides(sci_hop_latency=hop)
    return SciInterconnect(engine, n, params)


class TestHopDelay:
    def test_forward_ring_distance(self, engine):
        sci = make_sci(engine, n=4)
        hop = sci.params.sci_hop_latency
        assert sci.hop_delay(0, 1) == pytest.approx(hop)
        assert sci.hop_delay(0, 3) == pytest.approx(3 * hop)
        assert sci.hop_delay(3, 0) == pytest.approx(hop)  # wraps forward

    def test_asymmetry_is_a_ring_property(self, engine):
        sci = make_sci(engine, n=4)
        # 1 -> 3 is two hops; 3 -> 1 is two hops the other way round: equal
        # here, but 0 -> 3 (3 hops) != 3 -> 0 (1 hop).
        assert sci.hop_delay(0, 3) != sci.hop_delay(3, 0)

    def test_local_and_unknown_are_free(self, engine):
        sci = make_sci(engine, n=4)
        assert sci.hop_delay(2, 2) == 0.0
        assert sci.hop_delay(None, 1) == 0.0
        assert sci.hop_delay(1, None) == 0.0

    def test_disabled_topology(self, engine):
        sci = make_sci(engine, n=4, hop=0.0)
        assert sci.hop_delay(0, 3) == 0.0


class TestTransactionCosts:
    def test_read_cost_increases_with_distance(self, engine):
        sci = make_sci(engine, n=4)
        times = {}

        def reader(proc, dst):
            t0 = proc.now
            sci.remote_read(64, src=0, dst=dst)
            times[dst] = proc.now - t0

        run_procs(engine, lambda p: reader(p, 1), lambda p: reader(p, 3))
        assert times[3] > times[1]
        assert times[3] - times[1] == pytest.approx(
            2 * sci.params.sci_hop_latency)

    def test_atomic_cost_includes_hops(self, engine):
        sci = make_sci(engine, n=8)

        def body(proc):
            t0 = proc.now
            sci.remote_atomic(src=0, dst=7)
            return proc.now - t0

        elapsed = run_procs(engine, body)[0]
        assert elapsed == pytest.approx(
            sci.params.sci_atomic_latency + 7 * sci.params.sci_hop_latency)

    def test_backward_compatible_default(self, engine):
        """Transactions without endpoints behave exactly as before."""
        sci = make_sci(engine, n=4)

        def body(proc):
            t0 = proc.now
            sci.remote_read(64)
            return proc.now - t0

        elapsed = run_procs(engine, body)[0]
        assert elapsed == pytest.approx(
            sci.params.sci_read_latency + 64 / sci.params.sci_read_bandwidth)


class TestEndToEnd:
    def test_hybrid_access_pays_ring_distance(self):
        """Through the full stack: a rank reading from a 3-hops-away home
        takes longer than from the adjacent one."""
        from repro.config import ClusterConfig
        from repro.memory.layout import single_home

        def access_time(home_rank):
            plat = ClusterConfig(platform="sci", dsm="scivm", nodes=4).build()

            def main(env):
                A = env.alloc_array((8,), name="A",
                                    distribution=single_home(home_rank))
                env.barrier()
                if env.rank == 0 and home_rank != 0:
                    t0 = env.wtime()
                    _ = A[0]
                    return env.wtime() - t0
                return None

            return plat.hamster.run_spmd(main)[0]

        near, far = access_time(1), access_time(3)
        assert far > near
