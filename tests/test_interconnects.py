"""Unit tests for the interconnect models (Ethernet, SCI)."""

import pytest

from repro.errors import MessagingError
from repro.machine.cluster import Cluster
from repro.machine.ethernet import EthernetNetwork
from repro.machine.interconnect import Message
from repro.machine.params import PAPER_PLATFORM
from repro.machine.sci import SciInterconnect
from repro.sim.engine import Engine
from tests.conftest import run_procs


def _collect(net, node_id, sink):
    net.register_delivery(node_id, sink.append)


class TestNetworkBase:
    def test_delivery_time_latency_plus_bandwidth(self, engine):
        p = PAPER_PLATFORM
        net = EthernetNetwork(engine, 2, p)
        got = []
        _collect(net, 1, got)
        size = 11000  # ~1ms at 11 MB/s
        net.send(Message(src=0, dst=1, kind="x", size=size))
        engine.run()
        msg = got[0]
        expected = (size + net.framing_bytes) / p.eth_bandwidth + p.eth_latency
        assert msg.recv_time == pytest.approx(expected)

    def test_nic_serializes_sends(self, engine):
        p = PAPER_PLATFORM
        net = EthernetNetwork(engine, 2, p)
        got = []
        _collect(net, 1, got)
        size = int(p.eth_bandwidth)  # 1 second on the wire each
        net.send(Message(src=0, dst=1, kind="a", size=size))
        net.send(Message(src=0, dst=1, kind="b", size=size))
        engine.run()
        assert got[1].recv_time - got[0].recv_time == pytest.approx(
            (size + net.framing_bytes) / p.eth_bandwidth)

    def test_same_pair_ordering_preserved(self, engine):
        net = EthernetNetwork(engine, 2, PAPER_PLATFORM)
        got = []
        _collect(net, 1, got)
        for i in range(5):
            net.send(Message(src=0, dst=1, kind=str(i), size=100))
        engine.run()
        assert [m.kind for m in got] == ["0", "1", "2", "3", "4"]

    def test_unknown_destination_rejected(self, engine):
        net = EthernetNetwork(engine, 2, PAPER_PLATFORM)
        with pytest.raises(MessagingError):
            net.send(Message(src=0, dst=1, kind="x", size=1))  # no callback
        with pytest.raises(MessagingError):
            net.send(Message(src=0, dst=9, kind="x", size=1))

    def test_stats(self, engine):
        net = EthernetNetwork(engine, 2, PAPER_PLATFORM)
        got = []
        _collect(net, 1, got)
        net.send(Message(src=0, dst=1, kind="x", size=100))
        engine.run()
        assert net.messages_sent == 1
        assert net.bytes_sent == 100 + net.framing_bytes
        net.reset_stats()
        assert net.messages_sent == 0


class TestEthernetCosts:
    def test_tcp_overheads_exposed(self, engine):
        p = PAPER_PLATFORM
        net = EthernetNetwork(engine, 2, p)
        assert net.sender_cpu_overhead() == p.tcp_send_overhead
        assert net.receiver_cpu_overhead() == p.tcp_recv_overhead


class TestSciTransactions:
    def test_remote_read_cost(self, engine):
        p = PAPER_PLATFORM
        sci = SciInterconnect(engine, 2, p)

        def body(proc):
            sci.remote_read(int(p.sci_read_bandwidth))  # 1s of data
            return proc.now

        t = run_procs(engine, body)[0]
        assert t == pytest.approx(1.0 + p.sci_read_latency)
        assert sci.remote_reads == 1

    def test_write_cheaper_than_read_small(self, engine):
        p = PAPER_PLATFORM
        sci = SciInterconnect(engine, 2, p)
        times = {}

        def reader(proc):
            sci.remote_read(64)
            times["r"] = proc.now

        def writer(proc):
            sci.remote_write(64)
            times["w"] = proc.now

        run_procs(engine, reader, writer)
        assert times["w"] < times["r"]

    def test_atomic_and_flush_costs(self, engine):
        p = PAPER_PLATFORM
        sci = SciInterconnect(engine, 2, p)

        def body(proc):
            sci.remote_atomic()
            sci.flush_write_buffer()
            return proc.now

        t = run_procs(engine, body)[0]
        assert t == pytest.approx(p.sci_atomic_latency + p.sci_flush_cost)
        assert sci.atomics == 1

    def test_page_mapping_cost(self, engine):
        p = PAPER_PLATFORM
        sci = SciInterconnect(engine, 2, p)

        def body(proc):
            sci.map_pages(3)
            return proc.now

        assert run_procs(engine, body)[0] == pytest.approx(3 * p.sci_map_page_cost)

    def test_transactions_require_process_context(self, engine):
        sci = SciInterconnect(engine, 2, PAPER_PLATFORM)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sci.remote_read(64)

    def test_zero_byte_transactions_free(self, engine):
        sci = SciInterconnect(engine, 2, PAPER_PLATFORM)

        def body(proc):
            sci.remote_read(0)
            sci.remote_write(0)
            return proc.now

        assert run_procs(engine, body) == [0.0]
        assert sci.remote_reads == 0

    def test_sci_message_overheads_far_below_tcp(self, engine):
        p = PAPER_PLATFORM
        sci = SciInterconnect(engine, 2, p)
        assert sci.sender_cpu_overhead() < p.tcp_send_overhead / 5
