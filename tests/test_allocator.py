"""Unit + property tests for the global allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.memory.address_space import GlobalAddressSpace
from repro.memory.allocator import GlobalAllocator

PAGE = 4096


def make_allocator(capacity=64 * PAGE):
    space = GlobalAddressSpace(PAGE)
    return GlobalAllocator(space, capacity=capacity)


class TestAlloc:
    def test_sizes_round_up_to_pages(self):
        a = make_allocator()
        r = a.alloc(1)
        assert r.size == PAGE
        r2 = a.alloc(PAGE + 1)
        assert r2.size == 2 * PAGE

    def test_allocations_do_not_overlap(self):
        a = make_allocator()
        regions = [a.alloc(PAGE) for _ in range(8)]
        spans = sorted((r.gaddr, r.end) for r in regions)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_zero_or_negative_rejected(self):
        a = make_allocator()
        with pytest.raises(AllocationError):
            a.alloc(0)
        with pytest.raises(AllocationError):
            a.alloc(-5)

    def test_out_of_memory(self):
        a = make_allocator(capacity=4 * PAGE)
        a.alloc(4 * PAGE)
        with pytest.raises(AllocationError, match="out of global memory"):
            a.alloc(PAGE)

    def test_peak_tracking(self):
        a = make_allocator()
        r1 = a.alloc(2 * PAGE)
        a.alloc(PAGE)
        a.free(r1)
        assert a.peak_bytes == 3 * PAGE
        assert a.allocated_bytes == PAGE


class TestFree:
    def test_free_and_reuse(self):
        a = make_allocator(capacity=2 * PAGE)
        r1 = a.alloc(2 * PAGE)
        a.free(r1)
        r2 = a.alloc(2 * PAGE)  # fits again only if space was returned
        assert r2.gaddr == r1.gaddr

    def test_double_free_rejected(self):
        a = make_allocator()
        r = a.alloc(PAGE)
        a.free(r)
        with pytest.raises(AllocationError):
            a.free(r)

    def test_coalescing_restores_one_block(self):
        a = make_allocator(capacity=8 * PAGE)
        regions = [a.alloc(2 * PAGE) for _ in range(4)]
        # Free out of order to exercise left+right merging.
        for r in (regions[1], regions[3], regions[0], regions[2]):
            a.free(r)
        assert a.largest_free_block() == 8 * PAGE
        assert a.fragmentation() == 0.0

    def test_fragmentation_metric(self):
        a = make_allocator(capacity=6 * PAGE)
        keep = []
        for i in range(3):
            keep.append(a.alloc(PAGE))
            a.alloc(PAGE)
        for r in keep:
            a.free(r)  # free every other page -> fragmented
        assert 0.0 < a.fragmentation() < 1.0
        assert a.free_bytes() == 3 * PAGE
        assert a.largest_free_block() == PAGE


class TestAllocatorProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(1, 5)), min_size=1, max_size=40))
    def test_invariants_under_random_workload(self, ops):
        """Accounting invariants hold for any alloc/free sequence:
        allocated + free == capacity, live regions never overlap, and
        freeing everything restores a single free block."""
        capacity = 64 * PAGE
        a = make_allocator(capacity=capacity)
        live = []
        for op, pages in ops:
            if op == "alloc":
                try:
                    live.append(a.alloc(pages * PAGE))
                except AllocationError:
                    pass
            elif live:
                a.free(live.pop(len(live) // 2))
            assert a.allocated_bytes + a.free_bytes() == capacity
            spans = sorted((r.gaddr, r.end) for r in live)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2
        for r in live:
            a.free(r)
        assert a.free_bytes() == capacity
        assert a.largest_free_block() == capacity
