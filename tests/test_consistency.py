"""Tests for the consistency API (§4.5): lattice, mapping rules, and the
optimized model implementations over each substrate."""

import pytest

from repro.config import preset
from repro.consistency import (MODELS, can_host, get_model, strength)
from repro.consistency.models import (EntryConsistency, ReleaseConsistency,
                                      ScopeConsistency, SequentialConsistency)
from repro.errors import ConsistencyError
from tests.conftest import spmd


class TestLattice:
    def test_strength_ordering(self):
        assert (strength("entry") < strength("scope") < strength("release")
                < strength("processor") < strength("sequential"))

    def test_weaker_on_stronger_always_hosted(self):
        """§4.5: a weaker software model always maps onto stronger hardware."""
        order = ["entry", "scope", "release", "processor", "sequential"]
        for i, sub in enumerate(order):
            for prog in order[:i + 1]:
                assert can_host(sub, prog)

    def test_stronger_on_weaker_not_hosted(self):
        assert not can_host("scope", "release")
        assert not can_host("release", "sequential")

    def test_unknown_model_rejected(self):
        with pytest.raises(ConsistencyError):
            strength("totally-bogus")
        with pytest.raises(ConsistencyError):
            get_model("nope", None)

    def test_registry_complete(self):
        assert set(MODELS) == {"sequential", "processor", "release",
                               "scope", "entry"}


class TestModelOverSubstrates:
    def test_free_ride_detection(self, smp2, swdsm4):
        # SMP hardware is processor-consistent: hosts scope/release free.
        assert ScopeConsistency(smp2.dsm).free_ride
        assert ReleaseConsistency(smp2.dsm).free_ride
        assert not SequentialConsistency(smp2.dsm).free_ride
        # JiaJia is scope-consistent: hosts scope free, release not.
        assert ScopeConsistency(swdsm4.dsm).free_ride
        assert not ReleaseConsistency(swdsm4.dsm).free_ride

    def test_release_model_on_scope_substrate_is_globally_visible(self):
        """RC promises: after release, the next acquirer of ANY lock sees
        the writes. The optimized RC implementation must close JiaJia's
        scope gap."""
        plat = preset("sw-dsm-2").build()

        def main(env):
            cons = env.hamster.consistency
            cons.use("release")
            A = env.alloc_array((512,), name="A")
            _ = A[:]  # cache everywhere
            env.barrier()
            if env.rank == 0:
                cons.acquire(1)
                A[0] = 7.0
                cons.release(1)
                env.hamster.cluster_ctl.send_msg(1, "go")
                env.barrier()
                return None
            env.hamster.cluster_ctl.recv_msg()
            cons.acquire(2)           # DIFFERENT lock
            A.refresh(0)              # RC: data must be home by now
            value = float(A[0])
            cons.release(2)
            env.barrier()
            return value

        assert spmd(plat, main)[1] == 7.0

    def test_sequential_model_flushes_at_both_ends(self, swdsm4):
        model = SequentialConsistency(swdsm4.dsm)
        assert model.name == "sequential"
        assert not model.free_ride

    def test_entry_bindings(self, smp2):
        model = EntryConsistency(smp2.dsm)
        model.bind(1, "regionA")
        model.bind(1, "regionB")
        model.bind(2, "regionC")
        assert model.bound_regions(1) == ["regionA", "regionB"]
        assert model.bound_regions(99) == []


class TestConsistencyMgmt:
    def test_native_model_reported(self, smp2, swdsm4, hybrid4):
        def main(env):
            return env.hamster.consistency.native_model()

        assert spmd(smp2, main)[0] == "processor"
        assert spmd(swdsm4, main)[0] == "scope"
        assert spmd(hybrid4, main)[0] == "release"

    def test_can_host_service(self, smp2):
        def main(env):
            c = env.hamster.consistency
            return c.can_host("scope"), c.can_host("sequential")

        assert spmd(smp2, main)[0] == (True, False)

    def test_use_caches_models(self, smp2):
        def main(env):
            c = env.hamster.consistency
            m1 = c.use("release")
            m2 = c.use("release")
            return m1 is m2

        assert all(spmd(smp2, main))

    def test_fence_counts(self, smp2):
        def main(env):
            env.hamster.consistency.fence()
            env.hamster.consistency.fence()
            return env.hamster.consistency.stats.query("fences")

        assert spmd(smp2, main)[-1] == 4  # both ranks, shared counter

    def test_supported_models_sorted(self, smp2):
        def main(env):
            return env.hamster.consistency.supported_models()

        assert spmd(smp2, main)[0] == sorted(MODELS)

    def test_check_model(self, smp2):
        def main(env):
            with pytest.raises(ConsistencyError):
                env.hamster.consistency.check_model("bogus")
            return True

        assert all(spmd(smp2, main))
