"""Tests for the five HAMSTER core modules + monitoring + timing."""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import (CapabilityError, ConfigurationError, HamsterError,
                          SynchronizationError, TaskError)
from repro.memory.layout import block
from tests.conftest import spmd


# ------------------------------------------------------------- MemoryMgmt
class TestMemoryMgmt:
    def test_alloc_and_free(self, smp2):
        def main(env):
            mem = env.hamster.memory
            region = mem.alloc(10000, name="r") if env.rank == 0 else None
            env.barrier()
            if env.rank == 0:
                mem.free(region)
            env.barrier()
            return mem.allocator_stats()["n_allocs"], mem.allocator_stats()["n_frees"]

        allocs, frees = spmd(smp2, main)[0]
        assert allocs == 1 and frees == 1

    def test_coherence_constraint_honored(self, smp2):
        def main(env):
            mem = env.hamster.memory
            arr = mem.alloc_array((8,), coherence="release", name="ok")
            with pytest.raises(CapabilityError):
                mem.alloc(64, coherence="sequential")  # SMP is processor
            return arr is not None

        assert all(spmd(smp2, main))

    def test_collective_alloc_returns_same_array(self, swdsm4):
        def main(env):
            a = env.hamster.memory.alloc_array_collective((8,), name="x")
            b = env.hamster.memory.alloc_array_collective((8,), name="y")
            return id(a), id(b)

        res = spmd(swdsm4, main)
        assert len({r[0] for r in res}) == 1
        assert len({r[1] for r in res}) == 1
        assert res[0][0] != res[0][1]

    def test_capability_probe(self, swdsm4):
        def main(env):
            mem = env.hamster.memory
            return mem.supports("software_dsm"), mem.supports("nonsense")

        assert spmd(swdsm4, main)[0] == (True, False)

    def test_distribution_annotation_passed_through(self, swdsm4):
        def main(env):
            arr = env.hamster.memory.alloc_array_collective(
                (8, 512), name="b", distribution=block())
            env.barrier()
            first = arr.region.first_page
            return [env.hamster.dsm.home_of(first + i) for i in range(8)]

        assert spmd(swdsm4, main)[0] == [0, 0, 1, 1, 2, 2, 3, 3]


# --------------------------------------------------------------- SyncMgmt
class TestSyncMgmt:
    def test_new_lock_ids_unique(self, smp2):
        def main(env):
            s = env.hamster.sync
            return s.new_lock(), s.new_lock()

        ids = [i for pair in spmd(smp2, main) for i in pair]
        assert len(set(ids)) == 4

    def test_held_lock_tracking(self, smp2):
        def main(env):
            s = env.hamster.sync
            if env.rank == 0:
                s.lock(5)
                held = s.held_locks()
                s.unlock(5)
                return held, s.held_locks()
            return None

        held, after = spmd(smp2, main)[0]
        assert held == [5] and after == []

    def test_unlock_unheld_rejected(self, smp2):
        def main(env):
            with pytest.raises(SynchronizationError):
                env.hamster.sync.unlock(77)
            return True

        assert all(spmd(smp2, main))

    def test_condition_cross_rank(self, swdsm4):
        def main(env):
            s = env.hamster.sync
            # All ranks share the structures created by rank order; use a
            # collective region to stash nothing — conditions are runtime
            # objects shared via the model object, so create on all ranks
            # deterministically:
            return env.rank

        # Condition plumbing is exercised through semaphores below and the
        # thread-model tests; here check creation bookkeeping.
        def main2(env):
            s = env.hamster.sync
            lock = s.new_lock()
            cond = s.new_condition(lock)
            return cond.lock_id == lock

        assert all(spmd(swdsm4, main2))

    def test_semaphore_cross_rank(self, smp2):
        plat = smp2
        sems = {}

        def main(env):
            s = env.hamster.sync
            if env.rank == 0:
                sems["s"] = s.new_semaphore(0)
            env.barrier()
            sem = sems["s"]
            if env.rank == 0:
                env.hamster.engine.current_process.hold(0.001)
                sem.release(1)
                return "released"
            sem.acquire()
            return env.wtime() > 0

        res = spmd(plat, main)
        assert res[0] == "released" and res[1] is True

    def test_barrier_counts(self, smp2):
        def main(env):
            env.barrier()
            env.barrier()
            return env.hamster.sync.stats.query("barriers")

        assert spmd(smp2, main)[-1] == 4


# --------------------------------------------------------------- TaskMgmt
class TestTaskMgmt:
    def test_identity(self, swdsm4):
        def main(env):
            t = env.hamster.task
            return t.my_rank(), t.n_tasks()

        assert spmd(swdsm4, main) == [(r, 4) for r in range(4)]

    def test_spawn_and_join(self, smp2):
        def main(env):
            if env.rank != 0:
                return None
            t = env.hamster.task
            handle = t.spawn_local(1, lambda: 123, name="w")
            return t.join(handle)

        assert spmd(smp2, main)[0] == 123

    def test_spawned_task_bound_to_rank(self, swdsm4):
        def main(env):
            if env.rank != 0:
                return None
            t = env.hamster.task

            def probe():
                return env.hamster.dsm.current_rank()

            return t.join(t.spawn_local(2, probe))

        assert spmd(swdsm4, main)[0] == 2

    def test_exit_hooks_fire(self, smp2):
        fired = []

        def main(env):
            if env.rank != 0:
                return None
            t = env.hamster.task
            t.on_exit(lambda handle: fired.append(handle.tid))
            h = t.spawn_local(0, lambda: None)
            t.join(h)
            return h.tid

        tid = spmd(smp2, main)[0]
        assert fired == [tid]

    def test_unknown_task_rejected(self, smp2):
        def main(env):
            with pytest.raises(TaskError):
                env.hamster.task.join(99999)
            return True

        assert all(spmd(smp2, main))

    def test_spawn_cost_charged(self, smp2):
        def main(env):
            if env.rank != 0:
                return None
            t0 = env.wtime()
            env.hamster.task.join(env.hamster.task.spawn_local(0, lambda: None))
            return env.wtime() - t0

        elapsed = spmd(smp2, main)[0]
        assert elapsed >= smp2.hamster.params.task_spawn_cost


# ----------------------------------------------------------- ClusterControl
class TestClusterControl:
    def test_node_identity(self, swdsm4, smp2):
        def main(env):
            cc = env.hamster.cluster_ctl
            return cc.my_node(), cc.n_nodes(), cc.n_ranks()

        assert spmd(swdsm4, main) == [(r, 4, 4) for r in range(4)]
        assert spmd(smp2, main) == [(0, 1, 2), (0, 1, 2)]

    def test_node_params(self, hybrid4):
        def main(env):
            return env.hamster.cluster_ctl.node_params()

        params = spmd(hybrid4, main)[0]
        assert params["interconnect"] == "sci"
        assert params["dsm"] == "scivm"
        assert params["page_size"] == 4096

    def test_user_messaging_remote(self, swdsm4):
        def main(env):
            cc = env.hamster.cluster_ctl
            if env.rank == 0:
                cc.send_msg(3, {"hello": "world"})
                return None
            if env.rank == 3:
                src, payload = cc.recv_msg()
                return src, payload
            return None

        assert spmd(swdsm4, main)[3] == (0, {"hello": "world"})

    def test_user_messaging_local(self, smp2):
        def main(env):
            cc = env.hamster.cluster_ctl
            if env.rank == 0:
                cc.send_msg(1, "ping")
                return None
            return cc.recv_msg()

        assert spmd(smp2, main)[1] == (0, "ping")

    def test_registry_publish_lookup(self, swdsm4):
        def main(env):
            cc = env.hamster.cluster_ctl
            if env.rank == 2:
                cc.publish("key", [1, 2, 3])
            env.barrier()
            return cc.lookup("key")

        assert spmd(swdsm4, main) == [[1, 2, 3]] * 4

    def test_lookup_missing_key(self, smp2):
        def main(env):
            with pytest.raises(ConfigurationError):
                env.hamster.cluster_ctl.lookup("nope")
            return True

        assert all(spmd(smp2, main))


# ------------------------------------------------------ monitoring / timing
class TestMonitoring:
    def test_module_counters_independent(self, smp2):
        def main(env):
            env.barrier()
            h = env.hamster
            return (h.sync.stats.query("barriers"),
                    h.memory.stats.query("allocations"))

        barriers, allocs = spmd(smp2, main)[-1]
        assert barriers == 2 and allocs == 0

    def test_query_all_tree(self, smp2):
        def main(env):
            env.barrier()
            return None

        spmd(smp2, main)
        tree = smp2.hamster.query_statistics()
        assert "sync" in tree and "memory" in tree and "dsm" in tree
        assert tree["dsm"]["rank0"]["barriers"] == 1

    def test_reset_all(self, smp2):
        def main(env):
            env.barrier()
            return None

        spmd(smp2, main)
        smp2.hamster.reset_statistics()
        assert smp2.hamster.sync.stats.query("barriers") == 0
        assert smp2.hamster.dsm.stats(0)["barriers"] == 0

    def test_subscription(self, smp2):
        seen = []
        smp2.hamster.sync.stats.subscribe(
            lambda mod, counter, value: seen.append((mod, counter, value)))

        def main(env):
            env.barrier()
            return None

        spmd(smp2, main)
        assert ("sync", "barriers", 1) in seen


class TestTiming:
    def test_wtime_is_virtual(self, smp2):
        def main(env):
            t0 = env.wtime()
            env.hamster.engine.current_process.hold(0.5)
            return env.wtime() - t0

        assert spmd(smp2, main) == [0.5, 0.5]

    def test_phase_timer(self, smp2):
        def main(env):
            if env.rank != 0:
                return None
            timer = env.hamster.timing.phase("compute")
            timer.start()
            env.hamster.engine.current_process.hold(0.25)
            timer.stop()
            timer.start()
            env.hamster.engine.current_process.hold(0.25)
            timer.stop()
            return env.hamster.timing.phase_totals()["compute"], timer.count

        total, count = spmd(smp2, main)[0]
        assert total == pytest.approx(0.5) and count == 2

    def test_timer_misuse(self, smp2):
        timer = smp2.hamster.timing.phase("x")
        with pytest.raises(HamsterError):
            timer.stop()
        timer.start()
        with pytest.raises(HamsterError):
            timer.start()


class TestCallOverhead:
    def test_hamster_calls_cost_time(self):
        plat = preset("smp-2").build()

        def main(env):
            t0 = env.wtime()
            for _ in range(100):
                env.hamster.task.my_rank()
            return env.wtime() - t0

        elapsed = max(spmd(plat, main))
        expected = 100 * plat.hamster.params.hamster_call_overhead
        assert elapsed == pytest.approx(expected, rel=0.01)

    def test_zero_overhead_configuration(self):
        from repro.config import ClusterConfig

        plat = ClusterConfig(platform="smp", dsm="smp", nodes=2,
                             call_overhead=0.0).build()

        def main(env):
            t0 = env.wtime()
            for _ in range(100):
                env.hamster.task.my_rank()
            return env.wtime() - t0

        assert max(spmd(plat, main)) == 0.0
