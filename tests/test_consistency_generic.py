"""Tests for the generic consistency API (§6): happens-before reasoning,
contracts, and their compiled application-specific models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import preset
from repro.consistency.generic import (GLOBAL_SCOPE, ConsistencyContract,
                                       ContractModel, HappensBefore,
                                       Requirement, SyncEvent)
from repro.errors import ConsistencyError
from tests.conftest import spmd


class TestHappensBefore:
    def _chain(self, model):
        """rank 0: release(L); rank 1: acquire(L) later."""
        hb = HappensBefore(model)
        w = hb.add("release", rank=0, scope=1)
        r = hb.add("acquire", rank=1, scope=1)
        return hb, w, r

    def test_program_order_always_visible(self):
        hb = HappensBefore("scope")
        hb.add("release", 0, 1)
        assert hb.guaranteed_visible(0, 0, 0, 1)
        assert not hb.guaranteed_visible(0, 1, 0, 0)

    def test_same_scope_chain_visible_under_scope(self):
        hb, w, r = self._chain("scope")
        assert hb.guaranteed_visible(0, 0, 1, r.seq)

    def test_cross_scope_not_visible_under_scope(self):
        hb = HappensBefore("scope")
        hb.add("release", 0, 1)       # write released under lock 1
        acq = hb.add("acquire", 1, 2)  # reader takes lock 2
        assert not hb.guaranteed_visible(0, 0, 1, acq.seq)

    def test_cross_scope_visible_under_release(self):
        hb = HappensBefore("release")
        hb.add("release", 0, 1)
        acq = hb.add("acquire", 1, 2)
        assert hb.guaranteed_visible(0, 0, 1, acq.seq)

    def test_barrier_is_global_scope(self):
        hb = HappensBefore("scope")
        hb.add("barrier", 0)
        acq = hb.add("barrier", 1)
        assert hb.guaranteed_visible(0, 0, 1, acq.seq)

    def test_transitive_chain_through_third_rank(self):
        """0 releases L1; 2 acquires L1, releases L2; 1 acquires L2:
        visibility flows transitively even under scope consistency."""
        hb = HappensBefore("scope")
        hb.add("release", 0, 1)
        hb.add("acquire", 2, 1)
        hb.add("release", 2, 2)
        acq = hb.add("acquire", 1, 2)
        assert hb.guaranteed_visible(0, 0, 1, acq.seq)

    def test_acquire_before_release_sees_nothing(self):
        hb = HappensBefore("scope")
        acq = hb.add("acquire", 1, 1)   # too early
        hb.add("release", 0, 1)
        assert not hb.guaranteed_visible(0, 1, 1, acq.seq + 1)

    def test_sequential_orders_everything(self):
        hb = HappensBefore("sequential")
        hb.add("release", 0, 1)
        acq = hb.add("acquire", 1, 99)
        assert hb.guaranteed_visible(0, 0, 1, acq.seq)

    def test_bad_event_kind_rejected(self):
        with pytest.raises(ConsistencyError):
            SyncEvent(kind="mystery", rank=0, scope=0, seq=0)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_scope_visibility_implies_release_visibility(self, data):
        """Lattice property on random traces: anything guaranteed under
        scope consistency is also guaranteed under release consistency
        (RC is strictly stronger)."""
        n_events = data.draw(st.integers(2, 12))
        hb_scope, hb_rel = HappensBefore("scope"), HappensBefore("release")
        for _ in range(n_events):
            kind = data.draw(st.sampled_from(["acquire", "release", "barrier"]))
            rank = data.draw(st.integers(0, 2))
            scope = data.draw(st.integers(1, 3))
            hb_scope.add(kind, rank, scope if kind != "barrier" else GLOBAL_SCOPE)
            hb_rel.add(kind, rank, scope if kind != "barrier" else GLOBAL_SCOPE)
        w_rank = data.draw(st.integers(0, 2))
        w_seq = data.draw(st.integers(0, n_events - 1))
        r_rank = data.draw(st.integers(0, 2))
        r_seq = data.draw(st.integers(0, n_events - 1))
        if hb_scope.guaranteed_visible(w_rank, w_seq, r_rank, r_seq):
            assert hb_rel.guaranteed_visible(w_rank, w_seq, r_rank, r_seq)


class TestContracts:
    def test_same_scope_native_on_scope_substrate(self, swdsm4):
        contract = ConsistencyContract("producer-consumer").require(1)
        model, report = contract.compile(swdsm4.dsm)
        assert report.fully_native
        assert not model.enforce_scopes

    def test_cross_scope_enforced_on_scope_substrate(self, swdsm4):
        contract = ConsistencyContract().require(1, reader_scope=2)
        model, report = contract.compile(swdsm4.dsm)
        assert not report.fully_native
        assert report.enforced == [Requirement(1, 2)]
        assert 1 in model.enforce_scopes

    def test_cross_scope_native_on_release_substrate(self, hybrid4):
        contract = ConsistencyContract().require(1, reader_scope=2)
        model, report = contract.compile(hybrid4.dsm)
        assert report.fully_native

    def test_cross_scope_native_on_smp(self, smp2):
        contract = ConsistencyContract().require(1, reader_scope=2)
        _, report = contract.compile(smp2.dsm)
        assert report.fully_native

    def test_compiled_model_delivers_cross_scope_visibility(self):
        """End to end: a cross-scope contract on the scope-consistent
        SW-DSM must actually make the data visible."""
        plat = preset("sw-dsm-2").build()
        contract = ConsistencyContract().require(1, reader_scope=2)
        model, report = contract.compile(plat.dsm)
        assert Requirement(1, 2) in report.enforced

        def main(env):
            A = env.alloc_array((512,), name="A")
            _ = A[:]  # cache everywhere
            env.barrier()
            if env.rank == 0:
                model.acquire(1)
                A[0] = 11.0
                model.release(1)          # contract: flushes globally
                env.hamster.cluster_ctl.send_msg(1, "go")
                env.barrier()
                return None
            env.hamster.cluster_ctl.recv_msg()
            model.acquire(2)              # different scope
            A.refresh(0)
            value = float(A[0])
            model.release(2)
            env.barrier()
            return value

        assert spmd(plat, main)[1] == 11.0

    def test_chaining(self):
        contract = ConsistencyContract().require(1).require(2, 3).require(4)
        assert len(contract.requirements) == 3

    def test_verify_trace_flags_violation(self):
        """The formal check: a scope-consistent trace where lock 1's writes
        are read under lock 2 violates a cross-scope contract."""
        contract = ConsistencyContract().require(1, reader_scope=2)
        hb = HappensBefore("scope")
        hb.add("release", 0, 1)
        hb.add("acquire", 1, 2)
        violations = contract.verify_trace(hb)
        assert violations == [Requirement(1, 2)]

    def test_verify_trace_passes_with_barrier(self):
        contract = ConsistencyContract().require(1, reader_scope=2)
        hb = HappensBefore("scope")
        hb.add("release", 0, 1)
        hb.add("barrier", 0)
        hb.add("barrier", 1)
        hb.add("acquire", 1, 2)
        assert contract.verify_trace(hb) == []

    def test_verify_trace_passes_under_release_model(self):
        contract = ConsistencyContract().require(1, reader_scope=2)
        hb = HappensBefore("release")
        hb.add("release", 0, 1)
        hb.add("acquire", 1, 2)
        assert contract.verify_trace(hb) == []
