"""1024-node scale tests for the continuation scheduler and scaling suite.

One OS thread per simulated process caps clusters at a few hundred nodes
(8 MB default stacks, scheduler thrash, thread-creation failures). The
generator backend holds a whole 1024-process cluster as plain Python
frames, so these tests can assert what the thread era could not:

* a 1024-process ring + barrier workload completes, with peak traced
  allocation per process orders of magnitude below a thread stack;
* a deadlock at that scale still produces a report naming the blocked
  process set exactly;
* the 1024-node machine presets build and run a full DSM benchmark.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.errors import DeadlockError
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.resources import SimBarrier, SimQueue

N = 1024


def _ring_worker(proc, rank, queues, barrier, laps, done):
    # Pass the token around the ring `laps` times, then rendezvous.
    if rank == 0:
        queues[0].put(("token", 0))
    passes = 0
    while passes < laps:
        token, hops = yield from queues[rank].get_g()
        assert token == "token"
        yield 1e-6  # per-hop service time
        passes += 1
        if passes < laps or rank != N - 1:
            queues[(rank + 1) % N].put((token, hops + 1))
    yield from barrier.wait_g()
    done.append(rank)


class TestThousandNodeRing:
    def test_ring_and_barrier_complete_with_bounded_memory(self):
        engine = Engine(procs="generator")
        queues = [SimQueue(engine, name=f"q{i}") for i in range(N)]
        barrier = SimBarrier(engine, N, name="finish")
        done = []
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for rank in range(N):
                SimProcess(engine, _ring_worker,
                           args=(rank, queues, barrier, 2, done),
                           name=f"ring{rank}").start()
            engine.run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert sorted(done) == list(range(N))
        # Every rank took the token twice: 2*N hops of 1e-6s, serialized.
        assert engine.now == pytest.approx(2 * N * 1e-6)
        per_proc = (peak - before) / N
        # A suspended continuation is a few KB of frames; a thread stack
        # is 8 MB virtual / tens of KB resident. Budget 64 KB per process
        # (loose enough for queue + trace bookkeeping, ~100x under threads).
        assert per_proc < 64 * 1024, f"{per_proc / 1024:.1f} KB per process"

    def test_deadlock_report_names_all_blocked_at_scale(self):
        engine = Engine(procs="generator")
        # One party short: every arrival parks forever.
        barrier = SimBarrier(engine, N + 1, name="short")

        def body(proc):
            yield from barrier.wait_g()

        procs = [SimProcess(engine, body, name=f"p{i}").start()
                 for i in range(N)]
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        assert set(exc.value.blocked) == set(procs)
        assert f"p{N - 1}#" in str(exc.value)


class TestThousandNodePresets:
    @pytest.mark.parametrize("name,width", [("eth-1024", 0),
                                            ("sci-torus-1024", 32)])
    def test_presets_build(self, name, width):
        from repro.config import preset

        plat = preset(name).build()
        assert plat.cluster.n_nodes == 1024
        assert plat.cluster.params.sci_torus_width == width

    def test_full_dsm_benchmark_on_1024_ranks(self):
        """End to end at scale: the PI benchmark (locks + barriers through
        the whole DSM stack) on the 1024-node Ethernet preset."""
        import functools

        from repro.apps import get_app
        from repro.apps.common import merge_rank_results
        from repro.config import preset
        from repro.models.jiajia_api import JiaJiaApi

        plat = preset("eth-1024").build()
        api = JiaJiaApi(plat.hamster)
        merged = merge_rank_results(
            api.run(functools.partial(get_app("pi"), intervals=1 << 14)))
        assert merged.verified
        assert plat.engine.now > 0
