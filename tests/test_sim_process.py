"""Unit tests for thread-backed simulated processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from tests.conftest import run_procs


class TestHold:
    def test_hold_advances_virtual_time(self, engine):
        stamps = []

        def body(proc):
            stamps.append(proc.now)
            proc.hold(1.5)
            stamps.append(proc.now)
            proc.hold(0.5)
            stamps.append(proc.now)

        run_procs(engine, body)
        assert stamps == [0.0, 1.5, 2.0]

    def test_zero_and_negative_hold_are_noops(self, engine):
        def body(proc):
            proc.hold(0.0)
            proc.hold(-1.0)
            return proc.now

        assert run_procs(engine, body) == [0.0]

    def test_holds_interleave_across_processes(self, engine):
        order = []

        def a(proc):
            proc.hold(1.0)
            order.append("a@1")
            proc.hold(2.0)
            order.append("a@3")

        def b(proc):
            proc.hold(2.0)
            order.append("b@2")

        run_procs(engine, a, b)
        assert order == ["a@1", "b@2", "a@3"]


class TestSuspendWake:
    def test_suspend_until_woken(self, engine):
        def sleeper(proc):
            proc.suspend()
            return proc.now

        def waker(proc, target):
            proc.hold(3.0)
            target.wake()

        s = SimProcess(engine, sleeper, name="s").start()
        SimProcess(engine, waker, args=(s,), name="w").start()
        engine.run()
        assert s.result == 3.0

    def test_wake_with_delay(self, engine):
        def sleeper(proc):
            proc.suspend()
            return proc.now

        s = SimProcess(engine, sleeper).start()

        def waker(proc, target):
            target.wake(delay=2.0)

        SimProcess(engine, waker, args=(s,)).start()
        engine.run()
        assert s.result == 2.0


class TestJoin:
    def test_join_returns_result(self, engine):
        def worker(proc):
            proc.hold(1.0)
            return "payload"

        w = SimProcess(engine, worker).start()

        def joiner(proc):
            return proc.join(w)

        j = SimProcess(engine, joiner).start()
        engine.run()
        assert j.result == "payload"

    def test_join_already_dead_process(self, engine):
        def worker(proc):
            return 7

        w = SimProcess(engine, worker).start()

        def joiner(proc):
            proc.hold(5.0)  # worker long dead by now
            return proc.join(w)

        j = SimProcess(engine, joiner).start()
        engine.run()
        assert j.result == 7

    def test_multiple_joiners_all_wake(self, engine):
        def worker(proc):
            proc.hold(1.0)
            return "x"

        w = SimProcess(engine, worker).start()
        results = run_procs(engine, *([lambda proc: proc.join(w)] * 3))
        assert results == ["x", "x", "x"]

    def test_self_join_rejected(self, engine):
        def body(proc):
            with pytest.raises(SimulationError):
                proc.join(proc)

        run_procs(engine, body)


class TestLifecycle:
    def test_double_start_rejected(self, engine):
        p = SimProcess(engine, lambda proc: None)
        p.start()
        with pytest.raises(SimulationError):
            p.start()
        engine.run()

    def test_delayed_start(self, engine):
        def body(proc):
            return proc.now

        p = SimProcess(engine, body).start(delay=4.0)
        engine.run()
        assert p.result == 4.0

    def test_alive_flag(self, engine):
        def body(proc):
            proc.hold(1.0)

        p = SimProcess(engine, body).start()
        assert p.alive
        engine.run()
        assert not p.alive
