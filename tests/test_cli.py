"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "pi"])
        assert args.preset == "sw-dsm-4"
        assert args.app == "pi"
        assert args.param == []

    def test_param_type_inference(self):
        args = build_parser().parse_args(
            ["run", "--app", "sor", "--param", "n=64",
             "--param", "locality=false", "--param", "omega=1.5",
             "--param", "tag=hello"])
        params = dict(args.param)
        assert params == {"n": 64, "locality": False, "omega": 1.5,
                          "tag": "hello"}

    def test_bad_param_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "pi", "--param", "oops"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_platforms_lists_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "sw-dsm-4" in out and "hybrid-2" in out
        assert "native-jiajia-4" in out

    def test_apps_lists_table1(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Matrix Multiplication" in out
        assert "288 / 343 molecules" in out

    def test_run_pi(self, capsys):
        code = main(["run", "--preset", "hybrid-2", "--app", "pi",
                     "--param", "intervals=4096"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified : True" in out
        assert "total" in out

    def test_run_with_profile(self, capsys):
        code = main(["run", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out and "sync share" in out

    def test_run_native_binding(self, capsys):
        code = main(["run", "--preset", "native-jiajia-2", "--app", "pi",
                     "--param", "intervals=4096", "--native"])
        assert code == 0
        assert "[native binding]" in capsys.readouterr().out

    def test_run_from_config_file(self, tmp_path, capsys):
        from repro.config import preset

        path = tmp_path / "cluster.cfg"
        path.write_text(preset("hybrid-2").to_text())
        code = main(["run", "--config", str(path), "--app", "pi",
                     "--param", "intervals=4096"])
        assert code == 0
        assert "scivm" in capsys.readouterr().out

    def test_run_unknown_app(self):
        from repro.apps.common import AppError

        with pytest.raises(AppError):
            main(["run", "--preset", "hybrid-2", "--app", "doom"])


class TestObservabilityCommands:
    def test_run_with_trace_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.trace.json"
        code = main(["run", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--trace-out", str(path)])
        assert code == 0
        assert "trace    : written to" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_trace_subcommand_reports_critical_path(self, tmp_path, capsys):
        path = tmp_path / "t.trace.json"
        code = main(["trace", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--trace-out", str(path),
                     "--metrics-interval", "0.0005",
                     "--metrics-out", str(tmp_path / "m.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "compute ms" in out
        assert "spans    :" in out
        assert (tmp_path / "m.csv").read_text().startswith("time,")

    def test_trace_validate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "v.trace.json"
        assert main(["trace", "--preset", "sw-dsm-2", "--app", "pi",
                     "--param", "intervals=4096",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--validate", str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"name": "x"}]}')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "invalid:" in capsys.readouterr().out

    def test_metrics_out_requires_interval(self):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "sw-dsm-2", "--app", "pi",
                  "--metrics-out", "m.csv"])

    def test_chaos_with_trace_out(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "chaos.trace.json"
        code = main(["chaos", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--fault-seed", "42",
                     "--trace-out", str(path)])
        assert code == 0
        assert "outcome  : completed" in capsys.readouterr().out
        assert validate_chrome_trace(path.read_text()) == []


class TestBenchCommands:
    ONLY = ["--only", "sw-dsm-2/PI"]

    def test_parsing_defaults(self):
        args = build_parser().parse_args(["bench", "run"])
        assert args.suite == "smoke" and args.repeat == 1
        args = build_parser().parse_args(
            ["bench", "compare", "--json", "x.json",
             "--threshold", "host_seconds=50"])
        assert dict(args.threshold) == {"host_seconds": 50}

    def test_bench_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_run_writes_valid_telemetry(self, tmp_path, capsys):
        from repro.bench.telemetry import load_telemetry

        out = tmp_path / "BENCH_smoke.json"
        code = main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--json-out", str(out)])
        assert code == 0
        doc = load_telemetry(str(out))  # raises if schema-invalid
        assert [r["id"] for r in doc["records"]] == ["sw-dsm-2/PI"]
        stdout = capsys.readouterr().out
        assert "[bench] sw-dsm-2/PI" in stdout
        assert "events/s" in stdout

    def test_run_only_no_match_fails(self, capsys):
        code = main(["bench", "run", "--only", "no-such-benchmark"])
        assert code == 2
        assert "matched no benchmark" in capsys.readouterr().out

    def test_run_with_profile_prints_worklist(self, capsys):
        code = main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--profile"])
        assert code == 0
        assert "host hot functions" in capsys.readouterr().out

    def test_compare_against_missing_baseline(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--json-out", str(out)]) == 0
        code = main(["bench", "compare", "--json", str(out),
                     "--baseline", str(tmp_path / "nope.json")])
        assert code == 1
        assert "update-baseline" in capsys.readouterr().out

    def test_update_baseline_then_compare_clean(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        base = tmp_path / "base.json"
        assert main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--json-out", str(out)]) == 0
        assert main(["bench", "update-baseline", "--json", str(out),
                     "--baseline", str(base)]) == 0
        assert base.exists()
        capsys.readouterr()
        code = main(["bench", "compare", "--json", str(out),
                     "--baseline", str(base), "--show-ok"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "verdicts:" in stdout and "ok=" in stdout
        assert "result: ok" in stdout

    def test_compare_flags_synthetic_regression(self, tmp_path, capsys):
        import json

        out = tmp_path / "t.json"
        base = tmp_path / "base.json"
        assert main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--json-out", str(out)]) == 0
        assert main(["bench", "update-baseline", "--json", str(out),
                     "--baseline", str(base)]) == 0
        doc = json.loads(out.read_text())
        doc["records"][0]["virtual_seconds"] *= 1.05  # +5% virtual time
        out.write_text(json.dumps(doc))
        capsys.readouterr()
        code = main(["bench", "compare", "--json", str(out),
                     "--baseline", str(base)])
        assert code == 1
        assert "HARD REGRESSION" in capsys.readouterr().out

    def test_report_markdown_and_html(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["bench", "run", "--scale", "0.02", *self.ONLY,
                     "--json-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--json", str(out)]) == 0
        assert "# Benchmark telemetry" in capsys.readouterr().out
        html = tmp_path / "report.html"
        assert main(["bench", "report", "--json", str(out),
                     "--out", str(html)]) == 0
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_experiments_json_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "experiments.json"
        assert main(["experiments", "--scale", "0.02",
                     "--json-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.bench.experiments/1"
        assert doc["figure3_advantage_pct"]


class TestSweepCommands:
    def _grid(self, tmp_path):
        import json

        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "presets": ["smp-2", "sw-dsm-2"], "labels": ["PI"],
            "scales": [0.04], "suite": "sweep-cli"}), encoding="utf-8")
        return str(path)

    def test_sweep_run_then_rerun_all_cached(self, tmp_path, capsys):
        import json

        grid = self._grid(tmp_path)
        cache = str(tmp_path / "cache")
        out = str(tmp_path / "sweep.json")
        manifest = str(tmp_path / "manifest.json")
        assert main(["sweep", "run", "--grid", grid, "--cache-dir", cache,
                     "--json-out", out, "--manifest", manifest]) == 0
        text = capsys.readouterr().out
        assert "miss" in text
        doc = json.loads(open(out, encoding="utf-8").read())
        assert doc["suite"] == "sweep-cli" and len(doc["records"]) == 2

        # second run must be pure cache hits — the CI rerun gate
        assert main(["sweep", "run", "--grid", grid, "--cache-dir", cache,
                     "--expect-cached"]) == 0
        assert "hit" in capsys.readouterr().out

    def test_sweep_expect_cached_fails_cold(self, tmp_path, capsys):
        grid = self._grid(tmp_path)
        assert main(["sweep", "run", "--grid", grid,
                     "--cache-dir", str(tmp_path / "cold"),
                     "--expect-cached"]) == 3
        capsys.readouterr()

    def test_sweep_show_and_status(self, tmp_path, capsys):
        grid = self._grid(tmp_path)
        cache = str(tmp_path / "cache")
        manifest = str(tmp_path / "manifest.json")
        assert main(["sweep", "run", "--grid", grid, "--cache-dir", cache,
                     "--manifest", manifest]) == 0
        capsys.readouterr()
        assert main(["sweep", "show", "--grid", grid,
                     "--cache-dir", cache]) == 0
        assert "cached" in capsys.readouterr().out
        assert main(["sweep", "status", "--manifest", manifest]) == 0
        out = capsys.readouterr().out
        assert "miss" in out

    def test_sweep_bad_grid_is_a_config_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"presets": ["nope"], "labels": ["PI"]}',
                       encoding="utf-8")
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["sweep", "run", "--grid", str(bad)])

    def test_sweep_expect_cached_names_offending_cells(self, tmp_path,
                                                       capsys):
        grid = self._grid(tmp_path)
        assert main(["sweep", "run", "--grid", grid,
                     "--cache-dir", str(tmp_path / "cold"),
                     "--expect-cached"]) == 3
        out = capsys.readouterr().out
        assert "expect-cached:   miss: smp-2/PI@0.04" in out
        assert "expect-cached:   miss: sw-dsm-2/PI@0.04" in out


class TestFleetCommands:
    def _swept(self, tmp_path, workers="2"):
        import json

        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "presets": ["smp-2", "sw-dsm-2"], "labels": ["PI"],
            "scales": [0.04], "suite": "fleet-cli"}), encoding="utf-8")
        events = str(tmp_path / "events.jsonl")
        manifest = str(tmp_path / "manifest.json")
        telemetry = str(tmp_path / "sweep.json")
        assert main(["sweep", "run", "--grid", str(grid),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--workers", workers, "--heartbeat", "0.02",
                     "--events", events, "--manifest", manifest,
                     "--json-out", telemetry]) == 0
        return events, manifest, telemetry

    def test_sweep_run_writes_a_valid_event_log(self, tmp_path, capsys):
        from repro.fabric import validate_events

        events, _, _ = self._swept(tmp_path)
        assert "events   : written to" in capsys.readouterr().out
        assert validate_events(events) == []

    def test_sweep_watch_once_renders_the_fleet(self, tmp_path, capsys):
        events, _, _ = self._swept(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "watch", "--events", events, "--once"]) == 0
        out = capsys.readouterr().out
        assert "w0" in out                      # per-worker status rows
        assert "cache hit ratio:" in out
        assert "events/s" in out
        assert "ETA:" in out

    def test_sweep_watch_rejects_a_broken_log(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "nope/9"}\n', encoding="utf-8")
        assert main(["sweep", "watch", "--events", str(bad),
                     "--once"]) == 2
        assert "event log error" in capsys.readouterr().out

    def test_sweep_report_exports_all_three_forms(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        events, manifest, telemetry = self._swept(tmp_path)
        capsys.readouterr()
        fleet = str(tmp_path / "fleet.json")
        prom = str(tmp_path / "fleet.prom")
        trace = str(tmp_path / "fleet.trace")
        assert main(["sweep", "report", "--events", events,
                     "--manifest", manifest, "--telemetry", telemetry,
                     "--json-out", fleet, "--prom-out", prom,
                     "--trace-out", trace]) == 0
        capsys.readouterr()
        doc = json.loads(open(fleet, encoding="utf-8").read())
        assert doc["schema"] == "repro.obs.fleet/1"
        assert doc["cells"]["total"] == 2
        assert "critical_path_totals" in doc and "cache" in doc
        assert "repro_sweep_cells{" in open(prom, encoding="utf-8").read()
        assert validate_chrome_trace(
            open(trace, encoding="utf-8").read()) == []

    def test_sweep_report_defaults_to_json_on_stdout(self, tmp_path, capsys):
        events, _, _ = self._swept(tmp_path, workers="1")
        capsys.readouterr()
        assert main(["sweep", "report", "--events", events]) == 0
        assert '"schema": "repro.obs.fleet/1"' in capsys.readouterr().out
