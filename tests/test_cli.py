"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "pi"])
        assert args.preset == "sw-dsm-4"
        assert args.app == "pi"
        assert args.param == []

    def test_param_type_inference(self):
        args = build_parser().parse_args(
            ["run", "--app", "sor", "--param", "n=64",
             "--param", "locality=false", "--param", "omega=1.5",
             "--param", "tag=hello"])
        params = dict(args.param)
        assert params == {"n": 64, "locality": False, "omega": 1.5,
                          "tag": "hello"}

    def test_bad_param_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "pi", "--param", "oops"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_platforms_lists_presets(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "sw-dsm-4" in out and "hybrid-2" in out
        assert "native-jiajia-4" in out

    def test_apps_lists_table1(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Matrix Multiplication" in out
        assert "288 / 343 molecules" in out

    def test_run_pi(self, capsys):
        code = main(["run", "--preset", "hybrid-2", "--app", "pi",
                     "--param", "intervals=4096"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified : True" in out
        assert "total" in out

    def test_run_with_profile(self, capsys):
        code = main(["run", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out and "sync share" in out

    def test_run_native_binding(self, capsys):
        code = main(["run", "--preset", "native-jiajia-2", "--app", "pi",
                     "--param", "intervals=4096", "--native"])
        assert code == 0
        assert "[native binding]" in capsys.readouterr().out

    def test_run_from_config_file(self, tmp_path, capsys):
        from repro.config import preset

        path = tmp_path / "cluster.cfg"
        path.write_text(preset("hybrid-2").to_text())
        code = main(["run", "--config", str(path), "--app", "pi",
                     "--param", "intervals=4096"])
        assert code == 0
        assert "scivm" in capsys.readouterr().out

    def test_run_unknown_app(self):
        from repro.apps.common import AppError

        with pytest.raises(AppError):
            main(["run", "--preset", "hybrid-2", "--app", "doom"])


class TestObservabilityCommands:
    def test_run_with_trace_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.trace.json"
        code = main(["run", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--trace-out", str(path)])
        assert code == 0
        assert "trace    : written to" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_trace_subcommand_reports_critical_path(self, tmp_path, capsys):
        path = tmp_path / "t.trace.json"
        code = main(["trace", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--param", "iterations=2",
                     "--trace-out", str(path),
                     "--metrics-interval", "0.0005",
                     "--metrics-out", str(tmp_path / "m.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "compute ms" in out
        assert "spans    :" in out
        assert (tmp_path / "m.csv").read_text().startswith("time,")

    def test_trace_validate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "v.trace.json"
        assert main(["trace", "--preset", "sw-dsm-2", "--app", "pi",
                     "--param", "intervals=4096",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--validate", str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"name": "x"}]}')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "invalid:" in capsys.readouterr().out

    def test_metrics_out_requires_interval(self):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "sw-dsm-2", "--app", "pi",
                  "--metrics-out", "m.csv"])

    def test_chaos_with_trace_out(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "chaos.trace.json"
        code = main(["chaos", "--preset", "sw-dsm-2", "--app", "sor",
                     "--param", "n=64", "--fault-seed", "42",
                     "--trace-out", str(path)])
        assert code == 0
        assert "outcome  : completed" in capsys.readouterr().out
        assert validate_chrome_trace(path.read_text()) == []
