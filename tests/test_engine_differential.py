"""Differential tests: thread-backed vs generator (continuation) processes.

The generator scheduler replaces one OS thread per simulated process with
a resumable generator driven by the dispatch loop. Its contract is strict:
**every virtual-time observable is bit-identical** to the thread backend —
event traces, final process results, lock hand-off order, fault outcomes.
These tests pin that contract down with randomized programs (hypothesis)
on top of the fixed golden scenarios of ``repro.bench.diffcheck``.

Program bodies are written once as generator functions; the generator
backend runs them stackless while the thread backend trampolines the same
generators on its baton threads (``SimProcess.drive``), so a divergence
is always a scheduler bug, never a program-text difference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.diffcheck import stream_digest
from repro.errors import DeadlockError
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.resources import SimBarrier, SimLock
from repro.sim.trace import Tracer

BACKENDS = ("thread", "generator")

# ------------------------------------------------------------ program model
#: hold durations drawn from a small exact-in-binary set: determinism must
#: hold for any float, but a finite set keeps failure cases readable.
_DTS = (0.25, 0.5, 1.0, 1.75)

_op = st.one_of(
    st.tuples(st.just("hold"), st.sampled_from(_DTS)),
    st.tuples(st.just("lock"), st.integers(0, 2), st.sampled_from(_DTS)),
    st.tuples(st.just("spawn"), st.sampled_from(_DTS)),
    st.tuples(st.just("daemon"), st.sampled_from(_DTS)),
)

#: A program: per-worker rounds of ops; all workers share the round count
#: so the end-of-round barrier is always satisfiable.
_programs = st.integers(2, 4).flatmap(
    lambda n_workers: st.integers(1, 3).flatmap(
        lambda n_rounds: st.tuples(
            st.just(n_workers),
            st.lists(  # ops[worker][round] -> list of ops
                st.lists(st.lists(_op, max_size=3),
                         min_size=n_rounds, max_size=n_rounds),
                min_size=n_workers, max_size=n_workers))))


def _child(proc, dt):
    yield dt
    return ("child-done", dt, proc.now)


def _daemon(proc, dt, log):
    yield dt
    log.append(("daemon", dt, proc.now))


def _worker(proc, wid, rounds, locks, barrier, log):
    engine = proc.engine
    for r, ops in enumerate(rounds):
        for op in ops:
            if op[0] == "hold":
                yield op[1]
            elif op[0] == "lock":
                lock = locks[op[1]]
                yield from lock.acquire_g()
                log.append(("locked", wid, r, op[1], proc.now))
                yield op[2]
                lock.release()
            elif op[0] == "spawn":
                child = SimProcess(engine, _child, args=(op[1],),
                                   name=f"child-{wid}-{r}").start()
                result = yield from proc.join_g(child)
                log.append(("joined", wid, r, result))
            elif op[0] == "daemon":
                SimProcess(engine, _daemon, args=(op[1], log),
                           name=f"daemon-{wid}-{r}", daemon=True).start()
        generation = yield from barrier.wait_g()
        log.append(("barrier", wid, generation, proc.now))
    return ("worker-done", wid, proc.now)


def _run_program(backend, n_workers, program):
    engine = Engine(trace=Tracer(enabled=True), procs=backend)
    locks = [SimLock(engine, name=f"L{i}") for i in range(3)]
    barrier = SimBarrier(engine, n_workers, name="rendezvous")
    log = []
    workers = [SimProcess(engine, _worker,
                          args=(wid, program[wid], locks, barrier, log),
                          name=f"w{wid}").start()
               for wid in range(n_workers)]
    final = engine.run()
    digest, n_events = stream_digest(engine.trace.events)
    return {
        "virtual": final,
        "digest": digest,
        "trace_events": n_events,
        "log": list(log),
        "results": [w.result for w in workers],
    }


# ------------------------------------------------------------------- tests
class TestRandomProgramsBitIdentical:
    @settings(max_examples=40, deadline=None)
    @given(_programs)
    def test_trace_and_final_state_match(self, drawn):
        n_workers, program = drawn
        thread = _run_program("thread", n_workers, program)
        generator = _run_program("generator", n_workers, program)
        assert generator == thread

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_seeded_fault_plans_match(self, seed):
        """Both backends replay the same seeded fault plan identically —
        drops, retransmissions, and their trace timing included."""
        from repro.bench.diffcheck import _with_procs, diff_records
        from repro.config import preset
        from repro.faults import FaultPlan
        from repro.faults.chaos import run_chaos

        def capture(backend):
            with _with_procs(backend):
                cfg = preset("sw-dsm-2")
                cfg.trace = True
                res = run_chaos(cfg, app="pi",
                                app_params={"intervals": 2048},
                                plan=FaultPlan.seeded(seed))
            digest, n_events = stream_digest(res.built.engine.trace.events)
            return {"outcome": res.outcome, "verified": res.verified,
                    "checksum": res.checksum, "virtual": res.virtual_time,
                    "digest": digest, "trace_events": n_events,
                    "faults": dict(res.faults)}

        assert diff_records(capture("generator"), capture("thread")) == []


class TestPerEnginePids:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fresh_engine_starts_at_pid_1(self, backend):
        """pids are engine-local: the first process of *every* engine is
        pid 1 (the old class-global counter leaked identities across
        engines and made trace digests depend on test execution order)."""
        for _ in range(2):  # a second engine must restart the sequence
            engine = Engine(procs=backend)
            first = SimProcess(engine, lambda proc: proc.now, name="a").start()
            second = SimProcess(engine, lambda proc: proc.now, name="b").start()
            assert (first.pid, second.pid) == (1, 2)
            engine.run()


class TestDeadlockParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadlock_names_blocked_set(self, backend):
        def stuck(proc, lock):
            yield from lock.acquire_g()
            yield from lock.acquire_g()  # unreachable: self-deadlock guard

        engine = Engine(procs=backend)
        lock = SimLock(engine, name="L")

        def holder(proc):
            yield from lock.acquire_g()
            yield 1.0
            # exits still holding the lock: the waiters are stuck forever

        SimProcess(engine, holder, name="holder").start()
        waiters = [SimProcess(engine, stuck, args=(lock,),
                              name=f"stuck{i}").start() for i in range(3)]
        with pytest.raises(DeadlockError) as exc:
            engine.run()
        assert set(exc.value.blocked) == set(waiters)
