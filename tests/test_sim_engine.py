"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.sim.trace import Tracer


class TestScheduling:
    def test_events_run_in_time_order(self, engine):
        seen = []
        engine.schedule(0.3, lambda: seen.append("c"))
        engine.schedule(0.1, lambda: seen.append("a"))
        engine.schedule(0.2, lambda: seen.append("b"))
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_fifo(self, engine):
        seen = []
        for i in range(10):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == list(range(10))

    def test_clock_advances_to_event_time(self, engine):
        stamps = []
        engine.schedule(2.5, lambda: stamps.append(engine.now))
        engine.schedule(1.0, lambda: stamps.append(engine.now))
        end = engine.run()
        assert stamps == [1.0, 2.5]
        assert end == 2.5

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_zero_delay_runs_after_current_instant_fifo(self, engine):
        seen = []

        def first():
            seen.append("first")
            engine.schedule(0.0, lambda: seen.append("nested"))

        engine.schedule(0.0, first)
        engine.schedule(0.0, lambda: seen.append("second"))
        engine.run()
        assert seen == ["first", "second", "nested"]

    def test_schedule_at_absolute_time(self, engine):
        seen = []
        engine.schedule_at(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]

    def test_run_until_bounds_time(self, engine):
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        t = engine.run(until=2.0)
        assert seen == [1] and t == 2.0
        # The remaining event still fires on a later unbounded run.
        engine.run()
        assert seen == [1, 5]

    def test_nested_run_rejected(self, engine):
        def evil():
            with pytest.raises(SimulationError):
                engine.run()

        engine.schedule(0.0, evil)
        engine.run()


class TestProcessesAndErrors:
    def test_run_process_returns_result(self, engine):
        def body(proc):
            proc.hold(1.0)
            return 42

        assert engine.run_process(body) == 42
        assert engine.now == 1.0

    def test_exception_in_process_propagates(self, engine):
        def body(proc):
            raise ValueError("boom")

        SimProcess(engine, body).start()
        with pytest.raises(ValueError, match="boom"):
            engine.run()

    def test_deadlock_detection(self, engine):
        def body(proc):
            proc.suspend()  # nobody will ever wake us

        SimProcess(engine, body, name="stuck").start()
        with pytest.raises(DeadlockError, match="stuck"):
            engine.run()

    def test_daemons_do_not_deadlock(self, engine):
        def daemon_body(proc):
            proc.suspend()

        def worker(proc):
            proc.hold(1.0)
            return "done"

        SimProcess(engine, daemon_body, daemon=True).start()
        p = SimProcess(engine, worker).start()
        engine.run()
        assert p.result == "done"

    def test_require_process_outside_context(self, engine):
        with pytest.raises(SimulationError):
            engine.require_process()

    def test_current_process_tracking(self, engine):
        observed = []

        def body(proc):
            observed.append(engine.current_process is proc)

        SimProcess(engine, body).start()
        engine.run()
        assert observed == [True]
        assert engine.current_process is None


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build_and_run():
            engine = Engine(trace=Tracer(enabled=True))
            trace = []

            def worker(proc, i):
                for step in range(3):
                    proc.hold(0.001 * (i + 1))
                    trace.append((round(engine.now, 9), i, step))

            for i in range(4):
                SimProcess(engine, worker, args=(i,), name=f"w{i}").start()
            engine.run()
            return trace

        assert build_and_run() == build_and_run()
