"""Coverage for the reporting/rendering layer and the experiments CLI glue."""

import pytest

from repro.bench.report import render_bars, render_table
from repro.bench.runners import figure2_overhead, figure3_hybrid_vs_sw


class TestRenderTableShapes:
    def test_mixed_cell_types(self):
        text = render_table(["s", "i", "f"], [["name", 42, 3.14159]])
        assert "name" in text and "42" in text and "3.14" in text

    def test_width_expands_to_widest_cell(self):
        text = render_table(["h"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-long-cell-value")

    def test_no_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "-" in text


class TestRenderBars:
    def test_all_positive(self):
        text = render_bars({"x": 3.0, "y": 1.0})
        x_line, y_line = text.splitlines()
        assert x_line.count("#") > y_line.count("#")

    def test_zero_values(self):
        text = render_bars({"x": 0.0})
        assert "+0.00" in text

    def test_custom_unit(self):
        assert "ms" in render_bars({"x": 1.0}, unit="ms")


class TestRunnersSmallScale:
    """Tiny-scale sanity runs of the figure generators (full scale is the
    benchmarks' job; this just pins the wiring)."""

    def test_figure2_label_subset(self):
        data = figure2_overhead(scale=0.04, labels=["PI"])
        assert set(data) == {"PI"}
        assert isinstance(data["PI"], float)

    def test_figure3_label_subset(self):
        data = figure3_hybrid_vs_sw(scale=0.04, labels=["PI", "SOR opt"])
        assert set(data) == {"PI", "SOR opt"}


class TestExperimentsCli:
    def test_tiny_scale_end_to_end(self, capsys):
        from repro.bench.experiments import main

        assert main(["experiments", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Figure 2" in out
        assert "Figure 3" in out
        assert "Figure 4" in out
