"""Content-address properties of the experiment fabric's cache.

The contract under test: the cache key is a pure function of the cell's
*identity* — machine params, workload, fault plan, binding, code schema —
stable across processes, and it changes whenever any swept parameter
changes.
"""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (ResultCache, Scenario, TelemetryCache,
                          canonical_record, canonical_records_json,
                          scenario_key)
from repro.faults import FaultPlan
from repro.machine.params import (MachineParams, fault_plan_hash,
                                  stable_digest, workload_hash)

BASE = Scenario(preset="sw-dsm-2", label="PI", scale=0.05)


class TestIdentityHashes:
    def test_stable_digest_is_value_based(self):
        assert stable_digest({"b": 1, "a": 2}) == stable_digest({"a": 2, "b": 1})
        assert stable_digest([1, 2]) != stable_digest([2, 1])

    def test_workload_hash_ignores_param_order(self):
        a = workload_hash("sor", {"n": 64, "iterations": 2}, 0.05)
        b = workload_hash("sor", {"iterations": 2, "n": 64}, 0.05)
        assert a == b

    def test_workload_hash_changes_with_every_component(self):
        base = workload_hash("sor", {"n": 64}, 0.05)
        assert workload_hash("lu", {"n": 64}, 0.05) != base
        assert workload_hash("sor", {"n": 128}, 0.05) != base
        assert workload_hash("sor", {"n": 64}, 0.1) != base
        assert workload_hash("sor", {"n": 64}, 0.05, seed=1) != base

    def test_fault_plan_hash_spelling_independent(self):
        plan = FaultPlan.seeded(42)
        assert fault_plan_hash(plan) == fault_plan_hash(42)
        assert fault_plan_hash(plan) == fault_plan_hash(plan.to_dict())

    def test_fault_plan_hash_none_is_distinct(self):
        assert fault_plan_hash(None) != fault_plan_hash(0)
        assert fault_plan_hash(FaultPlan.seeded(1)) != fault_plan_hash(
            FaultPlan.seeded(2))

    def test_machine_fingerprint_covers_override_composition(self):
        base = MachineParams()
        assert base.fingerprint == MachineParams().fingerprint
        assert base.with_overrides(eth_latency=80e-6).fingerprint \
            != base.fingerprint


class TestScenarioKey:
    def test_equal_scenarios_share_a_key(self):
        assert scenario_key(BASE) == scenario_key(
            Scenario(preset="sw-dsm-2", label="PI", scale=0.05))

    @pytest.mark.parametrize("variant", [
        dict(preset="sw-dsm-4"),
        dict(label="SOR"),
        dict(scale=0.06),
        dict(native=True),
        dict(nodes=3),
        dict(overrides=(("eth_latency", 80e-6),)),
        dict(faults=FaultPlan.seeded(42).dumps()),
    ])
    def test_key_changes_when_any_swept_parameter_changes(self, variant):
        changed = Scenario.from_dict({**BASE.to_dict(), **{
            k: (dict(v) if k == "overrides" else v)
            for k, v in variant.items()}})
        assert scenario_key(changed) != scenario_key(BASE)

    def test_repeat_is_not_part_of_the_identity(self):
        # repeat only changes host-time statistics, never the result
        assert scenario_key(BASE) == scenario_key(
            Scenario.from_dict({**BASE.to_dict(), "repeat": 3}))

    @settings(max_examples=20, deadline=None)
    @given(latency=st.floats(min_value=1e-6, max_value=1e-3,
                             allow_nan=False, allow_infinity=False),
           scale=st.floats(min_value=0.01, max_value=0.2,
                           allow_nan=False, allow_infinity=False))
    def test_key_tracks_override_and_scale_values(self, latency, scale):
        sc = Scenario.from_dict({**BASE.to_dict(), "scale": scale,
                                 "overrides": {"eth_latency": latency}})
        # the key is injective over these axes: recomputing gives the same
        # key, nudging either value gives a different one
        assert scenario_key(sc) == scenario_key(sc)
        nudged = Scenario.from_dict({**sc.to_dict(),
                                     "overrides": {"eth_latency": latency * 2}})
        assert scenario_key(nudged) != scenario_key(sc)

    def test_key_stable_across_processes(self):
        # hash randomization must not leak in: a fresh interpreter
        # computes the identical address
        code = ("import json,sys; from repro.fabric import Scenario, "
                "scenario_key; "
                "print(scenario_key(Scenario.from_dict(json.load(sys.stdin))))")
        out = subprocess.run(
            [sys.executable, "-c", code], input=json.dumps(BASE.to_dict()),
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin",
                 "PYTHONHASHSEED": "12345"})
        assert out.stdout.strip() == scenario_key(BASE)


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = scenario_key(BASE)
        assert cache.get(key) is None and cache.misses == 1
        cache.put(key, {"id": "x", "virtual_seconds": 1.0})
        assert key in cache and len(cache) == 1
        assert cache.get(key) == {"id": "x", "virtual_seconds": 1.0}
        assert cache.hits == 1 and cache.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = scenario_key(BASE)
        cache.put(key, {"id": "x"})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_wrong_schema_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = scenario_key(BASE)
        cache.put(key, {"id": "x"})
        entry = json.loads(cache.path_for(key).read_text(encoding="utf-8"))
        entry["schema"] = "repro.fabric.cache/0"
        cache.path_for(key).write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put(scenario_key(BASE), {"id": "x"})
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCanonicalForm:
    def test_host_fields_stripped(self):
        record = {"id": "a", "virtual_seconds": 1.0, "host_seconds": 0.5,
                  "host_seconds_all": [0.5], "events_per_sec": 10.0,
                  "repeats": 2, "events_executed": 5}
        canon = canonical_record(record)
        assert canon == {"id": "a", "virtual_seconds": 1.0,
                         "events_executed": 5}

    def test_canonical_json_is_order_stable(self):
        a = canonical_records_json([{"b": 1, "a": 2, "host_seconds": 9}])
        b = canonical_records_json([{"a": 2, "host_seconds": 3, "b": 1}])
        assert a == b


class TestTelemetryCacheAdapter:
    def test_lookup_rewrites_identity_to_requesting_context(self, tmp_path):
        store = ResultCache(str(tmp_path / "c"))
        adapter = TelemetryCache(store)
        record = {"id": "sw-dsm-2/PI@0.05", "suite": "sweep",
                  "preset": "sw-dsm-2", "benchmark": "PI", "scale": 0.05,
                  "native": False, "virtual_seconds": 1.0}
        adapter.store_record(record)
        hit = adapter.lookup("sw-dsm-2", "PI", 0.05, False, suite="smoke")
        assert hit["id"] == "sw-dsm-2/PI" and hit["suite"] == "smoke"
        assert hit["virtual_seconds"] == 1.0
        assert adapter.lookup("sw-dsm-2", "PI", 0.06, False, "smoke") is None
