"""Tests for the machine-readable exporters."""

import csv
import io
import json

import numpy as np
import pytest

from repro.apps.common import AppResult
from repro.bench.runners import run_app_on
from repro.config import preset
from repro.tools.export import figure_to_csv, run_to_json, stats_to_csv


def make_result():
    return AppResult(app="sor", rank=-1,
                     phases={"total": 0.25, "init": np.float64(0.05)},
                     verified=True, checksum=12.5,
                     extra={"n": 64, "locality": True})


class TestRunToJson:
    def test_round_trips_through_json(self):
        doc = json.loads(run_to_json(make_result()))
        assert doc["app"] == "sor"
        assert doc["verified"] is True
        assert doc["phases_seconds"]["total"] == 0.25
        assert doc["phases_seconds"]["init"] == 0.05  # numpy scalar coerced
        assert doc["params"]["locality"] is True

    def test_with_platform_profile(self):
        plat = preset("sw-dsm-2").build()
        merged = run_app_on_platform(plat)
        doc = json.loads(run_to_json(merged, platform=plat))
        assert "ranks" in doc and len(doc["ranks"]) == 2
        assert doc["wire"]["messages"] > 0
        assert doc["total_virtual_seconds"] > 0

    def test_stable_key_order(self):
        a = run_to_json(make_result())
        b = run_to_json(make_result())
        assert a == b


def run_app_on_platform(plat):
    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi

    api = JiaJiaApi(plat.hamster)
    fn = get_app("pi")
    return merge_rank_results(api.run(lambda a: fn(a, intervals=4096)))


class TestFigureToCsv:
    def test_flat_rows(self):
        text = figure_to_csv({"MatMult": -0.22, "PI": 1.5},
                             value_header="overhead_pct")
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "overhead_pct"]
        assert rows[1] == ["MatMult", "-0.2200"]

    def test_nested_series(self):
        text = figure_to_csv({"PI": {"hardware": 100.0, "hybrid": 101.2}})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "hardware", "hybrid"]
        assert rows[1] == ["PI", "100.0000", "101.2000"]


class TestStatsToCsv:
    def test_flattens_tree(self):
        plat = preset("smp-2").build()
        plat.hamster.run_spmd(lambda env: env.barrier())
        text = stats_to_csv(plat.hamster.query_statistics())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["scope", "counter", "value"]
        scopes = {r[0] for r in rows[1:]}
        assert any(s.startswith("dsm.rank0") for s in scopes)
        assert "sync" in scopes


class TestCliJsonFlag:
    def test_run_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        code = main(["run", "--preset", "hybrid-2", "--app", "pi",
                     "--param", "intervals=4096", "--json", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["app"] == "pi" and doc["verified"]
