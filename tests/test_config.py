"""Tests for cluster configuration: presets, parsing, validation, build."""

import pytest

from repro.config import ClusterConfig, PRESETS, load, loads, preset
from repro.errors import ConfigurationError


class TestValidation:
    def test_valid_combinations(self):
        ClusterConfig(platform="smp", dsm="smp", nodes=2)
        ClusterConfig(platform="beowulf", dsm="jiajia", nodes=4)
        ClusterConfig(platform="sci", dsm="scivm", nodes=4)
        ClusterConfig(platform="sci", dsm="jiajia", nodes=4)  # JiaJia over SCI ok

    def test_invalid_combinations(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="beowulf", dsm="smp")
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="smp", dsm="jiajia")
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="beowulf", dsm="scivm")

    def test_unknown_names(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="quantum")
        with pytest.raises(ConfigurationError):
            ClusterConfig(dsm="magic")

    def test_node_count(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(nodes=0)


class TestPresets:
    def test_all_presets_build(self):
        for name in PRESETS:
            plat = preset(name).build()
            assert plat.hamster is not None

    def test_preset_returns_copy(self):
        a = preset("sw-dsm-4")
        a.param_overrides["page_size"] = 1
        assert "page_size" not in PRESETS["sw-dsm-4"].param_overrides

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            preset("mystery-machine")

    def test_native_preset_differs(self):
        native = preset("native-jiajia-4")
        assert native.call_overhead == 0.0
        assert not native.integrated_messaging
        assert native.param_overrides["hamster_fault_hook"] == 0.0


class TestTextFormat:
    def test_loads_basic(self):
        cfg = loads("""
            [cluster]
            platform = sci
            nodes = 2
            [hamster]
            dsm = scivm
            messaging = separate
        """)
        assert cfg.platform == "sci" and cfg.dsm == "scivm"
        assert cfg.nodes == 2 and not cfg.integrated_messaging

    def test_loads_with_params(self):
        cfg = loads("""
            [cluster]
            platform = beowulf
            nodes = 4
            [hamster]
            dsm = jiajia
            [params]
            page_size = 8192
            coalesce_messaging = false
        """)
        assert cfg.param_overrides == {"page_size": 8192,
                                       "coalesce_messaging": False}
        assert cfg.params().page_size == 8192

    def test_loads_comments_and_blanks(self):
        cfg = loads("# header\n[cluster]\nplatform = smp  \n\n[hamster]\ndsm = smp\n")
        assert cfg.platform == "smp"

    def test_loads_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            loads("[cluster]\nthis is not a key value pair\n")
        with pytest.raises(ConfigurationError):
            loads("[params]\nnot_a_real_param = 3\n")
        with pytest.raises(ConfigurationError):
            loads("[hamster]\nmessaging = sometimes\n")

    def test_roundtrip(self):
        cfg = ClusterConfig(platform="sci", dsm="scivm", nodes=2,
                            integrated_messaging=False,
                            param_overrides={"page_size": 8192})
        back = loads(cfg.to_text())
        assert back.platform == cfg.platform
        assert back.dsm == cfg.dsm
        assert back.nodes == cfg.nodes
        assert back.integrated_messaging == cfg.integrated_messaging
        assert back.param_overrides == cfg.param_overrides

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "cluster.cfg"
        path.write_text(preset("hybrid-2").to_text())
        cfg = load(str(path))
        assert cfg.dsm == "scivm" and cfg.nodes == 2


class TestBuild:
    def test_build_wires_everything(self):
        plat = preset("sw-dsm-4").build()
        assert plat.engine is plat.cluster.engine
        assert plat.dsm.cluster is plat.cluster
        assert plat.hamster.dsm is plat.dsm
        assert plat.fabric is not None

    def test_smp_build_has_no_fabric(self):
        plat = preset("smp-2").build()
        assert plat.fabric is None
        assert plat.cluster.network is None

    def test_ranks_override(self):
        plat = ClusterConfig(platform="smp", dsm="smp", nodes=4, ranks=3).build()
        assert plat.hamster.n_ranks == 3

    def test_trace_flag(self):
        cfg = preset("smp-2")
        cfg.trace = True
        plat = cfg.build()
        assert plat.engine.trace.enabled

    def test_param_overrides_reach_machine(self):
        cfg = preset("sw-dsm-2")
        cfg.param_overrides["eth_latency"] = 1e-3
        plat = cfg.build()
        assert plat.cluster.network.latency == 1e-3

    def test_identical_configs_identical_results(self):
        """§5.4 determinism: two builds of the same config produce the same
        virtual timeline for the same program."""
        from tests.conftest import spmd

        def run_once():
            plat = preset("sw-dsm-4").build()

            def main(env):
                A = env.alloc_array((64, 64), name="A")
                A[env.rank * 16:(env.rank + 1) * 16, :] = env.rank
                env.barrier()
                return env.wtime()

            return spmd(plat, main)

        assert run_once() == run_once()
