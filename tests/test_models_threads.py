"""Tests for the POSIX and Win32 thread model layers + command forwarding."""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import ModelError
from repro.models.forwarding import ForwardingService
from repro.models.pthreads import (EBUSY, EINVAL, ETIMEDOUT,
                                   PTHREAD_CREATE_DETACHED, PosixThreadsApi)
from repro.models.win32 import (INFINITE, STILL_ACTIVE, WAIT_OBJECT_0,
                                WAIT_TIMEOUT, Win32ThreadsApi)
from tests.conftest import spmd


# ------------------------------------------------------------- forwarding
class TestForwarding:
    def test_local_invoke_direct(self, swdsm4):
        fwd = ForwardingService(swdsm4.hamster, channel_name="t1")
        fwd.register("add", lambda a, b: a + b)

        def main(env):
            if env.rank == 0:
                return fwd.invoke(0, "add", 2, 3)
            return None

        assert spmd(swdsm4, main)[0] == 5

    def test_remote_invoke_roundtrip(self, swdsm4):
        fwd = ForwardingService(swdsm4.hamster, channel_name="t2")
        executed_on = []

        def where():
            executed_on.append("remote")
            return "done"

        fwd.register("where", where)

        def main(env):
            if env.rank == 0:
                return fwd.invoke(2, "where")
            return None

        assert spmd(swdsm4, main)[0] == "done"
        assert executed_on == ["remote"]

    def test_remote_invoke_costs_time(self, swdsm4):
        fwd = ForwardingService(swdsm4.hamster, channel_name="t3")
        fwd.register("noop", lambda: None)

        def main(env):
            if env.rank == 0:
                t0 = env.wtime()
                fwd.invoke(3, "noop")
                return env.wtime() - t0
            return None

        assert spmd(swdsm4, main)[0] > 100e-6  # an Ethernet round trip

    def test_bound_invoke_runs_in_rank_context(self, swdsm4):
        fwd = ForwardingService(swdsm4.hamster, channel_name="t4")
        dsm = swdsm4.dsm
        fwd.register("whoami", lambda: dsm.current_rank())

        def main(env):
            if env.rank == 0:
                return fwd.invoke(2, "whoami", bind=True)
            return None

        assert spmd(swdsm4, main)[0] == 2

    def test_unknown_and_duplicate_commands(self, swdsm4):
        fwd = ForwardingService(swdsm4.hamster, channel_name="t5")
        fwd.register("x", lambda: None)
        with pytest.raises(ModelError):
            fwd.register("x", lambda: None)

        def main(env):
            if env.rank == 0:
                with pytest.raises(ModelError):
                    fwd.invoke(0, "nope")
            return True

        assert all(spmd(swdsm4, main))


# --------------------------------------------------------------- pthreads
def pthreads_on(preset_name="sw-dsm-4"):
    plat = preset(preset_name).build()
    return plat, PosixThreadsApi(plat.hamster)


class TestPthreadLifecycle:
    def test_create_join_round_robin(self):
        plat, api = pthreads_on()

        def main(p):
            tids = [p.pthread_create(lambda arg: arg * 10, i) for i in range(4)]
            return [p.pthread_join(t)[1] for t in tids]

        assert api.run(main) == [0, 10, 20, 30]

    def test_threads_distributed_across_ranks(self):
        plat, api = pthreads_on()
        dsm = plat.dsm

        def main(p):
            def whereami(_):
                return dsm.current_rank()

            tids = [p.pthread_create(whereami, None) for _ in range(4)]
            return sorted(p.pthread_join(t)[1] for t in tids)

        assert api.run(main) == [0, 1, 2, 3]

    def test_attr_pins_rank(self):
        plat, api = pthreads_on()
        dsm = plat.dsm

        def main(p):
            attr = p.pthread_attr_init()
            assert p.pthread_attr_setnode(attr, 3) == 0
            tid = p.pthread_create(lambda _: dsm.current_rank(), None, attr)
            return p.pthread_join(tid)[1]

        assert api.run(main) == 3

    def test_pthread_exit_value(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            def body(_):
                p.pthread_exit("early")
                return "late"  # unreachable

            tid = p.pthread_create(body, None)
            return p.pthread_join(tid)[1]

        assert api.run(main) == "early"

    def test_join_detached_is_einval(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            attr = p.pthread_attr_init()
            p.pthread_attr_setdetachstate(attr, PTHREAD_CREATE_DETACHED)
            tid = p.pthread_create(lambda _: None, None, attr)
            code, _ = p.pthread_join(tid)
            return code

        assert api.run(main) == EINVAL

    def test_self_and_equal(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            main_tid = p.pthread_self()
            child = p.pthread_create(lambda _: p.pthread_self(), None)
            child_tid = p.pthread_join(child)[1]
            return main_tid, child_tid, p.pthread_equal(main_tid, main_tid)

        main_tid, child_tid, eq = api.run(main)
        assert main_tid == 1 and child_tid != 1 and eq

    def test_once_runs_once(self):
        plat, api = pthreads_on("smp-2")
        calls = []

        def main(p):
            def init():
                calls.append(1)

            def body(_):
                p.pthread_once("ctrl", init)

            tids = [p.pthread_create(body, None) for _ in range(3)]
            for t in tids:
                p.pthread_join(t)
            p.pthread_once("ctrl", init)
            return len(calls)

        assert api.run(main) == 1

    def test_cancel_deferred(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            from repro.models.pthreads import PTHREAD_CANCELED

            def body(_):
                proc = p.hamster.engine.require_process()
                for _ in range(100):
                    proc.hold(1e-3)
                    p.pthread_testcancel()
                return "finished"

            tid = p.pthread_create(body, None)
            p.hamster.engine.require_process().hold(5e-3)
            p.pthread_cancel(tid)
            result = p.pthread_join(tid)[1]
            return result is PTHREAD_CANCELED

        assert api.run(main)


class TestPthreadSync:
    def test_mutex_protects_counter(self):
        plat, api = pthreads_on()

        def main(p):
            arr = p.hamster.memory.alloc_array((1,), name="ctr")
            arr[0] = 0.0
            mutex = p.pthread_mutex_init()

            def body(_):
                for _ in range(5):
                    p.pthread_mutex_lock(mutex)
                    arr[0] = float(arr[0]) + 1.0
                    p.pthread_mutex_unlock(mutex)

            tids = [p.pthread_create(body, None) for _ in range(4)]
            for t in tids:
                p.pthread_join(t)
            arr.refresh()
            return float(arr[0])

        assert api.run(main) == 20.0

    def test_trylock_and_recursive(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            from repro.models.pthreads import PTHREAD_MUTEX_RECURSIVE

            m = p.pthread_mutex_init(PTHREAD_MUTEX_RECURSIVE)
            assert p.pthread_mutex_lock(m) == 0
            assert p.pthread_mutex_lock(m) == 0   # recursive re-entry
            assert p.pthread_mutex_unlock(m) == 0
            assert p.pthread_mutex_unlock(m) == 0

            plain = p.pthread_mutex_init()
            assert p.pthread_mutex_trylock(plain) == 0

            def contender(_):
                return p.pthread_mutex_trylock(plain)

            tid = p.pthread_create(contender, None)
            busy = p.pthread_join(tid)[1]
            p.pthread_mutex_unlock(plain)
            return busy

        assert api.run(main) == EBUSY

    def test_unlock_not_owner_einval(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            m = p.pthread_mutex_init()

            def body(_):
                return p.pthread_mutex_unlock(m)

            p.pthread_mutex_lock(m)
            tid = p.pthread_create(body, None)
            err = p.pthread_join(tid)[1]
            p.pthread_mutex_unlock(m)
            return err

        assert api.run(main) == EINVAL

    def test_cond_signal(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            m = p.pthread_mutex_init()
            cond = p.pthread_cond_init(m)
            state = {"ready": False}

            def waiter(_):
                p.pthread_mutex_lock(m)
                while not state["ready"]:
                    p.pthread_cond_wait(cond, m)
                p.pthread_mutex_unlock(m)
                return p.hamster.timing.wtime()

            tid = p.pthread_create(waiter, None)
            p.hamster.engine.require_process().hold(0.01)
            p.pthread_mutex_lock(m)
            state["ready"] = True
            p.pthread_cond_signal(cond)
            p.pthread_mutex_unlock(m)
            return p.pthread_join(tid)[1] >= 0.01

        assert api.run(main)

    def test_cond_timedwait_times_out(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            m = p.pthread_mutex_init()
            cond = p.pthread_cond_init(m)
            p.pthread_mutex_lock(m)
            code = p.pthread_cond_timedwait(cond, m, timeout=0.01)
            p.pthread_mutex_unlock(m)
            return code

        assert api.run(main) == ETIMEDOUT

    def test_rwlock_many_readers_one_writer(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            rw = p.pthread_rwlock_init()
            assert p.pthread_rwlock_rdlock(rw) == 0
            assert p.pthread_rwlock_tryrdlock(rw) == 0   # readers share
            assert p.pthread_rwlock_trywrlock(rw) == EBUSY
            p.pthread_rwlock_unlock(rw)
            p.pthread_rwlock_unlock(rw)
            assert p.pthread_rwlock_trywrlock(rw) == 0
            assert p.pthread_rwlock_tryrdlock(rw) == EBUSY
            return p.pthread_rwlock_unlock(rw)

        assert api.run(main) == 0

    def test_barrier(self):
        plat, api = pthreads_on()

        def main(p):
            bar = p.pthread_barrier_init(3)
            stamps = []

            def body(i):
                p.hamster.engine.require_process().hold(0.001 * (i + 1))
                p.pthread_barrier_wait(bar)
                stamps.append(p.hamster.timing.wtime())

            tids = [p.pthread_create(body, i) for i in range(3)]
            for t in tids:
                p.pthread_join(t)
            return max(stamps) - min(stamps) < 1e-3

        assert api.run(main)

    def test_keys(self):
        plat, api = pthreads_on("smp-2")

        def main(p):
            key = p.pthread_key_create()

            def body(i):
                p.pthread_setspecific(key, i * 100)
                return p.pthread_getspecific(key)

            tids = [p.pthread_create(body, i) for i in range(2)]
            vals = [p.pthread_join(t)[1] for t in tids]
            assert p.pthread_key_delete(key) == 0
            assert p.pthread_key_delete(key) == EINVAL
            return vals

        assert api.run(main) == [0, 100]


# ------------------------------------------------------------------ win32
def win32_on(preset_name="sw-dsm-4"):
    plat = preset(preset_name).build()
    return plat, Win32ThreadsApi(plat.hamster)


class TestWin32Threads:
    def test_create_wait_exit_code(self):
        plat, api = win32_on()

        def main(w):
            h = w.CreateThread(lambda arg: arg + 1, 41)
            assert w.GetExitCodeThread(h) in (STILL_ACTIVE, 42)
            assert w.WaitForSingleObject(h) == WAIT_OBJECT_0
            return w.GetExitCodeThread(h)

        assert api.run(main) == 42

    def test_create_remote_thread_placement(self):
        plat, api = win32_on()
        dsm = plat.dsm

        def main(w):
            h = w.CreateRemoteThread(2, lambda _: dsm.current_rank())
            w.WaitForSingleObject(h)
            return w.GetExitCodeThread(h)

        assert api.run(main) == 2

    def test_exit_thread(self):
        plat, api = win32_on("smp-2")

        def main(w):
            def body(_):
                w.ExitThread(7)

            h = w.CreateThread(body)
            w.WaitForSingleObject(h)
            return w.GetExitCodeThread(h)

        assert api.run(main) == 7

    def test_wait_for_multiple_all_and_any(self):
        plat, api = win32_on()

        def main(w):
            def body(ms):
                w.Sleep(ms)
                return ms

            handles = [w.CreateThread(body, ms) for ms in (5, 1, 10)]
            first = w.WaitForMultipleObjects(list(handles), wait_all=False)
            all_code = w.WaitForMultipleObjects(list(handles), wait_all=True)
            return first >= WAIT_OBJECT_0, all_code == WAIT_OBJECT_0

        assert api.run(main) == (True, True)

    def test_thread_wait_timeout(self):
        plat, api = win32_on("smp-2")

        def main(w):
            h = w.CreateThread(lambda _: w.Sleep(100))  # 100 ms
            code = w.WaitForSingleObject(h, timeout=1)  # 1 ms
            w.WaitForSingleObject(h)
            return code

        assert api.run(main) == WAIT_TIMEOUT


class TestWin32Sync:
    def test_mutex_handles(self):
        plat, api = win32_on("smp-2")

        def main(w):
            m = w.CreateMutex()
            assert w.WaitForSingleObject(m) == WAIT_OBJECT_0
            assert w.WaitForSingleObject(m, timeout=0) == WAIT_TIMEOUT  # held
            assert w.ReleaseMutex(m)
            assert w.CloseHandle(m)
            return True

        assert api.run(main)

    def test_semaphore_max_enforced(self):
        plat, api = win32_on("smp-2")

        def main(w):
            s = w.CreateSemaphore(1, 2)
            assert w.WaitForSingleObject(s) == WAIT_OBJECT_0
            assert w.ReleaseSemaphore(s, 2)
            assert not w.ReleaseSemaphore(s, 1)  # would exceed maximum
            return w.GetLastError() != 0

        assert api.run(main)

    def test_manual_reset_event_releases_all(self):
        plat, api = win32_on()

        def main(w):
            ev = w.CreateEvent(manual_reset=True)

            def body(_):
                return w.WaitForSingleObject(ev)

            hs = [w.CreateThread(body) for _ in range(3)]
            w.Sleep(5)
            w.SetEvent(ev)
            results = [w.WaitForSingleObject(h) for h in hs]
            codes = [w.GetExitCodeThread(h) for h in hs]
            return results, codes

        results, codes = api.run(main)
        assert results == [WAIT_OBJECT_0] * 3
        assert codes == [WAIT_OBJECT_0] * 3

    def test_auto_reset_event_releases_one(self):
        plat, api = win32_on("smp-2")

        def main(w):
            ev = w.CreateEvent(manual_reset=False, initial_state=True)
            assert w.WaitForSingleObject(ev, timeout=0) == WAIT_OBJECT_0
            # auto-reset consumed the signal
            return w.WaitForSingleObject(ev, timeout=0)

        assert api.run(main) == WAIT_TIMEOUT

    def test_critical_section(self):
        plat, api = win32_on("smp-2")

        def main(w):
            cs = w.InitializeCriticalSection()
            w.EnterCriticalSection(cs)
            assert not w.TryEnterCriticalSection(cs) or True  # held by us
            w.LeaveCriticalSection(cs)
            assert w.TryEnterCriticalSection(cs)
            w.LeaveCriticalSection(cs)
            w.DeleteCriticalSection(cs)
            return True

        assert api.run(main)

    def test_interlocked_ops(self):
        plat, api = win32_on("smp-2")

        def main(w):
            arr = w.hamster.memory.alloc_array((1,), np.int64, name="i")
            arr[0] = 10
            assert w.InterlockedIncrement(arr) == 11
            assert w.InterlockedDecrement(arr) == 10
            assert w.InterlockedExchange(arr, 5) == 10
            assert w.InterlockedCompareExchange(arr, 99, 5) == 5
            assert w.InterlockedExchangeAdd(arr, 1) == 99
            return int(arr[0])

        assert api.run(main) == 100

    def test_tls(self):
        plat, api = win32_on("smp-2")

        def main(w):
            key = w.TlsAlloc()

            def body(i):
                w.TlsSetValue(key, i)
                return w.TlsGetValue(key)

            hs = [w.CreateThread(body, i) for i in range(2)]
            vals = []
            for h in hs:
                w.WaitForSingleObject(h)
                vals.append(w.GetExitCodeThread(h))
            assert w.TlsFree(key)
            return sorted(vals)

        assert api.run(main) == [0, 1]

    def test_system_info(self):
        plat, api = win32_on()

        def main(w):
            info = w.GetSystemInfo()
            return info["dwNumberOfProcessors"], info["dwNumberOfNodes"]

        assert api.run(main) == (4, 4)
