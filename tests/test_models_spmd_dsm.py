"""Tests for the SPMD, SMP/SPMD, JiaJia, TreadMarks, and HLRC model layers."""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.errors import ModelError
from repro.models.hlrc import HlrcApi
from repro.models.jiajia_api import JiaJiaApi
from repro.models.native_jiajia import NativeJiaJiaApi
from repro.models.smp_spmd import SmpSpmdModel
from repro.models.spmd import SpmdModel
from repro.models.treadmarks import TreadMarksApi


class TestSpmdModel:
    def test_identity_and_alloc(self, swdsm4):
        model = SpmdModel(swdsm4.hamster)

        def main(m):
            pid = m.spmd_init()
            assert pid == m.spmd_proc_id()
            assert m.spmd_num_procs() == 4
            assert m.spmd_num_nodes() == 4
            A = m.spmd_alloc_array((8, 8), name="A")
            A[pid * 2:(pid + 1) * 2, :] = float(pid)
            m.spmd_barrier()
            total = float(A[:, :].sum())
            m.spmd_exit()
            return total

        expect = sum(r * 16 for r in range(4))
        assert model.run(main) == [expect] * 4

    def test_locks_and_trylock(self, smp2):
        model = SpmdModel(smp2.hamster)

        def main(m):
            lock = m.spmd_newlock() if m.spmd_proc_id() == 0 else None
            m.spmd_barrier()
            m.spmd_lock(0)
            ok = m.spmd_trylock(0) if False else True
            m.spmd_unlock(0)
            return ok

        assert all(model.run(main))

    def test_messaging(self, swdsm4):
        model = SpmdModel(swdsm4.hamster)

        def main(m):
            pid = m.spmd_proc_id()
            if pid == 0:
                m.spmd_send(1, "payload")
                return None
            if pid == 1:
                return m.spmd_recv()
            return None

        assert model.run(main)[1] == (0, "payload")

    def test_stats_and_capabilities(self, swdsm4):
        model = SpmdModel(swdsm4.hamster)

        def main(m):
            m.spmd_barrier()
            stats = m.spmd_stats()
            caps = m.spmd_capabilities()
            return stats["barriers"] > 0, "software_dsm" in caps

        assert all(all(pair) for pair in model.run(main))

    def test_fence_and_scopes(self, swdsm4):
        model = SpmdModel(swdsm4.hamster)

        def main(m):
            m.spmd_acquire(9)
            m.spmd_release(9)
            m.spmd_fence()
            return True

        assert all(model.run(main))


class TestSmpSpmdModel:
    def test_locality_queries_on_smp(self):
        plat = ClusterConfig(platform="smp", dsm="smp", nodes=4, ranks=4).build()
        model = SmpSpmdModel(plat.hamster)

        def main(m):
            return (m.spmd_local_peers(), m.spmd_is_local(0),
                    m.spmd_local_master(), m.spmd_cpus_on_node())

        peers, is_local, master, cpus = model.run(main)[0]
        assert peers == [0, 1, 2, 3]
        assert is_local and master == 0 and cpus == 4

    def test_locality_queries_on_cluster(self, swdsm4):
        model = SmpSpmdModel(swdsm4.hamster)

        def main(m):
            me = m.spmd_proc_id()
            return m.spmd_local_peers(), m.spmd_is_local((me + 1) % 4)

        peers, other_local = model.run(main)[0]
        assert peers == [0]
        assert not other_local

    def test_local_barrier(self):
        plat = ClusterConfig(platform="smp", dsm="smp", nodes=2, ranks=2).build()
        model = SmpSpmdModel(plat.hamster)

        def main(m):
            m.spmd_local_barrier()
            return m.hamster.timing.wtime()

        t = model.run(main)
        assert t[0] == t[1]


class TestJiaJiaBindings:
    def test_hamster_and_native_agree_numerically(self):
        """The Figure 2 precondition: identical app, identical results on
        both bindings (only timing differs)."""
        def run(native):
            name = "native-jiajia-4" if native else "sw-dsm-4"
            plat = preset(name).build()
            api = (NativeJiaJiaApi(plat.hamster) if native
                   else JiaJiaApi(plat.hamster))

            def main(a):
                pid, hosts = a.jia_init()
                arr = a.jia_alloc_array((16, 16), name="A")
                arr[pid * 4:(pid + 1) * 4, :] = pid + 1.0
                a.jia_barrier()
                a.jia_lock(1)
                arr[0, 0] = float(arr[0, 0]) + 1.0
                a.jia_unlock(1)
                a.jia_barrier()
                total = float(arr[:, :].sum())
                a.jia_exit()
                return total

            return api.run(main), plat.engine.now

        (res_h, t_h), (res_n, t_n) = run(False), run(True)
        assert res_h == res_n
        assert t_h != t_n  # bindings differ in cost, not semantics

    def test_native_requires_jiajia(self, smp2):
        with pytest.raises(ModelError):
            NativeJiaJiaApi(smp2.hamster)

    def test_jia_alloc_bytes(self, swdsm4):
        api = JiaJiaApi(swdsm4.hamster)

        def main(a):
            region = a.jia_alloc(10000)
            return region.size

        sizes = api.run(main)
        assert sizes == [12288] * 4  # same region, page rounded

    def test_jia_wtime_monotone(self, swdsm4):
        api = JiaJiaApi(swdsm4.hamster)

        def main(a):
            t0 = a.jia_wtime()
            a.jia_barrier()
            return a.jia_wtime() >= t0

        assert all(api.run(main))


class TestTreadMarks:
    def test_single_node_alloc_and_distribute(self, swdsm4):
        api = TreadMarksApi(swdsm4.hamster)

        def main(t):
            t.Tmk_startup()
            pid = t.Tmk_proc_id()
            if pid == 0:
                arr = t.Tmk_malloc_array((8, 8), name="data")
                arr = t.Tmk_distribute("data", arr)
            else:
                arr = t.Tmk_distribute("data")
            arr[pid * 2:(pid + 1) * 2, :] = pid
            t.Tmk_barrier()
            total = float(arr[:, :].sum())
            t.Tmk_exit()
            return total

        expect = sum(r * 16 for r in range(4))
        assert api.run(main) == [expect] * 4

    def test_malloc_homes_pages_on_caller(self, swdsm4):
        api = TreadMarksApi(swdsm4.hamster)
        dsm = swdsm4.dsm

        def main(t):
            pid = t.Tmk_proc_id()
            if pid == 2:
                arr = t.Tmk_malloc_array((512,), name="x")
                return dsm.home_of(arr.region.first_page)
            return None

        assert api.run(main)[2] == 2

    def test_malloc_has_no_implicit_barrier(self, swdsm4):
        """The paper's point: single-node allocation avoids the global
        synchronous allocation's implicit barrier."""
        api = TreadMarksApi(swdsm4.hamster)
        dsm = swdsm4.dsm

        def main(t):
            before = dsm.stats(t.Tmk_proc_id())["barriers"]
            if t.Tmk_proc_id() == 0:
                t.Tmk_malloc(4096)
            after = dsm.stats(t.Tmk_proc_id())["barriers"]
            t.Tmk_barrier()
            return after - before

        assert api.run(main) == [0, 0, 0, 0]

    def test_locks(self, swdsm4):
        api = TreadMarksApi(swdsm4.hamster)

        def main(t):
            t.Tmk_lock_acquire(4)
            t.Tmk_lock_release(4)
            return t.Tmk_trylock(99)

        res = api.run(main)
        assert res.count(True) >= 1  # uncontended trylocks succeed


class TestHlrc:
    def test_full_surface(self, swdsm4):
        api = HlrcApi(swdsm4.hamster)

        def main(h):
            pid = h.hlrc_init()
            assert h.hlrc_my_pid() == pid
            assert h.hlrc_num_procs() == 4
            arr = h.hlrc_malloc_block((8, 512), name="b")
            assert h.hlrc_home_of(arr, 0) == 0
            assert h.hlrc_home_of(arr, 7) == 3
            arr2 = h.hlrc_malloc_onhome((512,), home=2, name="oh")
            assert h.hlrc_home_of(arr2, 0) == 2
            h.hlrc_acquire(1)
            arr[pid * 2, 0] = float(pid)
            h.hlrc_release(1)
            h.hlrc_flush()
            h.hlrc_barrier()
            stats = h.hlrc_stats()
            caps = h.hlrc_capabilities()
            h.hlrc_exit()
            return stats["barriers"] > 0 and "home_based" in caps

        assert all(api.run(main))

    def test_cyclic_helper(self, swdsm4):
        api = HlrcApi(swdsm4.hamster)

        def main(h):
            arr = h.hlrc_malloc_cyclic((8, 512), name="c")
            return [h.hlrc_home_of(arr, i) for i in range(4)]

        assert api.run(main)[0] == [0, 1, 2, 3]
