"""Crash safety of the fabric: journal, resume, fault points, budgets.

Covers the durability contract end to end: the write-ahead journal's
tolerant replay (torn tails, duplicate commits), ``run_sweep``'s
resume path (restore committed cells, re-execute only the rest,
byte-identical canonical records), deterministic crash injection via
fault points, the retry/abort failure policy, and the CLI's
``sweep resume`` / ``sweep status --dir`` / ``sweep fsck`` surface —
the last through real subprocesses, because a fault point kills its
process with ``os._exit`` and must not take pytest down with it.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.fabric import (CellOutcome, GridSpec, JournalError, JournalState,
                          ResultCache, SweepJournal, canonical_records_json,
                          replay_journal, run_sweep)
from repro.fabric import faultpoints

SMALL = GridSpec(presets=("smp-2", "sw-dsm-2"), labels=("PI", "MatMult"),
                 scales=(0.04,))

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def outcome(i, kind="miss", key=None):
    return CellOutcome(index=i, id=f"cell-{i}", key=key or f"k{i}",
                       outcome=kind)


def cache_for(tmp_path, name="cache"):
    return ResultCache(str(tmp_path / name))


class TestJournalReplay:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"suite": "t", "cells": 3}) as jnl:
            jnl.transition(0, "enqueued")
            jnl.commit(outcome(0))
            jnl.transition(1, "dispatched")
            jnl.commit(outcome(1, "failed"))
            jnl.status("interrupted")
        state = replay_journal(path)
        assert state.header["suite"] == "t"
        assert sorted(state.committed) == [0, 1]
        assert state.committed[1].outcome == "failed"
        assert state.status == "interrupted"
        assert state.transitions == 2
        assert state.torn_bytes is None
        assert state.pending(3) == [2]
        assert state.counts() == {"miss": 1, "failed": 1}

    def test_duplicate_commits_resolve_last_one_wins(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"cells": 1}) as jnl:
            jnl.commit(outcome(0, "failed"))
            jnl.commit(outcome(0, "miss"))     # a resumed sweep re-ran it
        state = replay_journal(path)
        assert state.committed[0].outcome == "miss"
        assert state.pending(1) == []

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"cells": 2}) as jnl:
            jnl.commit(outcome(0))
        clean = os.path.getsize(path)
        with open(path, "ab") as fh:         # a write cut off mid-line
            fh.write(b'{"kind":"commit","cell":1,"outc')
        state = replay_journal(path)
        assert sorted(state.committed) == [0]
        assert state.torn_bytes == clean

    def test_resume_truncates_the_torn_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"cells": 2}) as jnl:
            jnl.commit(outcome(0))
        clean = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b'{"torn')
        with SweepJournal.resume(path) as jnl:
            jnl.commit(outcome(1))
        state = replay_journal(path)
        assert sorted(state.committed) == [0, 1]
        assert state.torn_bytes is None
        assert os.path.getsize(path) > clean

    def test_complete_but_garbled_final_line_counts_as_torn(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"cells": 1}) as jnl:
            jnl.commit(outcome(0))
        with open(path, "ab") as fh:         # newline landed, payload did not
            fh.write(b"\x00\xffgarbage\n")
        state = replay_journal(path)
        assert sorted(state.committed) == [0]
        assert state.torn_bytes is not None

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with SweepJournal(path, header={"cells": 1}) as jnl:
            jnl.commit(outcome(0))
        with open(path, "ab") as fh:
            fh.write(b"garbage line\n")
            fh.write(json.dumps({"kind": "commit", "cell": 1,
                                 "outcome": outcome(1).to_dict()}).encode()
                     + b"\n")
        with pytest.raises(JournalError, match="corrupt"):
            replay_journal(path)

    def test_foreign_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"schema": "something/else"}\n')
        with pytest.raises(JournalError, match="schema"):
            replay_journal(str(path))

    def test_missing_file_raises_journal_error(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            replay_journal(str(tmp_path / "nope.jsonl"))


class TestJournalReplayProperty:
    def test_replay_is_idempotent_over_any_prefix(self, tmp_path):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        header = json.dumps({"schema": "repro.fabric.journal/1",
                             "cells": 6}, separators=(",", ":")) + "\n"
        commit_st = st.tuples(st.integers(min_value=0, max_value=5),
                              st.sampled_from(["hit", "miss", "failed"]))
        path = str(tmp_path / "prop.jsonl")

        @settings(max_examples=60, deadline=None)
        @given(commits=st.lists(commit_st, max_size=24),
               cut=st.integers(min_value=0, max_value=24),
               torn=st.binary(max_size=12))
        def check(commits, cut, torn):
            lines = [json.dumps(
                {"kind": "commit", "cell": i,
                 "outcome": outcome(i, kind).to_dict()},
                separators=(",", ":")) + "\n" for i, kind in commits]
            full = header + "".join(lines)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(full)
            whole = replay_journal(path)
            # last-one-wins over arbitrary duplicated commit records
            expect = {}
            for i, kind in commits:
                expect[i] = kind
            assert {i: oc.outcome for i, oc in whole.committed.items()} \
                == expect

            # any prefix replays to the last-wins map of that prefix
            prefix = commits[:min(cut, len(commits))]
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(header + "".join(lines[:len(prefix)]))
            part = replay_journal(path)
            expect_prefix = {}
            for i, kind in prefix:
                expect_prefix[i] = kind
            assert {i: oc.outcome for i, oc in part.committed.items()} \
                == expect_prefix
            assert set(part.committed) <= set(whole.committed) \
                or not commits

            # a torn final line (no trailing newline) never changes the
            # durable state and reports the clean byte offset
            torn_line = torn.replace(b"\n", b"")
            if torn_line:
                with open(path, "wb") as fh:
                    fh.write(full.encode() + torn_line)
                torn_state = replay_journal(path)
                assert {i: oc.outcome
                        for i, oc in torn_state.committed.items()} == expect
                assert torn_state.torn_bytes == len(full.encode())

        check()


class TestFaultpoints:
    def test_parse_spec_accepts_lists_and_skips_malformed(self):
        spec = faultpoints.parse_spec(
            "worker-cell-start@/tmp/a, orchestrator-pre-commit@/tmp/b,"
            "malformed,@,x@")
        assert spec == {"worker-cell-start": "/tmp/a",
                        "orchestrator-pre-commit": "/tmp/b"}
        assert faultpoints.parse_spec(None) == {}

    def test_crash_env_round_trips_through_parse(self):
        env = faultpoints.crash_env("my-point", "/tmp/f")
        assert faultpoints.parse_spec(env[faultpoints.FAULTPOINT_ENV]) == \
            {"my-point": "/tmp/f"}

    def test_unarmed_point_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(faultpoints.FAULTPOINT_ENV, raising=False)
        faultpoints.maybe_crash("worker-cell-start")   # must not exit
        monkeypatch.setenv(faultpoints.FAULTPOINT_ENV, "other@/tmp/x")
        faultpoints.maybe_crash("worker-cell-start")

    def test_armed_point_exits_once_with_the_distinct_code(self, tmp_path):
        # a real subprocess: maybe_crash hard-exits the calling process
        flag = tmp_path / "flag"
        prog = ("from repro.fabric import faultpoints\n"
                "faultpoints.maybe_crash('p1')\n"
                "print('survived')\n")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"),
                   **faultpoints.crash_env("p1", str(flag)))
        first = subprocess.run([sys.executable, "-c", prog], env=env,
                               capture_output=True, text=True)
        assert first.returncode == faultpoints.FAULTPOINT_EXIT
        assert flag.read_text().strip() == "p1"
        second = subprocess.run([sys.executable, "-c", prog], env=env,
                                capture_output=True, text=True)
        assert second.returncode == 0          # flag disarms the point
        assert "survived" in second.stdout


class TestResume:
    def test_resume_reexecutes_only_uncommitted_cells(self, tmp_path):
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        clean = run_sweep(SMALL, cache=cache, journal=journal)
        assert clean.status == "complete"

        # drop the last two commit records, as a crash would have
        state = replay_journal(journal)
        kept = {i: state.committed[i] for i in sorted(state.committed)[:2]}
        with SweepJournal(journal, header=state.header) as jnl:
            for oc in kept.values():
                jnl.commit(oc)

        seen = []
        resumed = run_sweep(
            SMALL, cache=cache_for(tmp_path, "fresh"), journal=journal,
            resume_from=journal,
            progress=lambda cell, oc: seen.append((cell, oc)))
        # committed cells restore (their records come from the cache);
        # only the dropped cells execute — but the fresh cache here
        # misses, so restored cells whose entries vanished re-execute
        assert resumed.status == "complete"
        assert resumed.manifest.counts()["pending"] == 0

    def test_resumed_records_are_byte_identical(self, tmp_path):
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        clean = run_sweep(SMALL, cache=cache, journal=journal)

        state = replay_journal(journal)
        kept = {i: state.committed[i] for i in sorted(state.committed)[:1]}
        with SweepJournal(journal, header=state.header) as jnl:
            for oc in kept.values():
                jnl.commit(oc)

        seen = []
        resumed = run_sweep(
            SMALL, cache=cache, journal=journal, resume_from=journal,
            progress=lambda cell, oc: seen.append(oc))
        assert resumed.restored == 1
        assert seen.count("restored") == 1
        assert canonical_records_json(resumed.records) == \
            canonical_records_json(clean.records)
        # and the journal now commits every cell again
        assert sorted(replay_journal(journal).committed) == [0, 1, 2, 3]

    def test_restored_cell_with_lost_cache_entry_reexecutes(self, tmp_path):
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        clean = run_sweep(SMALL, cache=cache, journal=journal)
        # committed everywhere, but the cache burned down
        resumed = run_sweep(SMALL, cache=cache_for(tmp_path, "empty"),
                            journal=journal, resume_from=journal)
        assert resumed.restored == 0
        assert resumed.manifest.counts()["miss"] == 4
        assert canonical_records_json(resumed.records) == \
            canonical_records_json(clean.records)

    def test_resume_rejects_a_different_grid(self, tmp_path):
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        run_sweep(SMALL, cache=cache, journal=journal)
        other = GridSpec(presets=("smp-4", "sw-dsm-4"),
                         labels=("PI", "MatMult"), scales=(0.04,))
        with pytest.raises(JournalError, match="different content address"):
            run_sweep(other, cache=cache, journal=str(tmp_path / "j2.jsonl"),
                      resume_from=journal)

    def test_resume_rejects_a_different_cell_count(self, tmp_path):
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        run_sweep(SMALL, cache=cache, journal=journal)
        smaller = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.04,))
        with pytest.raises(JournalError, match="refusing to resume"):
            run_sweep(smaller, cache=cache,
                      journal=str(tmp_path / "j2.jsonl"), resume_from=journal)

    def test_failed_cells_restore_unless_retry_failed(self, tmp_path):
        spec = GridSpec(presets=("sw-dsm-2",), labels=("PI", "MatMult"),
                        scales=(0.04,),
                        faults=(None,
                                {"seed": 3,
                                 "crashes": [{"node": 1, "at": 0.0}]}))
        cache = cache_for(tmp_path)
        journal = str(tmp_path / "journal.jsonl")
        first = run_sweep(spec, cache=cache, journal=journal)
        failed = first.manifest.counts()["failed"]
        assert failed >= 1

        restored = run_sweep(spec, cache=cache, journal=journal,
                             resume_from=journal)
        assert restored.manifest.counts()["failed"] == failed
        assert restored.restored == len(spec.expand())   # nothing re-ran

        retried = run_sweep(spec, cache=cache, journal=journal,
                            resume_from=journal, retry_failed=True)
        # deterministic chaos: they fail again, but they really re-ran
        assert retried.manifest.counts()["failed"] == failed
        assert retried.restored == len(spec.expand()) - failed


class TestFailurePolicy:
    def test_zero_retries_fails_a_crashed_job_immediately(self, tmp_path,
                                                          monkeypatch):
        flag = tmp_path / "crash-once"
        monkeypatch.setenv(faultpoints.FAULTPOINT_ENV,
                           f"{faultpoints.WORKER_CELL_START}@{flag}")
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.04,))
        result = run_sweep(spec, workers=2, cache=cache_for(tmp_path),
                           stall_grace=0.5, max_retries=0)
        cell = result.manifest.cells[0]
        assert cell.outcome == "failed"
        assert cell.attempts == 1
        assert cell.error.startswith("crash: ")

    def test_retry_budget_still_recovers_with_backoff(self, tmp_path,
                                                      monkeypatch):
        flag = tmp_path / "crash-once"
        monkeypatch.setenv(faultpoints.FAULTPOINT_ENV,
                           f"{faultpoints.WORKER_CELL_START}@{flag}")
        spec = GridSpec(presets=("smp-2",), labels=("PI",), scales=(0.04,))
        result = run_sweep(spec, workers=2, cache=cache_for(tmp_path),
                           stall_grace=0.5, max_retries=2,
                           retry_backoff=0.05)
        cell = result.manifest.cells[0]
        assert cell.outcome == "miss"
        assert cell.attempts == 2

    def test_max_failures_aborts_and_reports_pending(self, tmp_path):
        # every cell is poisoned; a budget of 1 stops the sweep after
        # the first failure instead of grinding through the whole grid
        spec = GridSpec(presets=("sw-dsm-2",),
                        labels=("PI", "MatMult", "SOR", "LU"),
                        scales=(0.04,),
                        faults=({"seed": 3,
                                 "crashes": [{"node": 1, "at": 0.0}]},))
        result = run_sweep(spec, cache=cache_for(tmp_path), max_failures=1)
        assert result.status == "aborted"
        counts = result.manifest.counts()
        assert counts["failed"] == 1
        assert counts["pending"] == 3
        assert result.manifest.status == "aborted"
        # pending cells have no commit record -> resume picks them up
        assert [c.outcome for c in result.manifest.pending_cells()] \
            == ["pending"] * 3

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_retries"):
            run_sweep(SMALL, cache=cache_for(tmp_path), max_retries=-1)
        with pytest.raises(ValueError, match="max_failures"):
            run_sweep(SMALL, cache=cache_for(tmp_path), max_failures=0)
        with pytest.raises(ValueError, match="retry_backoff"):
            run_sweep(SMALL, cache=cache_for(tmp_path), retry_backoff=-0.1)


class TestCrashResumeCLI:
    """The acceptance scenario, through the real CLI in subprocesses."""

    GRID = {"suite": "crashcli", "presets": ["smp-2"],
            "labels": ["PI", "MatMult"], "scales": [0.04, 0.05]}

    def run_cli(self, *argv, env=None, cwd=None):
        full_env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        if env:
            full_env.update(env)
        return subprocess.run([sys.executable, "-m", "repro", *argv],
                              env=full_env, cwd=cwd, capture_output=True,
                              text=True, timeout=300)

    def test_sigkilled_sweep_resumes_to_byte_parity(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps(self.GRID))
        sweep_dir = tmp_path / "sweep"
        cache_dir = str(tmp_path / "cache")
        flag = tmp_path / "crash.flag"

        crashed = self.run_cli(
            "sweep", "run", "--grid", str(grid), "--workers", "2",
            "--dir", str(sweep_dir), "--cache-dir", cache_dir,
            env=faultpoints.crash_env(faultpoints.ORCH_POST_COMMIT,
                                      str(flag)))
        assert crashed.returncode == faultpoints.FAULTPOINT_EXIT, \
            crashed.stdout + crashed.stderr
        assert flag.exists()

        status = self.run_cli("sweep", "status", "--dir", str(sweep_dir),
                              "--cache-dir", cache_dir)
        assert status.returncode == 0, status.stdout + status.stderr
        assert "pending" in status.stdout

        resumed = self.run_cli("sweep", "resume", str(sweep_dir),
                               "--cache-dir", cache_dir)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr

        ref = self.run_cli(
            "sweep", "run", "--grid", str(grid), "--cache-dir",
            str(tmp_path / "cache2"), "--json-out", str(tmp_path / "REF.json"))
        assert ref.returncode == 0, ref.stdout + ref.stderr

        resumed_doc = json.loads((sweep_dir / "telemetry.json").read_text())
        ref_doc = json.loads((tmp_path / "REF.json").read_text())
        assert canonical_records_json(resumed_doc["records"]) == \
            canonical_records_json(ref_doc["records"])

        manifest = json.loads((sweep_dir / "manifest.json").read_text())
        assert manifest["counts"]["pending"] == 0
        assert manifest["status"] == "complete"

    def test_status_and_report_diagnose_missing_and_stub_logs(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        watch = self.run_cli("sweep", "watch", "--events", missing, "--once")
        assert watch.returncode == 2
        assert "Traceback" not in watch.stderr
        assert "cannot read" in watch.stdout

        report = self.run_cli("sweep", "report", "--events", missing)
        assert report.returncode == 2
        assert "Traceback" not in report.stderr
        assert "cannot read" in report.stdout

        # header-only log: a sweep that died before its first event
        stub = tmp_path / "stub.jsonl"
        stub.write_text(json.dumps(
            {"schema": "repro.fabric.events/1", "suite": "s",
             "cells": 1, "workers": 1}) + "\n")
        watch = self.run_cli("sweep", "watch", "--events", str(stub),
                             "--once")
        assert watch.returncode == 2
        assert "sweep-begin" in watch.stdout
        report = self.run_cli("sweep", "report", "--events", str(stub))
        assert report.returncode == 2
        assert "sweep-begin" in report.stdout

    def test_fsck_quarantines_a_flipped_byte(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"suite": "fsckcli",
                                    "presets": ["smp-2"], "labels": ["PI"],
                                    "scales": [0.04]}))
        cache_dir = tmp_path / "cache"
        run = self.run_cli("sweep", "run", "--grid", str(grid),
                           "--cache-dir", str(cache_dir))
        assert run.returncode == 0, run.stdout + run.stderr

        entries = [p for p in cache_dir.glob("??/*.json")]
        assert entries
        blob = bytearray(entries[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entries[0].write_bytes(bytes(blob))

        found = self.run_cli("sweep", "fsck", "--cache-dir", str(cache_dir))
        assert found.returncode == 1
        assert "corrupt" in found.stdout

        repaired = self.run_cli("sweep", "fsck", "--cache-dir",
                                str(cache_dir), "--repair")
        assert repaired.returncode == 0, repaired.stdout + repaired.stderr
        assert "quarantined" in repaired.stdout
        assert list((cache_dir / "quarantine").iterdir())

        clean = self.run_cli("sweep", "fsck", "--cache-dir", str(cache_dir))
        assert clean.returncode == 0
