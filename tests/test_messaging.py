"""Unit tests for the active-message layer and channel coalescing."""

import pytest

from repro.errors import MessagingError
from repro.machine.cluster import Cluster
from repro.machine.params import PAPER_PLATFORM
from repro.msg.active_messages import ActiveMessageLayer, Reply
from repro.msg.coalesce import MessagingFabric
from repro.sim.engine import Engine
from repro.sim.process import SimProcess


def make_cluster(engine, n=2):
    return Cluster.beowulf(engine, n)


class TestActiveMessages:
    def test_post_invokes_handler(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)
        got = []
        layer.register(1, "evt", lambda msg: got.append(msg.payload))

        def client(proc):
            layer.post(0, 1, "evt", payload={"k": 1}, size=16)

        SimProcess(engine, client).start()
        engine.run()
        assert got == [{"k": 1}]

    def test_rpc_roundtrip(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)
        layer.register(1, "double", lambda msg: Reply(payload=msg.payload * 2, size=8))

        def client(proc):
            return layer.rpc(0, 1, "double", payload=21, size=8)

        p = SimProcess(engine, client).start()
        engine.run()
        assert p.result == 42

    def test_deferred_reply(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)
        parked = []

        def handler(msg):
            parked.append(msg)
            return None  # defer

        layer.register(1, "slow", handler)

        def replier(proc):
            proc.hold(2.0)
            layer.reply(parked[0], payload="late", size=8)

        def client(proc):
            result = layer.rpc(0, 1, "slow")
            return result, proc.now

        # Replier must run on node 1 (it charges node-1 send costs).
        p = SimProcess(engine, client).start()
        SimProcess(engine, replier).start()
        engine.run()
        result, t = p.result
        assert result == "late"
        assert t > 2.0

    def test_unknown_handler_raises(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)

        def client(proc):
            layer.post(0, 1, "nope")

        SimProcess(engine, client).start()
        with pytest.raises(MessagingError, match="no handler"):
            engine.run()

    def test_reply_to_non_rpc_rejected(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)
        from repro.machine.interconnect import Message

        with pytest.raises(MessagingError):
            layer.reply(Message(src=0, dst=1, kind="x", size=0))

    def test_register_all(self, engine):
        cl = make_cluster(engine, 3)
        layer = ActiveMessageLayer(cl)
        hits = []
        layer.register_all("tag", lambda nid: (lambda msg: hits.append(nid)))

        def client(proc):
            layer.post(0, 1, "tag")
            layer.post(0, 2, "tag")

        SimProcess(engine, client).start()
        engine.run()
        assert sorted(hits) == [1, 2]

    def test_rpc_counts(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl)
        layer.register(1, "x", lambda msg: Reply())

        def client(proc):
            layer.rpc(0, 1, "x")
            layer.post(0, 1, "x")

        SimProcess(engine, client).start()
        engine.run()
        assert layer.rpcs == 1 and layer.posts == 1


class TestChannelOverheads:
    def test_prefix_overhead_resolution(self, engine):
        cl = make_cluster(engine)
        layer = ActiveMessageLayer(cl, stack_overhead=10e-6)
        layer.set_channel_overhead("dsm.", 20e-6)
        layer.set_channel_overhead("dsm.fast.", 5e-6)
        assert layer._overhead_for("dsm.getpage") == 20e-6
        assert layer._overhead_for("dsm.fast.ping") == 5e-6
        assert layer._overhead_for("other.x") == 10e-6

    def test_integrated_fabric_is_cheaper(self):
        """The §3.3 claim in miniature: the same RPC completes sooner on the
        coalesced fabric than on separate stacks."""
        def rpc_time(integrated):
            engine = Engine()
            cl = make_cluster(engine)
            fab = MessagingFabric(cl, integrated=integrated)
            ch = fab.channel("t")
            ch.register_all("ping", lambda nid: (lambda msg: Reply()))

            def client(proc):
                ch.rpc(0, 1, "ping")
                return proc.now

            p = SimProcess(engine, client).start()
            engine.run()
            return p.result

        assert rpc_time(True) < rpc_time(False)

    def test_channel_namespacing(self, engine):
        cl = make_cluster(engine)
        fab = MessagingFabric(cl)
        a, b = fab.channel("a"), fab.channel("b")
        got = []
        a.register_all("k", lambda nid: (lambda msg: got.append("a")))
        b.register_all("k", lambda nid: (lambda msg: got.append("b")))

        def client(proc):
            a.post(0, 1, "k")
            b.post(0, 1, "k")

        SimProcess(engine, client).start()
        engine.run()
        assert sorted(got) == ["a", "b"]

    def test_channel_cached(self, engine):
        cl = make_cluster(engine)
        fab = MessagingFabric(cl)
        assert fab.channel("x") is fab.channel("x")

    def test_fabric_stats(self, engine):
        cl = make_cluster(engine)
        fab = MessagingFabric(cl)
        ch = fab.channel("s")
        ch.register_all("e", lambda nid: (lambda msg: None))

        def client(proc):
            ch.post(0, 1, "e", size=10)

        SimProcess(engine, client).start()
        engine.run()
        assert fab.messages_sent == 1
        assert fab.bytes_sent > 10


class TestSmpHasNoMessaging:
    def test_am_layer_requires_network(self, engine):
        cl = Cluster.smp(engine)
        with pytest.raises(MessagingError):
            ActiveMessageLayer(cl)
