"""Edge cases for the benchmark applications: uneven partitions, odd rank
counts, degenerate sizes, and phase accounting."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.common import merge_rank_results
from repro.config import ClusterConfig, preset
from repro.models.jiajia_api import JiaJiaApi


def run(config, app, **params):
    plat = config.build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app(app)
    results = api.run(lambda a: fn(a, **params))
    merged = merge_rank_results(results)
    assert merged.verified, (app, params, config.name)
    return merged


class TestUnevenPartitions:
    """3 ranks never divide the working sets evenly — every app must still
    cover the full iteration space exactly once."""

    @pytest.fixture(scope="class")
    def cfg3(self):
        return ClusterConfig(platform="beowulf", dsm="jiajia", nodes=3,
                             name="sw-dsm-3")

    def test_matmult_3_ranks(self, cfg3):
        assert run(cfg3, "matmult", n=48).verified

    def test_sor_3_ranks(self, cfg3):
        assert run(cfg3, "sor", n=47, iterations=2).verified

    def test_lu_3_ranks_with_ragged_last_panel(self, cfg3):
        # 80 = 5 panels of 16: 5 % 3 != 0, last panel full-sized.
        assert run(cfg3, "lu", n=80, block=16).verified

    def test_water_3_ranks(self, cfg3):
        assert run(cfg3, "water", molecules=25, steps=1).verified

    def test_pi_3_ranks(self, cfg3):
        assert run(cfg3, "pi", intervals=1000).verified  # not divisible by 3


class TestDegenerateSizes:
    def test_lu_single_panel(self):
        cfg = preset("sw-dsm-2")
        merged = run(cfg, "lu", n=16, block=16)  # one panel: no updates
        assert merged.phases["core"] >= 0

    def test_sor_minimum_interior(self):
        cfg = preset("sw-dsm-2")
        assert run(cfg, "sor", n=8, iterations=1).verified

    def test_water_two_molecules(self):
        cfg = preset("hybrid-2")
        assert run(cfg, "water", molecules=2, steps=1).verified

    def test_matmult_one_row_per_rank(self):
        cfg = preset("sw-dsm-4")
        assert run(cfg, "matmult", n=4).verified

    def test_pi_one_interval(self):
        cfg = preset("hybrid-2")
        merged = run(cfg, "pi", intervals=1, verify=False)
        assert merged.phases["total"] > 0


class TestPhaseAccounting:
    def test_phases_are_nonnegative_and_total_consistent(self):
        for app, params in [("matmult", {"n": 32}),
                            ("sor", {"n": 32, "iterations": 2}),
                            ("water", {"molecules": 16, "steps": 1})]:
            merged = run(preset("hybrid-2"), app, **params)
            for name, value in merged.phases.items():
                assert value >= 0, (app, name)
            assert merged.phases["total"] >= merged.phases["init"]

    def test_lu_barrier_share_grows_with_ranks(self):
        """More ranks, same matrix: barrier share of no-init time rises
        (classic strong-scaling sync wall)."""
        def share(nodes):
            cfg = ClusterConfig(platform="beowulf", dsm="jiajia", nodes=nodes,
                                name=f"sw{nodes}")
            merged = run(cfg, "lu", n=64, block=16)
            return merged.phases["barrier"] / merged.phases["no_init"]

        assert share(4) > share(2) * 0.9  # rising or near-equal, never falls hard

    def test_verify_false_skips_reference(self):
        merged = run(preset("hybrid-2"), "sor", n=32, iterations=1,
                     verify=False)
        assert merged.verified  # vacuously true
        assert merged.checksum == 0.0


class TestSeedSensitivity:
    def test_different_seeds_different_data_same_behaviour(self):
        a = run(preset("sw-dsm-2"), "sor", n=32, iterations=2, seed=1)
        b = run(preset("sw-dsm-2"), "sor", n=32, iterations=2, seed=2)
        assert a.checksum != b.checksum
        # Protocol work is data-independent for SOR (dense writes).
        assert a.phases["total"] == pytest.approx(b.phases["total"], rel=0.05)
