"""Unit tests for the tracing facility."""

from repro.sim.engine import Engine
from repro.sim.trace import TraceEvent, Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit("x", a=1)
        assert len(t) == 0

    def test_emit_and_query(self):
        t = Tracer()
        t.emit("fetch", page=3)
        t.emit("fetch", page=4)
        t.emit("inval", page=3)
        assert t.count("fetch") == 2
        assert [e["page"] for e in t.of_kind("fetch")] == [3, 4]
        assert t.matching(page=3)[0].kind == "fetch"

    def test_event_get_default(self):
        t = Tracer()
        t.emit("k")
        assert t.events[0].get("missing", "d") == "d"

    def test_capacity_evicts_oldest(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.emit("e", i=i)
        assert [e["i"] for e in t] == [3, 4]

    def test_dropped_counter_tracks_evictions(self):
        t = Tracer(capacity=3)
        for i in range(3):
            t.emit("e", i=i)
        assert t.dropped == 0
        for i in range(3, 10):
            t.emit("e", i=i)
        assert t.dropped == 7
        assert len(t) == 3
        assert [e["i"] for e in t] == [7, 8, 9]

    def test_unbounded_never_drops(self):
        t = Tracer()
        for i in range(1000):
            t.emit("e", i=i)
        assert t.dropped == 0 and len(t) == 1000

    def test_clear_resets_dropped(self):
        t = Tracer(capacity=1)
        t.emit("a")
        t.emit("b")
        assert t.dropped == 1
        t.clear()
        assert t.dropped == 0 and len(t) == 0

    def test_ring_keeps_queries_working(self):
        t = Tracer(capacity=2)
        t.emit("x", v=1)
        t.emit("y", v=2)
        t.emit("x", v=3)
        assert t.count("x") == 1  # the first x was evicted
        assert t.matching(v=3)[0].kind == "x"

    def test_sink_called_live(self):
        t = Tracer()
        seen = []
        t.add_sink(lambda e: seen.append(e.kind))
        t.emit("a")
        t.emit("b")
        assert seen == ["a", "b"]

    def test_clock_binding(self):
        engine = Engine(trace=Tracer(enabled=True))
        engine.schedule(1.5, lambda: engine.trace.emit("tick"))
        engine.run()
        assert engine.trace.events[-1].time == 1.5

    def test_clear(self):
        t = Tracer()
        t.emit("a")
        t.clear()
        assert len(t) == 0


class TestEngineTraceIntegration:
    def test_network_send_traced(self):
        from repro.machine.cluster import Cluster
        from repro.msg.coalesce import MessagingFabric
        from repro.msg.active_messages import Reply
        from repro.sim.process import SimProcess

        engine = Engine(trace=Tracer(enabled=True))
        cl = Cluster.beowulf(engine, 2)
        fab = MessagingFabric(cl)
        ch = fab.channel("t")
        ch.register_all("ping", lambda nid: (lambda msg: Reply(payload="pong")))

        def client(proc):
            return ch.rpc(0, 1, "ping")

        SimProcess(engine, client).start()
        engine.run()
        sends = engine.trace.of_kind("net.send")
        assert len(sends) == 2  # request + reply
        assert sends[0]["src"] == 0 and sends[0]["dst"] == 1
