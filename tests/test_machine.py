"""Unit tests for the machine layer: params, nodes, buses, clusters."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.node import Node
from repro.machine.params import MachineParams, PAPER_PLATFORM
from repro.machine.smpbus import MemoryBus
from tests.conftest import run_procs


class TestParams:
    def test_defaults_match_paper_platform(self):
        p = PAPER_PLATFORM
        assert p.cpu_hz == 450e6
        assert p.page_size == 4096
        assert p.cpus_per_node == 2

    def test_with_overrides_is_pure(self):
        p2 = PAPER_PLATFORM.with_overrides(page_size=8192)
        assert p2.page_size == 8192
        assert PAPER_PLATFORM.page_size == 4096

    def test_msg_overhead_selection(self):
        p = MachineParams(coalesce_messaging=True)
        assert p.msg_stack_overhead() == p.msg_stack_overhead_integrated
        p = MachineParams(coalesce_messaging=False)
        assert p.msg_stack_overhead() == p.msg_stack_overhead_separate

    def test_integrated_cheaper_than_separate(self):
        p = PAPER_PLATFORM
        assert p.msg_stack_overhead_integrated < p.msg_stack_overhead_separate

    def test_sci_faster_than_ethernet(self):
        p = PAPER_PLATFORM
        assert p.sci_read_latency < p.eth_latency
        assert p.sci_write_latency < p.sci_read_latency  # posted writes


class TestNode:
    def test_compute_charges_flop_time(self, engine):
        node = Node(engine, 0, PAPER_PLATFORM)

        def body(proc):
            node.compute(PAPER_PLATFORM.flops_per_second)  # exactly 1 second
            return proc.now

        assert run_procs(engine, body) == [pytest.approx(1.0)]

    def test_cpu_cycles(self, engine):
        node = Node(engine, 0, PAPER_PLATFORM)

        def body(proc):
            node.cpu_cycles(PAPER_PLATFORM.cpu_hz)  # one second of cycles
            return proc.now

        assert run_procs(engine, body) == [pytest.approx(1.0)]

    def test_zero_charges_are_free(self, engine):
        node = Node(engine, 0, PAPER_PLATFORM)

        def body(proc):
            node.compute(0)
            node.cpu_time(0)
            node.mem_touch(0)
            return proc.now

        assert run_procs(engine, body) == [0.0]

    def test_compute_time_accounting(self, engine):
        node = Node(engine, 0, PAPER_PLATFORM)

        def body(proc):
            node.cpu_time(0.25)

        run_procs(engine, body)
        assert node.compute_time == pytest.approx(0.25)


class TestMemoryBus:
    def test_single_transfer_cost(self, engine):
        p = PAPER_PLATFORM
        bus = MemoryBus(engine, p)
        nbytes = int(p.mem_bandwidth)  # one second of traffic

        def body(proc):
            bus.touch(nbytes)
            return proc.now

        t = run_procs(engine, body)[0]
        assert t == pytest.approx(1.0 + p.mem_latency)

    def test_contention_serializes(self, engine):
        p = PAPER_PLATFORM
        bus = MemoryBus(engine, p)
        nbytes = int(p.mem_bandwidth * 0.5)  # half-second each

        def body(proc):
            bus.touch(nbytes)
            return proc.now

        t1, t2 = run_procs(engine, body, body)
        # Second transfer queues behind the first: finishes ~1s, not ~0.5s.
        assert min(t1, t2) == pytest.approx(0.5 + p.mem_latency)
        assert max(t1, t2) == pytest.approx(1.0 + 2 * p.mem_latency)
        assert bus.contention_time > 0

    def test_stats_and_reset(self, engine):
        bus = MemoryBus(engine, PAPER_PLATFORM)

        def body(proc):
            bus.touch(1000)

        run_procs(engine, body)
        assert bus.bytes_transferred == 1000
        bus.reset_stats()
        assert bus.bytes_transferred == 0


class TestCluster:
    def test_smp_factory(self, engine):
        cl = Cluster.smp(engine, n_cpus=2)
        assert cl.n_nodes == 1
        assert cl.node(0).n_cpus == 2
        assert cl.network is None
        assert not cl.has_sci()

    def test_beowulf_factory(self, engine):
        cl = Cluster.beowulf(engine, 4)
        assert cl.n_nodes == 4
        assert cl.network is not None
        with pytest.raises(ConfigurationError):
            cl.sci  # noqa: B018 - property raises

    def test_sci_factory(self, engine):
        cl = Cluster.sci_cluster(engine, 4)
        assert cl.has_sci()
        assert cl.sci is cl.network

    def test_bad_node_lookup(self, engine):
        cl = Cluster.beowulf(engine, 2)
        with pytest.raises(ConfigurationError):
            cl.node(5)

    def test_invalid_sizes(self, engine):
        with pytest.raises(ConfigurationError):
            Cluster.smp(engine, n_cpus=0)
        with pytest.raises(ConfigurationError):
            Cluster.beowulf(engine, 0)

    def test_each_cluster_node_has_own_bus(self, engine):
        cl = Cluster.beowulf(engine, 3)
        buses = {id(cl.node(i).bus) for i in range(3)}
        assert len(buses) == 3
