"""Integration tests for the paper's central claim (§5.4): the *identical*
application code runs unmodified on every platform — only the configuration
changes — and produces identical numerical results everywhere.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.common import merge_rank_results
from repro.config import ClusterConfig, loads, preset
from repro.models import MODEL_REGISTRY, load_model
from repro.models.jiajia_api import JiaJiaApi
from repro.models.native_jiajia import NativeJiaJiaApi

ALL_PLATFORMS = ["smp-2", "sw-dsm-2", "sw-dsm-4", "hybrid-2", "hybrid-4"]


def run_sor_everywhere(platform_name):
    plat = preset(platform_name).build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app("sor")
    results = api.run(lambda a: fn(a, n=64, iterations=3))
    merged = merge_rank_results(results)
    return merged, plat.engine.now


class TestIdenticalBinaries:
    def test_same_code_every_platform_same_answer(self):
        """One app function object, five platforms, identical checksums."""
        outcomes = {name: run_sor_everywhere(name) for name in ALL_PLATFORMS}
        checksums = {merged.checksum for merged, _ in outcomes.values()}
        assert len(checksums) == 1
        assert all(merged.verified for merged, _ in outcomes.values())
        # ... but the *performance* differs by platform, as Figure 4 shows.
        times = {name: t for name, (_, t) in outcomes.items()}
        assert times["sw-dsm-2"] > times["hybrid-2"]

    def test_config_file_is_the_only_difference(self, tmp_path):
        """Build platforms from on-disk config files, paper-style."""
        results = []
        for text in (preset("hybrid-2").to_text(), preset("sw-dsm-2").to_text()):
            path = tmp_path / "cluster.cfg"
            path.write_text(text)
            from repro.config import load

            plat = load(str(path)).build()
            api = JiaJiaApi(plat.hamster)
            fn = get_app("pi")
            merged = merge_rank_results(api.run(lambda a: fn(a, intervals=4096)))
            results.append(merged.checksum)
        assert results[0] == results[1]

    def test_hamster_vs_native_identical_results(self):
        def run(native):
            name = "native-jiajia-2" if native else "sw-dsm-2"
            plat = preset(name).build()
            api = (NativeJiaJiaApi(plat.hamster) if native
                   else JiaJiaApi(plat.hamster))
            fn = get_app("lu")
            merged = merge_rank_results(api.run(lambda a: fn(a, n=64, block=16)))
            return merged

        assert run(False).checksum == run(True).checksum


class TestEveryModelOnEveryPlatform:
    """Retargetability × portability: each programming model instantiates
    and performs a minimal allocate/sync round trip on each platform."""

    @pytest.mark.parametrize("platform", ["smp-2", "sw-dsm-2", "hybrid-2"])
    @pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
    def test_model_instantiates_and_runs(self, platform, model_name):
        plat = preset(platform).build()
        cls = load_model(model_name)
        api = cls(plat.hamster)

        if model_name == "POSIX threads":
            def main(p):
                tid = p.pthread_create(lambda arg: arg, 5)
                return p.pthread_join(tid)[1]

            assert api.run(main) == 5
        elif model_name == "WIN32 threads":
            def main(w):
                h = w.CreateThread(lambda arg: 5, None)
                w.WaitForSingleObject(h)
                return w.GetExitCodeThread(h)

            assert api.run(main) == 5
        elif model_name == "Cray put/get (shmem) API":
            def main(s):
                s.start_pes(0)
                sym = s.shmem_malloc((2,), name="t")
                me = s.shmem_my_pe()
                s.shmem_put(sym, 0, float(me + 1), (me + 1) % s.shmem_n_pes())
                s.shmem_barrier_all()
                return float(s.shmem_g(sym, 0, me))

            res = api.run(main)
            assert sorted(res) == [1.0, 2.0]
        else:
            # Generic SPMD-style models: find the barrier-ish call.
            def main(m):
                if model_name == "SPMD model" or model_name == "SMP/SPMD model":
                    m.spmd_init()
                    m.spmd_barrier()
                elif model_name == "ANL macros":
                    m.MAIN_INITENV()
                    m.BARRIER()
                elif model_name == "TreadMarks API":
                    m.Tmk_startup()
                    m.Tmk_barrier()
                elif model_name == "HLRC API":
                    m.hlrc_init()
                    m.hlrc_barrier()
                elif model_name == "JiaJia API (subset)":
                    m.jia_init()
                    m.jia_barrier()
                return True

            assert all(api.run(main))


class TestMixedScenario:
    def test_producer_consumer_pipeline_across_models(self):
        """A composite integration scenario: SPMD tasks coordinate through
        locks, a condition-free flag protocol, messaging, and shared memory
        simultaneously — all services interleaved."""
        plat = preset("sw-dsm-4").build()

        def main(env):
            data = env.alloc_array((4, 32), name="pipe")
            flags = env.alloc_array((4,), name="flags")
            if env.rank == 0:
                flags[:] = 0.0
            env.barrier()
            # Stage r writes its row, then messages rank r+1.
            row = np.full(32, float(env.rank + 1))
            if env.rank > 0:
                src, _ = env.hamster.cluster_ctl.recv_msg()
                assert src == env.rank - 1
            env.lock(env.rank)
            data[env.rank, :] = row
            env.unlock(env.rank)
            if env.rank < 3:
                env.hamster.cluster_ctl.send_msg(env.rank + 1, "go")
            env.barrier()
            return float(data[:, :].sum())

        expect = 32 * (1 + 2 + 3 + 4)
        assert spmd_results(plat, main) == [expect] * 4


def spmd_results(plat, main):
    return plat.hamster.run_spmd(lambda env: main(env))
