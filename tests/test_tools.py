"""Tests for the §4.3 tool-support package (monitor, profile, traceview)."""

import numpy as np
import pytest

from repro.config import preset
from repro.memory.layout import single_home
from repro.tools import (AttachedMonitor, profile_platform, summarize_trace)
from tests.conftest import spmd


def run_workload(plat):
    def main(env):
        A = env.alloc_array((1024,), name="A", distribution=single_home(0))
        env.barrier()
        if env.rank != 0:
            A[0:64] = float(env.rank)
        env.barrier()
        for _ in range(3):
            env.lock(1)
            A[0] = float(A[0]) + 1.0
            env.unlock(1)
        env.barrier()
        return float(A[0])

    return spmd(plat, main)


class TestAttachedMonitor:
    def test_live_events_captured(self):
        plat = preset("sw-dsm-2").build()
        mon = AttachedMonitor(plat).attach()
        run_workload(plat)
        assert mon.timeline("sync", "barriers")
        assert mon.peak("sync", "barriers") >= 3
        assert mon.timeline("sync", "lock_acquires")

    def test_periodic_sampling(self):
        plat = preset("sw-dsm-2").build()
        mon = AttachedMonitor(plat, period=1e-3).attach()
        run_workload(plat)
        assert len(mon.samples) >= 1
        assert mon.samples[0].tree["dsm"]["rank0"] is not None

    def test_snapshot_on_demand(self):
        plat = preset("smp-2").build()
        mon = AttachedMonitor(plat).attach()
        run_workload(plat)
        sample = mon.snapshot()
        assert sample.get("sync", "barriers") >= 3

    def test_rate_computation(self):
        plat = preset("sw-dsm-2").build()
        mon = AttachedMonitor(plat).attach()
        run_workload(plat)
        assert mon.rate("sync", "barriers") > 0

    def test_report_renders(self):
        plat = preset("sw-dsm-2").build()
        mon = AttachedMonitor(plat).attach()
        run_workload(plat)
        text = mon.report()
        assert "sync.barriers" in text
        assert "live events" in text

    def test_attach_idempotent(self):
        plat = preset("smp-2").build()
        mon = AttachedMonitor(plat)
        assert mon.attach() is mon.attach()

    def test_application_untouched(self):
        """Attaching the monitor must not change virtual results/timing."""
        def run(with_monitor):
            plat = preset("sw-dsm-2").build()
            if with_monitor:
                AttachedMonitor(plat).attach()
            results = run_workload(plat)
            return results, plat.engine.now

        (r1, t1), (r2, t2) = run(False), run(True)
        assert r1 == r2
        assert t1 == t2  # counters are free; observation doesn't perturb


class TestProfileReport:
    def test_rank_digests(self):
        plat = preset("sw-dsm-4").build()
        run_workload(plat)
        report = profile_platform(plat)
        assert len(report.ranks) == 4
        assert report.total_time == plat.engine.now
        # Non-home ranks fetched and diffed.
        assert report.rank(1).fetches >= 1
        assert report.rank(1).diffs >= 1
        assert report.rank(0).barriers >= 3

    def test_network_and_bus_accounting(self):
        plat = preset("sw-dsm-2").build()
        run_workload(plat)
        report = profile_platform(plat)
        assert report.messages > 0
        assert report.wire_bytes > 0
        assert all(b >= 0 for b in report.bus_bytes.values())

    def test_sync_share_bounded(self):
        plat = preset("sw-dsm-2").build()
        run_workload(plat)
        report = profile_platform(plat)
        assert 0.0 <= report.sync_share() <= 1.0

    def test_hotspots_ordering(self):
        plat = preset("sw-dsm-4").build()
        run_workload(plat)
        report = profile_platform(plat)
        spots = report.hotspots(top=4)
        work = [r.faults + r.fetches + r.diffs for r in spots]
        assert work == sorted(work, reverse=True)

    def test_render(self):
        plat = preset("hybrid-2").build()
        run_workload(plat)
        text = profile_platform(plat).render()
        assert "profile:" in text and "sync share" in text

    def test_smp_profile_has_no_network(self):
        plat = preset("smp-2").build()
        run_workload(plat)
        report = profile_platform(plat)
        assert report.messages == 0
        assert report.rank(0).faults == 0  # hardware coherence: no faults

    def test_host_engine_counters_reported(self):
        plat = preset("sw-dsm-2").build()
        run_workload(plat)
        report = profile_platform(plat)
        assert report.events_executed == plat.engine.events_executed > 0
        assert report.host_seconds == plat.engine.host_seconds > 0
        assert report.events_per_sec > 0
        assert "engine events" in report.render()

    def test_render_includes_host_instruments(self):
        from repro.bench.hostprof import HostProfiler, PhaseWallTimers

        plat = preset("sw-dsm-2").build()
        prof = HostProfiler(top=5)
        timers = PhaseWallTimers().attach(plat)
        prof.run(lambda: run_workload(plat))
        timers.detach()
        text = profile_platform(plat, host_profiler=prof,
                                phase_timers=timers).render()
        assert "host hot functions" in text
        assert "host phase timers" in text


class TestTraceSummary:
    def _traced_platform(self):
        cfg = preset("sw-dsm-2")
        cfg.trace = True
        return cfg.build()

    def test_message_histogram(self):
        plat = self._traced_platform()
        run_workload(plat)
        summary = summarize_trace(plat.engine.trace)
        assert summary.n_events > 0
        assert summary.message_count("jiajia.") > 0
        assert summary.message_count() >= summary.message_count("jiajia.")

    def test_traffic_matrix(self):
        plat = self._traced_platform()
        run_workload(plat)
        summary = summarize_trace(plat.engine.trace)
        (src, dst), count = summary.busiest_pair()
        assert count > 0 and src != dst

    def test_fetches_and_hot_pages(self):
        plat = self._traced_platform()
        run_workload(plat)
        summary = summarize_trace(plat.engine.trace)
        assert len(summary.fetches) >= 1
        hottest = summary.hottest_pages(1)
        assert hottest and hottest[0][1] >= 1

    def test_fetch_timeline_buckets(self):
        plat = self._traced_platform()
        run_workload(plat)
        summary = summarize_trace(plat.engine.trace)
        timeline = summary.fetch_rate_timeline(buckets=5)
        assert len(timeline) == 5
        assert sum(timeline) == len(summary.fetches)

    def test_render(self):
        plat = self._traced_platform()
        run_workload(plat)
        text = summarize_trace(plat.engine.trace).render()
        assert "trace:" in text

    def test_empty_trace(self):
        from repro.sim.trace import Tracer

        summary = summarize_trace(Tracer())
        assert summary.n_events == 0
        assert summary.busiest_pair() == ((0, 0), 0)
        assert summary.fetch_rate_timeline() == [0] * 10
