"""Failure-injection and robustness tests.

Production middleware must fail *loudly and precisely*: every misuse below
must surface as the right exception type at the right place, and never as
a hang, a silent corruption, or a wrong-layer error.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig, preset
from repro.errors import (AllocationError, DeadlockError, MessagingError,
                          SimulationError, SynchronizationError)
from tests.conftest import spmd


class TestDeadlocks:
    def test_lock_cycle_detected(self):
        """Classic ABBA deadlock ends as DeadlockError, not a hang."""
        plat = preset("smp-2").build()

        def main(env):
            first, second = (1, 2) if env.rank == 0 else (2, 1)
            env.lock(first)
            env.barrier()          # both hold their first lock
            env.lock(second)       # ...and block forever on the other
            return "unreachable"

        with pytest.raises(DeadlockError):
            spmd(plat, main)

    def test_missing_barrier_participant_detected(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            if env.rank == 0:
                env.barrier()      # rank 1 never arrives
            return None

        with pytest.raises(DeadlockError):
            spmd(plat, main)

    def test_recv_without_send_detected(self):
        plat = preset("smp-2").build()

        def main(env):
            if env.rank == 0:
                env.hamster.cluster_ctl.recv_msg()
            return None

        with pytest.raises(DeadlockError):
            spmd(plat, main)

    def test_deadlock_error_names_the_blocked_processes(self):
        plat = preset("smp-2").build()

        def main(env):
            env.lock(0)  # both ranks: second blocks forever, first exits
            return None  # rank that got the lock exits WITHOUT unlocking

        with pytest.raises(DeadlockError, match="spmd"):
            spmd(plat, main)


class TestResourceExhaustion:
    def test_allocation_failure_mid_application(self):
        plat = preset("smp-2").build()
        plat.dsm.allocator.capacity = 16 * 4096
        plat.dsm.allocator._free = [(0x4000_0000, 16 * 4096)]

        def main(env):
            env.alloc_array((4096,), name="ok")        # 8 pages of 16
            with pytest.raises(AllocationError):
                env.alloc_array((8192,), name="too-big")  # needs 16 more
            return True

        assert all(spmd(plat, main))

    def test_allocation_failure_message_is_actionable(self):
        plat = preset("smp-2").build()
        plat.dsm.allocator.capacity = 4096
        plat.dsm.allocator._free = [(0x4000_0000, 4096)]

        def main(env):
            if env.rank == 0:
                with pytest.raises(AllocationError, match="largest free block"):
                    env.hamster.memory.alloc(40960)
            return True

        assert all(spmd(plat, main))


class TestMisuseSurfacesCorrectly:
    def test_app_exception_aborts_whole_run(self):
        plat = preset("sw-dsm-4").build()

        def main(env):
            if env.rank == 2:
                raise RuntimeError("rank 2 exploded")
            env.barrier()
            return None

        with pytest.raises(RuntimeError, match="rank 2 exploded"):
            spmd(plat, main)

    def test_double_unlock_is_sync_error(self):
        plat = preset("smp-2").build()

        def main(env):
            if env.rank == 0:
                env.lock(1)
                env.unlock(1)
                with pytest.raises(SynchronizationError):
                    env.unlock(1)
            return True

        assert all(spmd(plat, main))

    def test_unbound_task_access_is_clear(self):
        plat = preset("smp-2").build()
        from repro.sim.process import SimProcess

        def rogue(proc):
            with pytest.raises(SimulationError, match="not bound"):
                plat.dsm.current_rank()
            return True

        p = SimProcess(plat.engine, rogue).start()
        plat.engine.run()
        assert p.result

    def test_freed_region_access_fails(self):
        plat = preset("smp-2").build()

        def main(env):
            if env.rank == 0:
                arr = env.hamster.memory.alloc_array((64,), name="tmp")
                env.hamster.memory.free(arr)
                with pytest.raises(KeyError):
                    arr[0] = 1.0  # backing store is gone
            return True

        assert all(spmd(plat, main))

    def test_message_to_invalid_rank(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            if env.rank == 0:
                with pytest.raises(MessagingError):
                    env.hamster.cluster_ctl.send_msg(7, "x")
            return True

        assert all(spmd(plat, main))


class TestHandlerFaults:
    def test_exception_in_message_handler_propagates(self):
        """A crash inside a protocol handler (server process) must abort
        the simulation with the original exception, not hang the sender."""
        plat = preset("sw-dsm-2").build()
        chan = plat.fabric.channel("faulty")

        def handler(msg):
            raise ValueError("handler crashed")

        chan.register_all("boom", lambda nid: handler)

        def main(env):
            if env.rank == 0:
                chan.rpc(0, 1, "boom")
            return None

        with pytest.raises(ValueError, match="handler crashed"):
            spmd(plat, main)


class TestNumericalEdges:
    def test_single_rank_platform(self):
        plat = ClusterConfig(platform="beowulf", dsm="jiajia", nodes=1).build()

        def main(env):
            A = env.alloc_array((64,), name="A")
            A[:] = 2.0
            env.barrier()
            env.lock(0)
            A[0] = 5.0
            env.unlock(0)
            env.barrier()
            return float(A[:].sum())

        assert spmd(plat, main) == [63 * 2.0 + 5.0]

    def test_tiny_arrays_share_one_page(self):
        """Many sub-page allocations must stay isolated (no cross-region
        bleed through the page machinery)."""
        plat = preset("sw-dsm-2").build()

        def main(env):
            arrays = [env.alloc_array((4,), name=f"tiny{i}") for i in range(5)]
            env.barrier()
            if env.rank == 0:
                for i, arr in enumerate(arrays):
                    arr[:] = float(i)
            env.barrier()
            return [float(arr[0]) for arr in arrays]

        for values in spmd(plat, main):
            assert values == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_empty_write_is_noop(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            A = env.alloc_array((8,), name="A")
            env.barrier()
            A[3:3] = np.zeros(0)
            env.barrier()
            return env.hamster.dsm.stats(env.rank)["write_faults"]

        assert spmd(plat, main) == [0, 0]
