"""Property tests (hypothesis): the calendar queue is order-equivalent to
the heapq reference for every push/pop interleaving the engine can produce.

The engine's contract with its queue: pushes carry a strictly increasing
``seq``, and a push never carries a timestamp earlier than the most
recently popped one (virtual time is monotone) — except across a
bounded-run pushback, where the engine re-pushes the overshooting event
with its *original* seq and calls ``rewind(until)``. The streams drawn
here exercise exactly that contract: same-timestamp FIFO ties,
re-insertion after pops, far-future jumps (the direct-search fallback),
and grow/shrink resizes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.eventq import CalendarQueue, HeapEventQueue, make_queue

# Offsets mix exact ties (0.0), sub-width jitter, bucket-width-scale gaps,
# and far-future jumps that overrun a whole "year" of buckets.
_offsets = st.one_of(
    st.sampled_from([0.0, 0.0, 1e-9, 4.2e-6, 1e-3, 1.0, 3600.0, 1e9]),
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False))

# A stream is a list of batches: push a few events (offset from current
# virtual time), then pop a few.
_batches = st.lists(
    st.tuples(st.lists(_offsets, max_size=8),
              st.integers(min_value=0, max_value=10)),
    min_size=1, max_size=12)


@settings(max_examples=300, deadline=None, derandomize=True)
@given(batches=_batches)
def test_calendar_pops_identically_to_heap(batches):
    cq, hq = CalendarQueue(), HeapEventQueue()
    seq = 0
    now = 0.0
    for pushes, npops in batches:
        for off in pushes:
            seq += 1
            when = now + off
            cq.push(when, seq, seq)
            hq.push(when, seq, seq)
        for _ in range(min(npops, len(hq))):
            got, ref = cq.pop(), hq.pop()
            assert got == ref
            now = got[0]
        assert len(cq) == len(hq)
        assert bool(cq) == bool(hq)
    while hq:
        got, ref = cq.pop(), hq.pop()
        assert got == ref
        now = got[0]
    assert len(cq) == 0 and not cq


@settings(max_examples=100, deadline=None, derandomize=True)
@given(n=st.integers(min_value=1, max_value=64),
       when=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                      allow_infinity=False))
def test_same_timestamp_ties_pop_fifo(n, when):
    """All-equal timestamps must drain in exact insertion (seq) order."""
    cq = CalendarQueue()
    for seq in range(1, n + 1):
        cq.push(when, seq, seq)
    assert [cq.pop()[1] for _ in range(n)] == list(range(1, n + 1))


@settings(max_examples=100, deadline=None, derandomize=True)
@given(batches=_batches,
       until=st.floats(min_value=0.0, max_value=20.0, allow_nan=False,
                       allow_infinity=False))
def test_rewind_after_bounded_run_pushback(batches, until):
    """Emulate Engine.run(until): pop to the bound, push the overshooting
    event back under its original seq, rewind, then keep scheduling from
    ``until`` — order must still match the heap reference exactly."""
    cq, hq = CalendarQueue(), HeapEventQueue()
    seq = 0
    for pushes, _ in batches:
        for off in pushes:
            seq += 1
            cq.push(off, seq, seq)
            hq.push(off, seq, seq)
    now = 0.0
    while hq:
        w, s, a = hq.pop()
        got = cq.pop()
        assert got == (w, s, a)
        if w > until:
            hq.push(w, s, a)
            cq.push(w, s, a)
            cq.rewind(until)
            hq.rewind(until)
            now = until
            break
        now = w
    # Resume with new events scheduled from the bound, as a fresh run would.
    for i, off in enumerate([0.0, 1e-6, 0.5]):
        seq += 1
        cq.push(now + off, seq, seq)
        hq.push(now + off, seq, seq)
    while hq:
        assert cq.pop() == hq.pop()
    assert len(cq) == 0


def test_pop_empty_raises():
    cq = CalendarQueue()
    try:
        cq.pop()
    except IndexError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("pop from empty CalendarQueue must IndexError")


def test_make_queue_factory():
    assert isinstance(make_queue("calendar"), CalendarQueue)
    assert isinstance(make_queue("heap"), HeapEventQueue)
    try:
        make_queue("splay")
    except ValueError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("unknown queue kind must raise ValueError")


def test_slab_reuses_records():
    """Popped records are recycled: after a pop, a push must not allocate a
    fresh list (the freelist hands the old record back)."""
    cq = CalendarQueue()
    cq.push(1.0, 1, "a")
    cq.pop()
    assert len(cq._free) == 1
    rec = cq._free[-1]
    assert rec[2] is None  # action reference dropped while slabbed
    cq.push(2.0, 2, "b")
    assert not cq._free
    assert cq.pop() == (2.0, 2, "b")
