"""Unit + property tests for the twin/diff machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.jiajia.diffs import (DIFF_HEADER_BYTES, RUN_HEADER_BYTES,
                                    apply_diff, diff_wire_size, make_diff)
from repro.errors import MemoryError_


def page(values):
    return np.array(values, dtype=np.uint8)


class TestMakeDiff:
    def test_identical_pages_produce_empty_diff(self):
        twin = page([1, 2, 3, 4])
        d = make_diff(7, twin, twin.copy())
        assert d.empty and d.changed_bytes == 0
        assert d.page == 7

    def test_single_run(self):
        twin = page([0] * 8)
        cur = twin.copy()
        cur[2:5] = [9, 9, 9]
        d = make_diff(0, twin, cur)
        assert len(d.runs) == 1
        off, data = d.runs[0]
        assert off == 2 and data.tolist() == [9, 9, 9]

    def test_multiple_runs(self):
        twin = page([0] * 10)
        cur = twin.copy()
        cur[0] = 1
        cur[5:7] = 2
        cur[9] = 3
        d = make_diff(0, twin, cur)
        assert [(off, data.tolist()) for off, data in d.runs] == [
            (0, [1]), (5, [2, 2]), (9, [3])]
        assert d.changed_bytes == 4

    def test_size_mismatch_rejected(self):
        with pytest.raises(MemoryError_):
            make_diff(0, page([1, 2]), page([1, 2, 3]))

    def test_run_data_is_a_copy(self):
        twin = page([0] * 4)
        cur = page([5, 0, 0, 0])
        d = make_diff(0, twin, cur)
        cur[0] = 7
        assert d.runs[0][1][0] == 5


class TestApplyDiff:
    def test_apply_reproduces_current(self):
        twin = page(range(16))
        cur = twin.copy()
        cur[3:6] = 0
        cur[12] = 255
        d = make_diff(0, twin, cur)
        target = twin.copy()
        written = apply_diff(target, d)
        assert np.array_equal(target, cur)
        assert written == d.changed_bytes

    def test_out_of_bounds_run_rejected(self):
        d = make_diff(0, page([0, 0]), page([0, 1]))
        with pytest.raises(MemoryError_):
            apply_diff(page([0]), d)

    def test_disjoint_diffs_merge_at_home(self):
        """The multiple-writer property: two writers of disjoint parts of
        one page both diff against the same twin; both diffs applied to the
        home yield the union of the writes (false sharing is harmless)."""
        base = page([0] * 16)
        w1 = base.copy()
        w1[0:4] = 1
        w2 = base.copy()
        w2[8:12] = 2
        home = base.copy()
        apply_diff(home, make_diff(0, base, w1))
        apply_diff(home, make_diff(0, base, w2))
        assert home[0:4].tolist() == [1] * 4
        assert home[8:12].tolist() == [2] * 4
        assert home[4:8].tolist() == [0] * 4


class TestWireSize:
    def test_empty_diff_is_header_only(self):
        d = make_diff(0, page([1]), page([1]))
        assert diff_wire_size(d) == DIFF_HEADER_BYTES

    def test_size_formula(self):
        twin = page([0] * 10)
        cur = twin.copy()
        cur[0] = 1
        cur[5] = 1
        d = make_diff(0, twin, cur)
        assert diff_wire_size(d) == DIFF_HEADER_BYTES + 2 * RUN_HEADER_BYTES + 2


class TestDiffProperty:
    @settings(max_examples=60, deadline=None)
    @given(twin=st.lists(st.integers(0, 255), min_size=1, max_size=256),
           changes=st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                            max_size=32))
    def test_apply_make_is_identity(self, twin, changes):
        """apply(twin, make(twin, cur)) == cur for arbitrary mutations."""
        twin_arr = page(twin)
        cur = twin_arr.copy()
        for pos, val in changes:
            cur[pos % len(cur)] = val
        d = make_diff(0, twin_arr, cur)
        target = twin_arr.copy()
        apply_diff(target, d)
        assert np.array_equal(target, cur)
        # Wire size is consistent with the runs.
        assert diff_wire_size(d) == (DIFF_HEADER_BYTES
                                     + len(d.runs) * RUN_HEADER_BYTES
                                     + d.changed_bytes)
