"""Unit tests for the S17 fault-injection subsystem.

Covers the fault-plan data model, the injection layer's determinism, the
reliable-messaging sublayer (retry, timeout, dedup, node death), heartbeat
failure detection, and the zero-cost-when-disabled guarantee.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, loads, preset
from repro.errors import ConfigurationError, NodeFailedError
from repro.errors import TimeoutError as ReproTimeoutError
from repro.faults import (FaultPlan, FaultyNetwork, LinkFaults, NodeCrash,
                          Partition)
from repro.machine.interconnect import Message
from repro.msg.active_messages import RetryPolicy
from tests.conftest import spmd


# --------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_defaults_are_inert(self):
        plan = FaultPlan()
        assert not plan.active
        assert not plan.link.active

    def test_seeded_profile_is_active(self):
        plan = FaultPlan.seeded(42)
        assert plan.active
        assert plan.seed == 42
        assert 0 < plan.link.drop_rate < 1

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaults(delay_min=2e-3, delay_max=1e-3)

    def test_partition_windows_and_groups(self):
        part = Partition(start=1.0, end=2.0, groups=((0, 1), (2,)))
        assert part.separates(0, 2, 1.5)
        assert not part.separates(0, 1, 1.5)      # same group
        assert not part.separates(0, 2, 2.5)      # window closed
        assert part.separates(0, 3, 1.5)          # 3 is in the implicit group
        with pytest.raises(ConfigurationError):
            Partition(start=1.0, end=2.0, groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            Partition(start=2.0, end=1.0, groups=((0,), (1,)))

    def test_crash_windows(self):
        crash = NodeCrash(node=1, at=1.0, restart=2.0)
        assert not crash.down(0.5)
        assert crash.down(1.0) and crash.down(1.9)
        assert not crash.down(2.0)
        assert NodeCrash(node=0, at=0.0).down(1e9)  # no restart: down forever
        with pytest.raises(ConfigurationError):
            NodeCrash(node=0, at=2.0, restart=1.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7, link=LinkFaults(drop_rate=0.2, dup_rate=0.05),
            partitions=(Partition(start=1e-3, end=2e-3, groups=((0,), (1,))),),
            crashes=(NodeCrash(node=1, at=5e-3, restart=None),),
            heartbeat=False)
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_coerce(self):
        plan = FaultPlan.seeded(3)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(3) == FaultPlan.seeded(3)
        assert FaultPlan.coerce({"seed": 9}).seed == 9
        with pytest.raises(ConfigurationError):
            FaultPlan.coerce(True)
        with pytest.raises(ConfigurationError):
            FaultPlan.coerce({"seed": 1, "bogus": 2})


# ------------------------------------------------------------ per-network ids
class TestMessageIds:
    def test_ids_start_at_one_per_network(self):
        plat_a = preset("sw-dsm-2").build()
        plat_b = preset("sw-dsm-2").build()
        for plat in (plat_a, plat_b):
            msg = Message(src=0, dst=1, kind="x", size=8)
            plat.cluster.network.assign_id(msg)
            assert msg.msg_id == 1  # independent of any other Network

    def test_assign_id_is_idempotent(self):
        plat = preset("sw-dsm-2").build()
        msg = Message(src=0, dst=1, kind="x", size=8)
        plat.cluster.network.assign_id(msg)
        first = msg.msg_id
        plat.cluster.network.assign_id(msg)
        assert msg.msg_id == first


# -------------------------------------------------------------- injection
def _exchange(env):
    """Minimal all-to-all shared-memory workload."""
    arr = env.alloc_array((env.n_ranks,), dtype=float, name="x")
    arr[env.rank] = float(env.rank + 1)
    env.barrier()
    total = float(sum(arr[r] for r in range(env.n_ranks)))
    env.barrier()
    return total


class TestFaultyNetwork:
    def test_single_injector_per_network(self):
        plat = preset("sw-dsm-2").build()
        FaultyNetwork(plat.cluster.network, FaultPlan.seeded(1))
        with pytest.raises(ConfigurationError):
            FaultyNetwork(plat.cluster.network, FaultPlan.seeded(2))

    def test_detach_restores_send(self):
        plat = preset("sw-dsm-2").build()
        original = plat.cluster.network.send
        inj = FaultyNetwork(plat.cluster.network, FaultPlan.seeded(1))
        assert plat.cluster.network.send != original
        inj.detach()
        assert plat.cluster.network.send == original
        assert plat.cluster.network.faults is None

    def test_same_seed_same_faults(self):
        def faults_of(seed):
            cfg = preset("sw-dsm-2")
            cfg.faults = FaultPlan.seeded(seed, heartbeat=False)
            plat = cfg.build()
            spmd(plat, _exchange)
            return plat.faults.stats(), plat.engine.now

        s1, t1 = faults_of(11)
        s2, t2 = faults_of(11)
        s3, _ = faults_of(12)
        assert (s1, t1) == (s2, t2)
        assert s1 != s3  # different seed classifies differently

    def test_node_down_drops_both_directions(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan(crashes=(NodeCrash(node=1, at=0.0),),
                               heartbeat=False)
        plat = cfg.build()
        net = plat.cluster.network
        for src, dst in ((0, 1), (1, 0)):
            before = plat.faults.dropped_node_down
            net.send(Message(src=src, dst=dst, kind="t", size=8))
            assert plat.faults.dropped_node_down == before + 1


# -------------------------------------------------------- reliable messaging
class TestReliableMessaging:
    def test_off_by_default_and_zero_state(self):
        plat = preset("sw-dsm-2").build()
        layer = plat.fabric.layer
        assert not layer.reliable
        spmd(plat, _exchange)
        assert layer.acks_sent == 0 and layer.retries == 0

    def test_retries_mask_loss(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan.seeded(42, heartbeat=False)
        plat = cfg.build()
        results = spmd(plat, _exchange)
        assert results == [3.0, 3.0]
        layer = plat.fabric.layer
        assert plat.faults.dropped > 0          # faults actually fired
        assert layer.retries >= plat.faults.dropped - layer.delivery_failures
        assert layer.delivery_failures == 0

    def test_duplicates_are_suppressed(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan(seed=5, link=LinkFaults(dup_rate=0.5),
                               heartbeat=False)
        plat = cfg.build()
        assert spmd(plat, _exchange) == [3.0, 3.0]
        assert plat.faults.duplicated > 0
        # Some wire duplicates are ack frames (harmless, not deduped), so
        # only the handler-bearing ones must show up as suppressed.
        assert plat.fabric.layer.dups_suppressed > 0

    def test_total_loss_raises_timeout(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan(seed=1, link=LinkFaults(drop_rate=1.0),
                               heartbeat=False)
        plat = cfg.build()
        policy = RetryPolicy(timeout=100e-6, max_retries=2)
        plat.fabric.layer._reliable = policy
        with pytest.raises(ReproTimeoutError):
            spmd(plat, _exchange)
        assert plat.fabric.layer.delivery_failures >= 1
        # the failure surfaced within the policy's bounded span
        assert plat.engine.now < 1.0

    def test_mark_node_failed_fails_pending_and_new_traffic(self):
        plat = preset("sw-dsm-2").build()
        layer = plat.fabric.layer
        layer.enable_reliability()

        def rank0(env):
            if env.rank != 0:
                return None
            layer.mark_node_failed(1)
            with pytest.raises(NodeFailedError):
                layer.rpc(0, 1, "cc.reg.get", payload="k", size=8)
            return "refused"

        out = spmd(plat, rank0)
        assert out[0] == "refused"
        assert layer.failed_nodes() == {1}

    def test_retry_policy_span(self):
        p = RetryPolicy(timeout=1e-3, max_retries=2, backoff=2.0)
        assert p.span() == pytest.approx(1e-3 + 2e-3 + 4e-3)


# ---------------------------------------------------------- failure detection
class TestFailureDetection:
    def test_crash_is_confirmed_and_typed(self):
        cfg = preset("sw-dsm-2")
        crash_at = 1e-3  # mid-run: the plain workload takes ~2.7 ms
        cfg.faults = FaultPlan(seed=3, crashes=(NodeCrash(node=1, at=crash_at),))
        plat = cfg.build()
        with pytest.raises(NodeFailedError) as info:
            spmd(plat, _exchange)
        detector = plat.hamster.cluster_ctl.detector
        assert info.value.node_id == 1
        assert detector.confirmed() == [1]
        # detection within the bounded confirm window after the crash
        interval = detector.interval
        assert info.value.detected_at <= crash_at + (detector.confirm_after + 2) * interval

    def test_healthy_cluster_stays_clean(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan.seeded(8)  # loss, but no crash
        plat = cfg.build()
        spmd(plat, _exchange)
        cc = plat.hamster.cluster_ctl
        assert cc.failed_nodes() == []
        assert cc.node_alive(0) and cc.node_alive(1)
        assert cc.stats.query("heartbeats_sent") > 0

    def test_liveness_queries_without_detector(self):
        plat = preset("sw-dsm-2").build()
        cc = plat.hamster.cluster_ctl
        assert cc.detector is None
        assert cc.node_alive(1)
        assert cc.suspected_nodes() == [] and cc.failed_nodes() == []
        with pytest.raises(ConfigurationError):
            cc.node_alive(99)

    def test_detector_rejects_smp(self):
        with pytest.raises(ConfigurationError):
            preset("smp-2").build().hamster.cluster_ctl.start_failure_detection()


# ------------------------------------------------------------- configuration
class TestConfigWiring:
    def test_smp_platform_rejects_faults(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(platform="smp", dsm="smp", nodes=2, faults=1)

    def test_faults_field_coerces_seed(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = 42
        plat = cfg.build()
        assert plat.faults is not None
        assert plat.faults.plan == FaultPlan.seeded(42)
        assert plat.fabric.layer.reliable

    def test_config_text_round_trip(self):
        cfg = preset("sw-dsm-2")
        cfg.faults = FaultPlan(seed=5, link=LinkFaults(drop_rate=0.1),
                               crashes=(NodeCrash(node=1, at=1e-3),),
                               heartbeat=False)
        parsed = loads(cfg.to_text())
        assert parsed.faults == cfg.faults

    def test_flat_faults_section(self):
        cfg = loads("[cluster]\nplatform = beowulf\nnodes = 2\n"
                    "[faults]\nseed = 9\ndrop_rate = 0.05\nheartbeat = off\n")
        plan = cfg.faults
        assert plan.seed == 9
        assert plan.link.drop_rate == pytest.approx(0.05)
        assert plan.heartbeat is False
