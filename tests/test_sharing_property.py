"""Property tests for the sharing detectors (hypothesis).

The detectors advertise two hard guarantees:

* a page with a **single writer** never flags as ping-pong (and therefore
  never as false sharing) — alternations are zero by construction;
* the output is **deterministic and order-independent**: any permutation
  of the same event multiset yields the same verdicts, because the
  detectors sort by ``(t, page, rank)`` before compressing.

These are exactly the invariants a diagnosis tool must not break — a
flaky or order-sensitive detector would send someone padding arrays that
were never falsely shared.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs.diagnose import (classify_sharing, compress_writers,
                                group_pages, ping_pong_pages)
from repro.obs.sharing import merge_interval

# (t, page, rank) protocol-write events over a small universe so
# collisions (same page, many ranks) actually happen.
EVENTS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=5),     # page
        st.integers(min_value=0, max_value=3)),    # rank
    max_size=60)

INTERVALS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=64),
              st.integers(min_value=0, max_value=64)).map(
        lambda ab: [min(ab), max(ab)]),
    max_size=12)

RANGES_BY_RANK = st.dictionaries(
    st.integers(min_value=0, max_value=3), INTERVALS, max_size=4)


class TestSingleWriter:
    @given(page=st.integers(min_value=0, max_value=99),
           rank=st.integers(min_value=0, max_value=7),
           times=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                    allow_nan=False, allow_infinity=False),
                          min_size=1, max_size=50))
    def test_never_flags_as_ping_pong(self, page, rank, times):
        events = [(t, page, rank) for t in times]
        assert ping_pong_pages(events, min_alternations=1, min_rate=0.0) == {}

    @given(ivs=INTERVALS)
    def test_single_rank_never_classifies(self, ivs):
        assert classify_sharing({0: ivs}) == "unknown"


class TestOrderIndependence:
    @given(events=EVENTS, seed=st.randoms(use_true_random=False))
    @settings(max_examples=200)
    def test_ping_pong_invariant_under_permutation(self, events, seed):
        shuffled = list(events)
        seed.shuffle(shuffled)
        base = ping_pong_pages(events, min_alternations=2)
        assert ping_pong_pages(shuffled, min_alternations=2) == base

    @given(events=EVENTS)
    def test_ping_pong_invariant_under_reversal(self, events):
        assert (ping_pong_pages(reversed(events), min_alternations=1)
                == ping_pong_pages(events, min_alternations=1))

    @given(events=st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=0, max_value=3)), max_size=40),
        seed=st.randoms(use_true_random=False))
    def test_compress_writers_order_independent(self, events, seed):
        shuffled = list(events)
        seed.shuffle(shuffled)
        assert compress_writers(shuffled) == compress_writers(events)

    @given(ranges=RANGES_BY_RANK)
    def test_classify_independent_of_interval_order(self, ranges):
        base = classify_sharing(ranges)
        reversed_ivs = {r: list(reversed(ivs)) for r, ivs in ranges.items()}
        assert classify_sharing(reversed_ivs) == base


class TestDetectorSoundness:
    @given(events=EVENTS)
    def test_flagged_pages_really_alternate(self, events):
        found = ping_pong_pages(events, min_alternations=2)
        for page, info in found.items():
            assert info["alternations"] >= 2
            assert len(info["ranks"]) >= 2
            assert info["writes"] >= info["alternations"] + 1
            t0, t1 = info["window"]
            assert t0 <= t1

    @given(events=EVENTS,
           thresh=st.integers(min_value=1, max_value=10))
    def test_threshold_is_monotone(self, events, thresh):
        loose = set(ping_pong_pages(events, min_alternations=thresh))
        tight = set(ping_pong_pages(events, min_alternations=thresh + 1))
        assert tight <= loose

    @given(ranges=RANGES_BY_RANK)
    def test_classification_matches_overlap_oracle(self, ranges):
        verdict = classify_sharing(ranges)
        # brute-force byte-level oracle
        bytes_by_rank = {
            r: {b for lo, hi in ivs for b in range(lo, hi)}
            for r, ivs in ranges.items()}
        writers = [r for r, bs in bytes_by_rank.items() if bs]
        overlap = any(bytes_by_rank[a] & bytes_by_rank[b]
                      for i, a in enumerate(writers)
                      for b in writers[i + 1:])
        if len(writers) < 2:
            assert verdict == "unknown"
        elif overlap:
            assert verdict == "true"
        else:
            assert verdict == "false"


class TestIntervalMerge:
    @given(spans=st.lists(st.tuples(
        st.integers(min_value=0, max_value=128),
        st.integers(min_value=0, max_value=128)), max_size=20))
    def test_merge_matches_byte_set(self, spans):
        ivs = []
        expected = set()
        for a, b in spans:
            lo, hi = min(a, b), max(a, b)
            merge_interval(ivs, lo, hi)
            expected |= set(range(lo, hi))
        got = {b for lo, hi in ivs for b in range(lo, hi)}
        assert got == expected
        # sorted and pairwise disjoint (not even adjacent)
        for (lo_a, hi_a), (lo_b, hi_b) in zip(ivs, ivs[1:]):
            assert hi_a < lo_b


class TestGroupPages:
    @given(pages=st.lists(st.integers(min_value=0, max_value=50),
                          max_size=30),
           seed=st.randoms(use_true_random=False))
    def test_groups_cover_exactly_the_input_set(self, pages, seed):
        shuffled = list(pages)
        seed.shuffle(shuffled)
        groups = group_pages(shuffled)
        assert groups == group_pages(pages)
        covered = {p for a, b in groups for p in range(a, b + 1)}
        assert covered == set(pages)
        for (a1, b1), (a2, b2) in zip(groups, groups[1:]):
            assert b1 + 1 < a2   # maximal: no two groups are mergeable
