"""Benchmark-application tests: correctness on every platform, phase
instrumentation, and run-to-run determinism."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.common import (APP_TABLE, AppError, AppResult, merge_rank_results,
                               row_block)
from repro.bench.runners import run_app_on
from repro.config import preset

PLATFORMS = ["smp-2", "sw-dsm-4", "hybrid-4", "sw-dsm-2", "hybrid-2"]

SMALL = {
    "matmult": dict(n=64),
    "pi": dict(intervals=1 << 12),
    "sor": dict(n=64, iterations=3),
    "lu": dict(n=64, block=16),
    "water": dict(molecules=24, steps=2),
}


class TestRowBlock:
    def test_even_partition(self):
        assert [row_block(8, r, 4) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_partition_covers_all_rows(self):
        blocks = [row_block(10, r, 4) for r in range(4)]
        assert blocks[0] == (0, 3)
        assert blocks[-1][1] == 10
        covered = [i for lo, hi in blocks for i in range(lo, hi)]
        assert covered == list(range(10))


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("app", sorted(SMALL))
class TestAppsVerifyEverywhere:
    def test_app_verifies(self, platform, app):
        result = run_app_on(preset(platform), app, **SMALL[app])
        assert result.verified
        assert result.phases["total"] > 0


class TestAppBehaviour:
    def test_lu_phase_split_consistent(self):
        result = run_app_on(preset("sw-dsm-2"), "lu", **SMALL["lu"])
        ph = result.phases
        assert set(ph) >= {"all", "no_init", "core", "barrier", "init"}
        # Merged phases are per-phase maxima across ranks, so additivity
        # holds only as a bound: all <= init + no_init, all >= each part.
        assert ph["all"] <= ph["init"] + ph["no_init"] + 1e-12
        assert ph["all"] >= max(ph["init"], ph["no_init"])
        assert ph["core"] <= ph["no_init"]
        assert ph["barrier"] <= ph["no_init"]

    def test_sor_locality_helps_on_swdsm(self):
        opt = run_app_on(preset("sw-dsm-4"), "sor", n=128, iterations=4,
                         locality=True)
        unopt = run_app_on(preset("sw-dsm-4"), "sor", n=128, iterations=4,
                           locality=False)
        assert opt.phases["total"] < unopt.phases["total"]

    def test_pi_converges(self):
        import math

        result = run_app_on(preset("hybrid-4"), "pi", intervals=1 << 14)
        assert abs(result.checksum - math.pi) < 1e-4

    def test_water_sizes(self):
        for molecules in (24, 33):
            result = run_app_on(preset("hybrid-2"), "water",
                                molecules=molecules, steps=1)
            assert result.verified
            assert result.extra["molecules"] == molecules

    def test_matmult_init_and_compute_phases(self):
        result = run_app_on(preset("hybrid-2"), "matmult", n=64)
        assert result.phases["init"] > 0
        assert result.phases["compute"] > 0

    def test_determinism_across_runs(self):
        a = run_app_on(preset("sw-dsm-4"), "sor", n=64, iterations=2)
        b = run_app_on(preset("sw-dsm-4"), "sor", n=64, iterations=2)
        assert a.phases == b.phases
        assert a.checksum == b.checksum

    def test_verification_failure_raises(self, monkeypatch):
        """If a protocol bug corrupted results, the harness must notice."""
        import repro.apps.pi as pi_mod

        original = pi_mod.run_pi

        def sabotaged(api, **kw):
            # run_pi is a generator-function app body: drive it to completion
            # (the wrapper is itself a generator so it stays stackless).
            result = yield from original(api, **kw)
            return AppResult(app=result.app, rank=result.rank,
                             phases=result.phases, verified=False)

        monkeypatch.setitem(
            __import__("repro.apps.common", fromlist=["_registry"]).__dict__,
            "_registry", lambda: {"pi": sabotaged})
        with pytest.raises(AssertionError, match="verification"):
            run_app_on(preset("hybrid-2"), "pi", intervals=1024)


class TestAppRegistry:
    def test_table1_contents(self):
        assert set(APP_TABLE) == {"matmult", "pi", "sor", "lu", "water",
                                  "fft"}  # fft = extension beyond Table 1
        assert APP_TABLE["matmult"]["working_set"] == "1024x1024 matrix"
        assert APP_TABLE["water"]["working_set"] == "288 / 343 molecules"

    def test_get_app_unknown(self):
        with pytest.raises(AppError):
            get_app("quake")

    def test_merge_rank_results(self):
        a = AppResult(app="x", rank=0, phases={"total": 1.0, "init": 0.5},
                      verified=True, checksum=7.0)
        b = AppResult(app="x", rank=1, phases={"total": 2.0, "init": 0.25},
                      verified=True, checksum=7.0)
        merged = merge_rank_results([a, b])
        assert merged.phases == {"total": 2.0, "init": 0.5}
        assert merged.verified

    def test_merge_fails_if_any_unverified(self):
        a = AppResult(app="x", rank=0, phases={"total": 1.0}, verified=True)
        b = AppResult(app="x", rank=1, phases={"total": 1.0}, verified=False)
        assert not merge_rank_results([a, b]).verified
