"""Unit + property tests for the global address space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory.address_space import GlobalAddressSpace, Region


PAGE = 4096
BASE = GlobalAddressSpace.BASE


class TestRegionGeometry:
    def test_basic_properties(self):
        r = Region(0, BASE, 3 * PAGE, PAGE, "r")
        assert r.end == BASE + 3 * PAGE
        assert r.n_pages == 3
        assert list(r.pages()) == [BASE // PAGE + i for i in range(3)]

    def test_unaligned_base_rejected(self):
        with pytest.raises(MemoryError_):
            Region(0, BASE + 1, PAGE, PAGE)

    def test_pages_for_spanning_access(self):
        r = Region(0, BASE, 4 * PAGE, PAGE)
        pages = r.pages_for(PAGE - 1, 2)  # crosses one boundary
        assert len(pages) == 2

    def test_pages_for_empty_access(self):
        r = Region(0, BASE, PAGE, PAGE)
        assert len(r.pages_for(0, 0)) == 0

    def test_out_of_range_access_rejected(self):
        r = Region(0, BASE, PAGE, PAGE)
        with pytest.raises(MemoryError_):
            r.pages_for(0, PAGE + 1)
        with pytest.raises(MemoryError_):
            r.pages_for(-1, 4)

    def test_page_extent_clips_to_region(self):
        r = Region(0, BASE, PAGE + 100, PAGE)
        off, length = r.page_extent(r.first_page + 1)
        assert off == PAGE and length == 100

    def test_page_offset_of_foreign_page_rejected(self):
        r = Region(0, BASE, PAGE, PAGE)
        with pytest.raises(MemoryError_):
            r.page_offset(r.first_page + 5)

    @settings(max_examples=50, deadline=None)
    @given(offset=st.integers(0, 10 * PAGE - 1),
           nbytes=st.integers(1, 3 * PAGE))
    def test_pages_for_matches_bruteforce(self, offset, nbytes):
        r = Region(0, BASE, 10 * PAGE, PAGE)
        if offset + nbytes > r.size:
            nbytes = r.size - offset
            if nbytes == 0:
                return
        expected = sorted({(BASE + b) // PAGE
                           for b in range(offset, offset + nbytes)})
        assert list(r.pages_for(offset, nbytes)) == expected


class TestAddressSpace:
    def test_register_and_resolve(self):
        space = GlobalAddressSpace(PAGE)
        r = space.add_region(BASE, 2 * PAGE)
        region, off = space.resolve(BASE + PAGE + 7)
        assert region is r and off == PAGE + 7

    def test_unmapped_resolve_fails(self):
        space = GlobalAddressSpace(PAGE)
        space.add_region(BASE, PAGE)
        with pytest.raises(MemoryError_):
            space.resolve(BASE + 5 * PAGE)
        assert space.region_at(BASE - 1) is None

    def test_overlap_rejected(self):
        space = GlobalAddressSpace(PAGE)
        space.add_region(BASE, 2 * PAGE)
        with pytest.raises(MemoryError_):
            space.add_region(BASE + PAGE, PAGE)
        with pytest.raises(MemoryError_):
            space.add_region(BASE - PAGE, 2 * PAGE)

    def test_drop_region(self):
        space = GlobalAddressSpace(PAGE)
        r = space.add_region(BASE, PAGE)
        space.drop_region(r)
        assert r.freed
        assert space.region_at(BASE) is None
        with pytest.raises(MemoryError_):
            space.drop_region(r)

    def test_non_power_of_two_page_size_rejected(self):
        with pytest.raises(MemoryError_):
            GlobalAddressSpace(3000)

    def test_iteration_sorted_by_address(self):
        space = GlobalAddressSpace(PAGE)
        space.add_region(BASE + 4 * PAGE, PAGE, "b")
        space.add_region(BASE, PAGE, "a")
        assert [r.name for r in space] == ["a", "b"]
        assert len(space) == 2
