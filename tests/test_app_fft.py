"""Tests for the FFT extension benchmark (all-to-all transpose pattern)."""

import numpy as np
import pytest

from repro.apps.common import merge_rank_results
from repro.apps.fft import run_fft
from repro.bench.runners import run_app_on
from repro.config import ClusterConfig, preset
from repro.models.jiajia_api import JiaJiaApi


@pytest.mark.parametrize("platform", ["smp-2", "sw-dsm-2", "sw-dsm-4",
                                      "hybrid-2", "hybrid-4"])
def test_fft_verifies_everywhere(platform):
    merged = run_app_on(preset(platform), "fft", n1=32, n2=32)
    assert merged.verified


def test_fft_rectangular_factors():
    merged = run_app_on(preset("hybrid-2"), "fft", n1=16, n2=64)
    assert merged.verified
    assert merged.extra == {"n1": 16, "n2": 64}


def test_fft_uneven_rank_partition():
    cfg = ClusterConfig(platform="beowulf", dsm="jiajia", nodes=3,
                        name="sw-3")
    assert run_app_on(cfg, "fft", n1=30, n2=32).verified


def test_fft_phases_complete():
    merged = run_app_on(preset("sw-dsm-2"), "fft", n1=32, n2=32)
    assert set(merged.phases) >= {"init", "fft1", "transpose", "fft2", "total"}
    body = (merged.phases["fft1"] + merged.phases["transpose"]
            + merged.phases["fft2"])
    assert merged.phases["total"] >= body * 0.95


def test_transpose_dominates_on_dsm_not_on_smp():
    """The all-to-all phase is the communication hotspot on clusters but
    just bus traffic on the SMP."""
    def transpose_share(platform):
        merged = run_app_on(preset(platform), "fft", n1=64, n2=64)
        return merged.phases["transpose"] / merged.phases["total"]

    assert transpose_share("sw-dsm-4") > transpose_share("smp-2")


def test_fft_deterministic():
    a = run_app_on(preset("hybrid-4"), "fft", n1=32, n2=32)
    b = run_app_on(preset("hybrid-4"), "fft", n1=32, n2=32)
    assert a.phases == b.phases


def test_fft_checksum_platform_independent():
    values = {run_app_on(preset(p), "fft", n1=32, n2=32).checksum
              for p in ("smp-2", "sw-dsm-2", "hybrid-2")}
    assert len(values) == 1
