"""Tests for the Cray shmem and ANL macro model layers."""

import numpy as np
import pytest

from repro.config import preset
from repro.errors import ModelError
from repro.models.anl import AnlMacros
from repro.models.shmem import ShmemApi


def shmem_on(name="hybrid-4"):
    plat = preset(name).build()
    return plat, ShmemApi(plat.hamster)


class TestShmemRma:
    def test_put_get_ring(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(4)
            me, n = s.shmem_my_pe(), s.shmem_n_pes()
            sym = s.shmem_malloc((4,), name="ring")
            s.shmem_put(sym, slice(0, 4), np.full(4, float(me)), (me + 1) % n)
            s.shmem_barrier_all()
            mine = s.shmem_get(sym, slice(0, 4), me)
            s.shmem_finalize()
            return float(mine[0])

        # PE me holds what PE (me-1) put.
        assert api.run(main) == [3.0, 0.0, 1.0, 2.0]

    def test_symmetric_slabs_homed_per_pe(self):
        plat, api = shmem_on()
        dsm = plat.dsm

        def main(s):
            s.start_pes(0)
            sym = s.shmem_malloc((8,), name="homes")
            backing = sym._backing.backing
            first = backing.region.first_page
            pages_per_slab = backing.region.n_pages // 4
            return [dsm.home_of(first + pe * pages_per_slab) for pe in range(4)]

        assert api.run(main)[0] == [0, 1, 2, 3]

    def test_single_element_p_g(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((4,), name="pg")
            if me == 0:
                s.shmem_p(sym, 2, 7.5, 3)
            s.shmem_barrier_all()
            if me == 3:
                return s.shmem_g(sym, 2, 3)
            return None

        assert api.run(main)[3] == 7.5

    def test_get_sees_remote_puts_on_swdsm(self):
        """One-sided semantics must hold even on the caching SW-DSM:
        shmem_get refreshes stale copies."""
        plat, api = shmem_on("sw-dsm-2")

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((4,), name="x")
            _ = s.shmem_get(sym, slice(0, 4), me)  # prime the local cache
            s.shmem_barrier_all()
            if me == 0:
                s.shmem_put(sym, 0, 3.25, 1)
            s.shmem_barrier_all()
            if me == 1:
                return s.shmem_g(sym, 0, 1)
            return None

        assert api.run(main)[1] == 3.25

    def test_start_pes_mismatch_rejected(self):
        plat, api = shmem_on()

        def main(s):
            with pytest.raises(ModelError):
                s.start_pes(7)
            return True

        assert all(api.run(main))


class TestShmemCollectives:
    def test_sum_to_all(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((2,), name="red")
            sym.write(me, slice(0, 2), np.array([me + 1.0, 1.0]))
            s.shmem_fence()
            result = s.shmem_double_sum_to_all(sym, slice(0, 2))
            return list(np.asarray(result))

        for row in api.run(main):
            assert row == [10.0, 4.0]

    def test_max_to_all(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((1,), name="mx")
            sym.write(me, 0, float(me * me))
            s.shmem_fence()
            return float(np.asarray(s.shmem_double_max_to_all(sym, 0)))

        assert api.run(main) == [9.0] * 4

    def test_broadcast(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((3,), name="bc")
            if me == 2:
                sym.write(2, slice(0, 3), np.array([7.0, 8.0, 9.0]))
                s.shmem_quiet()
            s.shmem_broadcast(sym, slice(0, 3), root=2)
            return list(s.shmem_get(sym, slice(0, 3), me))

        for row in api.run(main):
            assert row == [7.0, 8.0, 9.0]

    def test_collect(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((1,), name="cl")
            sym.write(me, 0, float(me))
            s.shmem_quiet()
            s.shmem_barrier_all()
            gathered = s.shmem_collect(sym, 0)
            return [float(x) for x in np.asarray(gathered).reshape(-1)]

        assert api.run(main)[0] == [0.0, 1.0, 2.0, 3.0]

    def test_atomics(self):
        plat, api = shmem_on()

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((1,), dtype=np.int64, name="at")
            if me == 0:
                sym.write(0, 0, 0)
                s.shmem_quiet()
            s.shmem_barrier_all()
            old = s.shmem_int_finc(sym, 0, 0)  # everyone increments PE 0
            s.shmem_barrier_all()
            final = s.shmem_g(sym, 0, 0) if me == 0 else None
            return old, final

        res = api.run(main)
        olds = sorted(r[0] for r in res)
        assert olds == [0, 1, 2, 3]
        assert res[0][1] == 4

    def test_swap(self):
        plat, api = shmem_on("hybrid-2")

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((1,), name="sw")
            if me == 0:
                sym.write(1, 0, 5.0)
                s.shmem_quiet()
                old = s.shmem_swap(sym, 0, 6.0, 1)
                return old
            return None

        assert api.run(main)[0] == 5.0

    def test_wait_until(self):
        plat, api = shmem_on("hybrid-2")

        def main(s):
            s.start_pes(0)
            me = s.shmem_my_pe()
            sym = s.shmem_malloc((1,), name="flag")
            if me == 1:
                value = s.shmem_wait(sym, 0, not_value=0.0)
                return float(value)
            s.hamster.engine.require_process().hold(0.001)
            s.shmem_put(sym, 0, 42.0, 1)
            s.shmem_barrier_all() if False else None
            return None

        # rank 1 spins until rank 0's put lands
        res = api.run(main)
        assert res[1] == 42.0


class TestAnlMacros:
    def test_lifecycle_and_gmalloc(self, swdsm4):
        api = AnlMacros(swdsm4.hamster)

        def main(a):
            a.MAIN_INITENV()
            arr = a.G_MALLOC_ARRAY((8, 8), name="g")
            pid = a.hamster.task.my_rank()
            arr[pid * 2:(pid + 1) * 2, :] = pid
            a.BARRIER()
            total = float(arr[:, :].sum())
            a.MAIN_END()
            return total

        assert api.run(main) == [sum(16 * r for r in range(4))] * 4

    def test_locks_and_alock(self, smp2):
        api = AnlMacros(smp2.hamster)

        def main(a):
            lock = a.LOCKDEC()
            a.LOCKINIT(lock)
            a.LOCK(lock)
            a.UNLOCK(lock)
            locks = a.ALOCKDEC(4)
            a.ALOCK(locks, 2)
            a.AULOCK(locks, 2)
            return len(set(locks)) == 4

        assert all(api.run(main))

    def test_create_and_wait_for_end(self, smp2):
        api = AnlMacros(smp2.hamster)
        done = []

        def main(a):
            if a.hamster.task.my_rank() != 0:
                return None
            a.CREATE(lambda: done.append(1))
            a.CREATE(lambda: done.append(2))
            a.WAIT_FOR_END()
            return sorted(done)

        assert api.run(main)[0] == [1, 2]

    def test_getsub_self_scheduling(self, smp2):
        api = AnlMacros(smp2.hamster)

        def main(a):
            gs = a.GSDEC() if a.hamster.task.my_rank() == 0 else None
            # Share the handle through the registry.
            cc = a.hamster.cluster_ctl
            if gs is not None:
                a.GSINIT(gs, limit=10)
                cc.publish("gs", gs)
            a.BARRIER()
            gs = cc.lookup("gs")
            got = []
            while True:
                index = a.GETSUB(gs)
                if index < 0:
                    break
                got.append(index)
            a.BARRIER()
            return got

        chunks = api.run(main)
        indices = sorted(i for chunk in chunks for i in chunk)
        assert indices == list(range(10))  # every index exactly once

    def test_getsub_unknown_handle(self, smp2):
        api = AnlMacros(smp2.hamster)

        def main(a):
            with pytest.raises(ModelError):
                a.GETSUB(999)
            return True

        assert all(api.run(main))

    def test_clock(self, smp2):
        api = AnlMacros(smp2.hamster)

        def main(a):
            t0 = a.CLOCK()
            a.BARRIER()
            return a.CLOCK() >= t0

        assert all(api.run(main))
