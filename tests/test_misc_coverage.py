"""Coverage for surfaces not exercised elsewhere: templates, experiments
generators, refresh semantics, errors module, version metadata."""

import numpy as np
import pytest

import repro
from repro.bench.experiments import gen_table1, gen_table2, md_table
from repro.config import preset
from repro.core.templates import SpmdEnv, model_startup, spmd_startup
from repro.errors import ConfigurationError, HamsterError
from tests.conftest import spmd


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_error_hierarchy_rooted(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj.__module__ == "repro.errors":
                assert issubclass(obj, HamsterError) or obj is HamsterError


class TestTemplates:
    def test_spmd_startup_from_inside_simulation_rejected(self):
        plat = preset("smp-2").build()

        def main(env):
            with pytest.raises(ConfigurationError, match="launcher"):
                spmd_startup(env.hamster, lambda e: None)
            return True

        assert all(spmd(plat, main))

    def test_model_startup_runs_setup(self):
        plat = preset("smp-2").build()
        ran = []
        model_startup(plat.hamster, setup=lambda h: ran.append(h))
        assert ran == [plat.hamster]

    def test_spmd_env_shortcuts(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            assert isinstance(env, SpmdEnv)
            assert env.n_ranks == 2
            t0 = env.wtime()
            env.compute(1e6)
            assert env.wtime() > t0
            return env.rank

        assert spmd(plat, main) == [0, 1]

    def test_partial_rank_launch(self):
        """run_spmd(ranks=...) launches a subset (useful for masters-only
        phases in tests)."""
        plat = preset("smp-2").build()
        results = plat.hamster.run_spmd(lambda env: env.rank, ranks=[1])
        assert results == [1]


class TestRefreshSemantics:
    def test_refresh_noop_on_smp_and_hybrid(self):
        for name in ("smp-2", "hybrid-2"):
            plat = preset(name).build()

            def main(env):
                A = env.alloc_array((64,), name="A")
                env.barrier()
                A.refresh()       # must be harmless everywhere
                A.refresh(slice(0, 4))
                return True

            assert all(spmd(plat, main))

    def test_refresh_forces_refetch_on_swdsm(self):
        plat = preset("sw-dsm-2").build()
        dsm = plat.dsm

        def main(env):
            from repro.memory.layout import single_home

            A = env.alloc_array((64,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                _ = A[:]                      # fetch + cache
                before = dsm.stats(1)["pages_fetched"]
                _ = A[:]                      # cached: no fetch
                mid = dsm.stats(1)["pages_fetched"]
                A.refresh()
                _ = A[:]                      # refetch
                after = dsm.stats(1)["pages_fetched"]
                return before, mid, after
            return None

        before, mid, after = spmd(plat, main)[1]
        assert mid == before
        assert after == before + 1

    def test_refresh_skips_dirty_pages(self):
        plat = preset("sw-dsm-2").build()

        def main(env):
            from repro.memory.layout import single_home

            A = env.alloc_array((64,), name="A", distribution=single_home(0))
            env.barrier()
            if env.rank == 1:
                A[0] = 7.0       # dirty, unflushed
                A.refresh()      # must NOT wipe the pending write
                return float(A[0])
            return None

        assert spmd(plat, main)[1] == 7.0


class TestExperimentGenerators:
    def test_md_table(self):
        text = md_table(["a", "b"], [["x", 1.5]])
        assert "| a | b |" in text
        assert "| x | 1.50 |" in text

    def test_table_generators_render(self):
        t1 = gen_table1()
        assert "Matrix Multiplication" in t1
        t2 = gen_table2()
        assert "JiaJia API (subset)" in t2
        assert "lines/call" in t2


class TestRunUntilWithProcesses:
    def test_bounded_run_resumes_cleanly(self, engine):
        from repro.sim.process import SimProcess

        stamps = []

        def body(proc):
            for _ in range(4):
                proc.hold(1.0)
                stamps.append(proc.now)

        SimProcess(engine, body).start()
        engine.run(until=2.5)
        assert stamps == [1.0, 2.0]
        engine.run()
        assert stamps == [1.0, 2.0, 3.0, 4.0]
