"""Synchronization Management module (§4.2).

Locks and barriers optimized for the base architecture (they delegate to the
substrate, which uses native OS primitives on SMP, remote atomics on SCI,
and manager messages on SW-DSM), plus the *mechanisms* programming models
need to build their own constructs: dynamic lock-id allocation, condition
variables, and counting semaphores.

Conditions and semaphores are built from HAMSTER primitives (locks + the
cluster-control messaging), exactly the "implementable on top" layering the
paper prescribes for model-specific constructs.

Every blocking service follows the twin-kernel convention of
:mod:`repro.sim.process`: the ``*_g`` generator kernel holds the logic and
the blocking method trampolines it, so both process backends execute
identical synchronization sequences.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core.monitoring import ModuleStats
from repro.errors import SynchronizationError
from repro.sim.process import PARK

__all__ = ["SyncMgmt", "ConditionVar", "Semaphore"]

#: Lock ids below this are reserved for applications that index locks
#: directly (the JiaJia convention of a fixed lock array).
DYNAMIC_LOCK_BASE = 1 << 16


class ConditionVar:
    """Cross-rank condition variable bound to a HAMSTER lock.

    Waiters park at a manager rank (cond id mod n_procs); signal/broadcast
    travel as active messages. Follows POSIX semantics: ``wait`` atomically
    releases the bound lock and re-acquires it before returning.
    """

    def __init__(self, sync: "SyncMgmt", cond_id: int, lock_id: int) -> None:
        self.sync = sync
        self.cond_id = cond_id
        self.lock_id = lock_id
        #: waiting simulated processes, manager-side, FIFO
        self._waiters: List[object] = []

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Wait for a signal; returns False on timeout, True otherwise."""
        return self.sync._h.engine.kernel(self.wait_g(timeout))

    def wait_g(self, timeout: Optional[float] = None):
        """Generator kernel of :meth:`wait` (``yield from`` it)."""
        sync = self.sync
        yield from sync._h.charge_call_g()
        sync.stats.incr("cond_waits")
        proc = sync._h.engine.require_process()
        self._waiters.append(proc)
        timed_out = [False]
        if timeout is not None:
            entry = proc

            def fire() -> None:
                if entry in self._waiters:
                    self._waiters.remove(entry)
                    timed_out[0] = True
                    entry.wake()

            sync._h.engine.schedule(timeout, fire)
        yield from sync.unlock_g(self.lock_id)
        yield PARK
        yield from sync.lock_g(self.lock_id)
        return not timed_out[0]

    def signal(self) -> None:
        return self.sync._h.engine.kernel(self.signal_g())

    def signal_g(self):
        """Generator kernel of :meth:`signal` (``yield from`` it)."""
        yield from self.sync._h.charge_call_g()
        self.sync.stats.incr("cond_signals")
        self.sync._cond_kick(self, broadcast=False)

    def broadcast(self) -> None:
        return self.sync._h.engine.kernel(self.broadcast_g())

    def broadcast_g(self):
        """Generator kernel of :meth:`broadcast` (``yield from`` it)."""
        yield from self.sync._h.charge_call_g()
        self.sync.stats.incr("cond_signals")
        self.sync._cond_kick(self, broadcast=True)


class Semaphore:
    """Cross-rank counting semaphore built on a lock + condition."""

    def __init__(self, sync: "SyncMgmt", sem_id: int, value: int = 0) -> None:
        if value < 0:
            raise SynchronizationError("semaphore value must be >= 0")
        self.sync = sync
        self.sem_id = sem_id
        self.value = value
        self._lock_id = sync.new_lock()
        self._cond = sync.new_condition(self._lock_id)

    def acquire(self) -> None:
        return self.sync._h.engine.kernel(self.acquire_g())

    def acquire_g(self):
        """Generator kernel of :meth:`acquire` (``yield from`` it)."""
        yield from self.sync.lock_g(self._lock_id)
        try:
            while self.value == 0:
                yield from self._cond.wait_g()
            self.value -= 1
        finally:
            yield from self.sync.unlock_g(self._lock_id)

    def release(self, n: int = 1) -> None:
        return self.sync._h.engine.kernel(self.release_g(n))

    def release_g(self, n: int = 1):
        """Generator kernel of :meth:`release` (``yield from`` it)."""
        yield from self.sync.lock_g(self._lock_id)
        try:
            self.value += n
            for _ in range(n):
                yield from self._cond.signal_g()
        finally:
            yield from self.sync.unlock_g(self._lock_id)


class SyncMgmt:
    """Lock/barrier services + construction mechanisms."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.stats = ModuleStats("sync")
        self._lock_ids = itertools.count(DYNAMIC_LOCK_BASE)
        self._cond_ids = itertools.count(1)
        self._held: Dict[int, List[int]] = {}  # rank -> stack of held lock ids

    # ----------------------------------------------------------------- locks
    def new_lock(self) -> int:
        """Allocate a fresh global lock id."""
        self._h.charge_call()
        self.stats.incr("locks_created")
        return next(self._lock_ids)

    def lock(self, lock_id: int) -> None:
        """Acquire a global lock (with the substrate's acquire semantics)."""
        return self._h.engine.kernel(self.lock_g(lock_id))

    def lock_g(self, lock_id: int):
        """Generator kernel of :meth:`lock` (``yield from`` it)."""
        engine = self._h.engine
        with engine.obs.span("svc.lock", lock=lock_id):
            yield from self._h.charge_call_g()
            self.stats.incr("lock_acquires")
            sharing = engine.sharing
            if sharing.enabled:
                t0 = engine.now
                yield from self.dsm.lock_g(lock_id)
                rank = self.dsm.current_rank()
                sharing.lock_acquired(lock_id, rank, t0, engine.now)
                self._held.setdefault(rank, []).append(lock_id)
            else:
                yield from self.dsm.lock_g(lock_id)
                self._held.setdefault(self.dsm.current_rank(), []).append(lock_id)

    def try_lock(self, lock_id: int) -> bool:
        """Non-blocking lock attempt; True on success."""
        return self._h.engine.kernel(self.try_lock_g(lock_id))

    def try_lock_g(self, lock_id: int):
        """Generator kernel of :meth:`try_lock` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("lock_tries")
        if (yield from self.dsm.try_lock_g(lock_id)):
            self._held.setdefault(self.dsm.current_rank(), []).append(lock_id)
            return True
        return False

    def unlock(self, lock_id: int) -> None:
        """Release a global lock (with release consistency semantics)."""
        return self._h.engine.kernel(self.unlock_g(lock_id))

    def unlock_g(self, lock_id: int):
        """Generator kernel of :meth:`unlock` (``yield from`` it)."""
        engine = self._h.engine
        with engine.obs.span("svc.unlock", lock=lock_id):
            yield from self._h.charge_call_g()
            self.stats.incr("lock_releases")
            rank = self.dsm.current_rank()
            held = self._held.get(rank, [])
            if lock_id not in held:
                raise SynchronizationError(
                    f"rank {rank} releasing lock {lock_id} it does not hold")
            held.remove(lock_id)
            yield from self.dsm.unlock_g(lock_id)
            if engine.sharing.enabled:
                # Hold time ends after the release's consistency actions
                # (flush + manager handoff) — that is what the next waiter
                # actually experiences.
                engine.sharing.lock_released(lock_id, rank, engine.now)

    def held_locks(self, rank: Optional[int] = None) -> List[int]:
        if rank is None:
            rank = self.dsm.current_rank()
        return list(self._held.get(rank, ()))

    # --------------------------------------------------------------- barrier
    def barrier(self) -> None:
        """Global barrier with barrier consistency."""
        return self._h.engine.kernel(self.barrier_g())

    def barrier_g(self):
        """Generator kernel of :meth:`barrier` (``yield from`` it)."""
        engine = self._h.engine
        with engine.obs.span("svc.barrier"):
            yield from self._h.charge_call_g()
            self.stats.incr("barriers")
            sharing = engine.sharing
            if sharing.enabled:
                rank = self.dsm.current_rank()
                t0 = engine.now
                yield from self.dsm.barrier_g()
                sharing.barrier(rank, t0, engine.now)
            else:
                yield from self.dsm.barrier_g()

    # ------------------------------------------------------------ conditions
    def new_condition(self, lock_id: int) -> ConditionVar:
        """Create a condition variable bound to ``lock_id``."""
        self._h.charge_call()
        self.stats.incr("conds_created")
        return ConditionVar(self, next(self._cond_ids), lock_id)

    def _cond_kick(self, cond: ConditionVar, broadcast: bool) -> None:
        # The waker holds the bound lock, so manipulating the waiter list is
        # race-free; wakeups are scheduled so waiters resume after the waker
        # releases the lock.
        if broadcast:
            waiters, cond._waiters = cond._waiters, []
        else:
            waiters = [cond._waiters.pop(0)] if cond._waiters else []
        for proc in waiters:
            proc.wake()

    # ------------------------------------------------------------ semaphores
    def new_semaphore(self, value: int = 0) -> Semaphore:
        self._h.charge_call()
        self.stats.incr("semaphores_created")
        return Semaphore(self, next(self._cond_ids), value)
