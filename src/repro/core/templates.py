"""Standard startup/initialization templates (§4.4).

Initialization splits into (a) internal initialization of the shared-memory
model's support mechanisms and (b) external cluster configuration/startup.
HAMSTER ships reusable templates for both; every programming-model layer's
``*_init`` reduces to one of these.

SPMD main functions may be plain callables or generator functions; the
latter run stackless under the generator process backend (see
:mod:`repro.sim.process`) and reach blocking services through the
:class:`SpmdEnv` ``*_g`` shortcuts (``yield from env.barrier_g()``).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.process import SimProcess

__all__ = ["SpmdEnv", "spmd_startup", "model_startup"]


class SpmdEnv:
    """Per-task handle passed to SPMD main functions.

    Bundles the HAMSTER runtime with the task's identity and the most
    common service shortcuts — the "more user-friendly abstraction for most
    HAMSTER services" the SPMD model exports (§5.2).
    """

    def __init__(self, hamster, rank: int, proc: SimProcess) -> None:
        self.hamster = hamster
        self.rank = rank
        self.proc = proc

    # ------------------------------------------------------------ shortcuts
    @property
    def n_ranks(self) -> int:
        return self.hamster.n_ranks

    def barrier(self) -> None:
        self.hamster.sync.barrier()

    def barrier_g(self):
        """Generator kernel of :meth:`barrier` (``yield from`` it)."""
        return self.hamster.sync.barrier_g()

    def lock(self, lock_id: int) -> None:
        self.hamster.sync.lock(lock_id)

    def lock_g(self, lock_id: int):
        """Generator kernel of :meth:`lock` (``yield from`` it)."""
        return self.hamster.sync.lock_g(lock_id)

    def unlock(self, lock_id: int) -> None:
        self.hamster.sync.unlock(lock_id)

    def unlock_g(self, lock_id: int):
        """Generator kernel of :meth:`unlock` (``yield from`` it)."""
        return self.hamster.sync.unlock_g(lock_id)

    def alloc_array(self, shape, dtype=float, name: str = "", **kw):
        """Collective allocation: all ranks call together, all receive the
        same shared array (global allocation with an implicit barrier)."""
        return self.hamster.memory.alloc_array_collective(
            shape, dtype=dtype, name=name, **kw)

    def alloc_array_g(self, shape, dtype=float, name: str = "", **kw):
        """Generator kernel of :meth:`alloc_array` (``yield from`` it)."""
        return self.hamster.memory.alloc_array_collective_g(
            shape, dtype=dtype, name=name, **kw)

    def compute(self, flops: float) -> None:
        """Charge application computation on this task's node."""
        node = self.hamster.cluster.node(self.hamster.dsm.node_of(self.rank))
        node.compute(flops)

    def compute_g(self, flops: float):
        """Generator kernel of :meth:`compute` (``yield from`` it)."""
        node = self.hamster.cluster.node(self.hamster.dsm.node_of(self.rank))
        return node.compute_g(flops)

    def wtime(self) -> float:
        return self.hamster.timing.wtime()


def spmd_startup(hamster, main: Callable, args: tuple = (),
                 ranks: Optional[Sequence[int]] = None) -> List[Any]:
    """External-startup template: launch ``main(env, *args)`` on each rank,
    run the simulation to completion, return per-rank results.

    Mirrors the unified startup of §3.3 (the SCI-VM-style script-based
    remote execution with unified node configuration): tasks are created
    from the launcher context (outside any simulated process) and the
    virtual cluster runs until all tasks exit.
    """
    if hamster.engine.current_process is not None:
        raise ConfigurationError(
            "spmd_startup is the job launcher; call it from outside the "
            "simulation (use TaskMgmt.spawn_local for in-job task creation)")
    rank_list = list(ranks) if ranks is not None else list(range(hamster.n_ranks))
    main_is_gen = inspect.isgeneratorfunction(main)
    handles = []
    for rank in rank_list:
        def body(env_rank: int = rank):
            # The generator-function variant keeps run() itself a generator
            # function, so the process runs stackless under the generator
            # backend (a plain wrapper would force a backing thread).
            if main_is_gen:
                def run(proc: SimProcess):
                    hamster.dsm.bind_task(proc, env_rank)
                    env = SpmdEnv(hamster, env_rank, proc)
                    return (yield from main(env, *args))
            else:
                def run(proc: SimProcess) -> Any:
                    hamster.dsm.bind_task(proc, env_rank)
                    env = SpmdEnv(hamster, env_rank, proc)
                    return main(env, *args)
            return run
        proc = SimProcess(hamster.engine, body(), name=f"spmd.r{rank}")
        handles.append(proc)
        proc.start()
    hamster.engine.run()
    return [p.result for p in handles]


def model_startup(hamster, setup: Optional[Callable] = None) -> None:
    """Internal-initialization template: programming-model layers call this
    once to set up their support mechanisms (handlers, registries) before
    tasks start. ``setup(hamster)`` runs in launcher context."""
    hamster.check_ready()
    if setup is not None:
        setup(hamster)
