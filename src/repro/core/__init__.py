"""The HAMSTER core: five orthogonal service modules (§4.2) plus
cross-cutting monitoring (§4.3) and timing services, bundled by the
:class:`~repro.core.hamster.Hamster` runtime.

* :class:`~repro.core.memory_mgmt.MemoryMgmt` — global allocation,
  distribution annotations, coherence constraints, capability probing.
* :class:`~repro.core.consistency_mgmt.ConsistencyMgmt` — the consistency
  API (§4.5) over :mod:`repro.consistency`.
* :class:`~repro.core.sync_mgmt.SyncMgmt` — locks, barriers, condition
  variables, semaphores, parameterizable per target API.
* :class:`~repro.core.task_mgmt.TaskMgmt` — SPMD task model + integration
  mechanisms for native thread services.
* :class:`~repro.core.cluster_ctrl.ClusterControl` — node identity,
  configuration queries, and the user-visible external messaging layer.

Every module maintains its own statistics counters with independent query/
reset services (programming-model-independent monitoring, §4.3), and every
service entry charges the HAMSTER per-call overhead that Figure 2 measures.
"""

from repro.core.cluster_ctrl import ClusterControl
from repro.core.consistency_mgmt import ConsistencyMgmt
from repro.core.hamster import Hamster
from repro.core.memory_mgmt import MemoryMgmt
from repro.core.monitoring import ModuleStats
from repro.core.sync_mgmt import SyncMgmt
from repro.core.task_mgmt import TaskMgmt
from repro.core.timing import TimingServices

__all__ = [
    "Hamster",
    "MemoryMgmt",
    "ConsistencyMgmt",
    "SyncMgmt",
    "TaskMgmt",
    "ClusterControl",
    "ModuleStats",
    "TimingServices",
]
