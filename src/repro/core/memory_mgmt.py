"""Memory Management module (§4.2).

Services for global allocation and distribution. Users may attach
distribution annotations and coherence constraints to any allocation; a
capability test routine probes the underlying shared memory system for the
coherence schemes and placement policies it supports.

Every service follows the twin-kernel convention of
:mod:`repro.sim.process`: the ``*_g`` generator kernel holds the logic
(allocation itself is host-side; only the service-call overhead and the
collective rendezvous barrier cost virtual time) and the blocking method
trampolines it through :meth:`Engine.kernel`.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.monitoring import ModuleStats
from repro.errors import CapabilityError
from repro.memory.address_space import Region
from repro.memory.layout import Distribution
from repro.memory.shared_array import SharedArray

__all__ = ["MemoryMgmt"]


class MemoryMgmt:
    """Global memory allocation/distribution services."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.stats = ModuleStats("memory")
        # Collective-allocation rendezvous: per-rank call counters + the
        # shared step -> result table (first arriver allocates).
        self._coll_seq: dict = {}
        self._coll_results: dict = {}

    # ---------------------------------------------------------- allocation
    def alloc(self, nbytes: int, name: str = "",
              distribution: Optional[Distribution] = None,
              coherence: Optional[str] = None) -> Region:
        """Globally allocate ``nbytes``.

        ``coherence`` optionally names a required coherence scheme
        (``"scope"``, ``"release"``, ...); the call fails with
        :class:`CapabilityError` if the subsystem cannot accommodate it —
        "as long as the subsystem can accommodate the given parameters".
        """
        return self._h.engine.kernel(
            self.alloc_g(nbytes, name=name, distribution=distribution,
                         coherence=coherence))

    def alloc_g(self, nbytes: int, name: str = "",
                distribution: Optional[Distribution] = None,
                coherence: Optional[str] = None):
        """Generator kernel of :meth:`alloc` (``yield from`` it)."""
        with self._h.engine.obs.span("svc.alloc", bytes=nbytes, name=name):
            yield from self._h.charge_call_g()
            if coherence is not None:
                yield from self.require_g(f"consistency:{coherence}")
            region = self.dsm.allocate(nbytes, name=name,
                                       distribution=distribution)
            self.stats.incr("allocations")
            self.stats.incr("allocated_bytes", region.size)
            return region

    def alloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                    name: str = "", distribution: Optional[Distribution] = None,
                    coherence: Optional[str] = None) -> SharedArray:
        """Allocate a typed shared array (the common application path)."""
        return self._h.engine.kernel(
            self.alloc_array_g(shape, dtype=dtype, name=name,
                               distribution=distribution, coherence=coherence))

    def alloc_array_g(self, shape: Sequence[int], dtype: Any = np.float64,
                      name: str = "",
                      distribution: Optional[Distribution] = None,
                      coherence: Optional[str] = None):
        """Generator kernel of :meth:`alloc_array` (``yield from`` it)."""
        with self._h.engine.obs.span("svc.alloc", name=name):
            yield from self._h.charge_call_g()
            if coherence is not None:
                yield from self.require_g(f"consistency:{coherence}")
            arr = self.dsm.make_array(shape, dtype=dtype, name=name,
                                      distribution=distribution)
            self.stats.incr("allocations")
            self.stats.incr("allocated_bytes", arr.region.size)
            return arr

    # ------------------------------------------------- collective allocation
    def _collective_g(self, make_g):
        """Synchronous allocation involving all ranks (§5.2): every rank
        calls, exactly one allocates, all receive the same object, and the
        rendezvous carries an implicit barrier — the "overhead costs for a
        consistency model that is not always required" the paper contrasts
        with TreadMarks' single-node allocation.

        ``make_g`` is a zero-argument callable returning the allocation
        kernel (a generator) for the rank that ends up allocating.
        """
        rank = self.dsm.current_rank()
        seq = self._coll_seq.get(rank, 0)
        self._coll_seq[rank] = seq + 1
        if seq not in self._coll_results:
            self._coll_results[seq] = yield from make_g()
        yield from self._h.sync.barrier_g()
        return self._coll_results[seq]

    def alloc_collective(self, nbytes: int, name: str = "",
                         distribution: Optional[Distribution] = None,
                         coherence: Optional[str] = None) -> Region:
        """Collective form of :meth:`alloc` — all ranks call together and
        receive the same region (jia_alloc/HLRC-style global allocation)."""
        return self._h.engine.kernel(
            self.alloc_collective_g(nbytes, name=name,
                                    distribution=distribution,
                                    coherence=coherence))

    def alloc_collective_g(self, nbytes: int, name: str = "",
                           distribution: Optional[Distribution] = None,
                           coherence: Optional[str] = None):
        """Generator kernel of :meth:`alloc_collective` (``yield from`` it)."""
        return self._collective_g(
            lambda: self.alloc_g(nbytes, name=name, distribution=distribution,
                                 coherence=coherence))

    def alloc_array_collective(self, shape: Sequence[int], dtype: Any = np.float64,
                               name: str = "",
                               distribution: Optional[Distribution] = None,
                               coherence: Optional[str] = None) -> SharedArray:
        """Collective form of :meth:`alloc_array`."""
        return self._h.engine.kernel(
            self.alloc_array_collective_g(shape, dtype=dtype, name=name,
                                          distribution=distribution,
                                          coherence=coherence))

    def alloc_array_collective_g(self, shape: Sequence[int],
                                 dtype: Any = np.float64, name: str = "",
                                 distribution: Optional[Distribution] = None,
                                 coherence: Optional[str] = None):
        """Generator kernel of :meth:`alloc_array_collective`."""
        return self._collective_g(
            lambda: self.alloc_array_g(shape, dtype=dtype, name=name,
                                       distribution=distribution,
                                       coherence=coherence))

    def free(self, target) -> None:
        """Release a :class:`Region` or :class:`SharedArray`."""
        return self._h.engine.kernel(self.free_g(target))

    def free_g(self, target):
        """Generator kernel of :meth:`free` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        region = target.region if isinstance(target, SharedArray) else target
        self.dsm.free(region)
        self.stats.incr("frees")

    # ---------------------------------------------------------- capability
    def capabilities(self) -> frozenset:
        """Probe the underlying memory subsystem (§4.2 capability test)."""
        return self._h.engine.kernel(self.capabilities_g())

    def capabilities_g(self):
        """Generator kernel of :meth:`capabilities` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("capability_probes")
        return self.dsm.capabilities()

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities()

    def supports_g(self, capability: str):
        """Generator kernel of :meth:`supports` (``yield from`` it)."""
        return capability in (yield from self.capabilities_g())

    def require(self, capability: str) -> None:
        if not self.supports(capability):
            raise CapabilityError(
                f"memory subsystem {self.dsm.kind!r} does not support "
                f"{capability!r}; available: {sorted(self.dsm.capabilities())}")

    def require_g(self, capability: str):
        """Generator kernel of :meth:`require` (``yield from`` it)."""
        if not (yield from self.supports_g(capability)):
            raise CapabilityError(
                f"memory subsystem {self.dsm.kind!r} does not support "
                f"{capability!r}; available: {sorted(self.dsm.capabilities())}")

    # ------------------------------------------------------------- queries
    def allocator_stats(self) -> dict:
        a = self.dsm.allocator
        return {
            "allocated_bytes": a.allocated_bytes,
            "peak_bytes": a.peak_bytes,
            "free_bytes": a.free_bytes(),
            "fragmentation": a.fragmentation(),
            "n_allocs": a.n_allocs,
            "n_frees": a.n_frees,
        }

    def access_stats(self, rank: Optional[int] = None) -> dict:
        """Per-rank DSM access statistics (monitoring feed)."""
        return self.dsm.stats(rank)

    def reset_access_stats(self) -> None:
        self.dsm.reset_stats()
