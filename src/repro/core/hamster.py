"""The HAMSTER runtime: one object bundling the five service modules over a
chosen platform (Figure 1's middle layers).

Construction is usually through :func:`repro.config.ClusterConfig.build` —
"only the configuration is changed between experiments; the actual codes
are not modified" (§5.4). The runtime also owns the per-service-call
overhead accounting that Figure 2 measures: every HAMSTER service entry
charges a small, constant CPU cost on the calling task's node.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.cluster_ctrl import ClusterControl
from repro.core.consistency_mgmt import ConsistencyMgmt
from repro.core.memory_mgmt import MemoryMgmt
from repro.core.monitoring import MonitoringRegistry
from repro.core.sync_mgmt import SyncMgmt
from repro.core.task_mgmt import TaskMgmt
from repro.core.timing import TimingServices
from repro.errors import ConfigurationError

__all__ = ["Hamster"]


class Hamster:
    """The assembled HAMSTER middleware instance."""

    def __init__(self, cluster, dsm, fabric=None, call_overhead: Optional[float] = None) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.params = cluster.params
        self.dsm = dsm
        self.fabric = fabric
        #: per-service-call CPU cost (None -> platform default)
        self.call_overhead = (call_overhead if call_overhead is not None
                              else self.params.hamster_call_overhead)
        self.monitoring = MonitoringRegistry()
        # The five modules (§4.2). Cluster Control first: it provides
        # services the other modules may use during their own setup.
        self.cluster_ctl = ClusterControl(self)
        self.memory = MemoryMgmt(self)
        self.consistency = ConsistencyMgmt(self)
        self.sync = SyncMgmt(self)
        self.task = TaskMgmt(self)
        self.timing = TimingServices(self.engine)
        for mod in (self.cluster_ctl, self.memory, self.consistency,
                    self.sync, self.task):
            self.monitoring._modules[mod.stats.module] = mod.stats

    # ---------------------------------------------------------- accounting
    def charge_call(self) -> None:
        """Charge one HAMSTER service-call overhead to the calling task.

        Calls made outside any task context (test fixtures, startup code)
        are free — they model the job launcher, not measured execution.
        """
        return self.engine.kernel(self.charge_call_g())

    def charge_call_g(self):
        """Generator kernel of :meth:`charge_call` (``yield from`` it)."""
        proc = self.engine.current_process
        if proc is None or self.call_overhead <= 0:
            return
        rank = self.dsm._task_rank.get(proc.pid)
        if rank is None:
            return
        yield from self.cluster.node(
            self.dsm.node_of(rank)).cpu_time_g(self.call_overhead)

    # ------------------------------------------------------------- startup
    def run_spmd(self, main: Callable, args: tuple = (),
                 ranks: Optional[Sequence[int]] = None) -> List[Any]:
        """Standard SPMD startup template (§4.4): spawn ``main(env, rank)``
        on every rank, run the simulation to completion, return the per-rank
        results in rank order.

        ``main`` receives an :class:`SpmdEnv` handle exposing this runtime
        plus its own rank — the shape every programming-model layer's
        startup reduces to.
        """
        from repro.core.templates import spmd_startup

        return spmd_startup(self, main, args=args, ranks=ranks)

    # -------------------------------------------------------------- queries
    @property
    def n_ranks(self) -> int:
        return self.dsm.n_procs

    def platform_description(self) -> str:
        net = self.cluster.kind
        return f"{self.dsm.kind} DSM on {net} ({self.cluster.n_nodes} nodes, {self.n_ranks} ranks)"

    def query_statistics(self) -> dict:
        """Snapshot of all module counters + per-rank DSM statistics
        (the monitoring tour of §4.3)."""
        stats = self.monitoring.query_all()
        stats["dsm"] = {f"rank{r}": self.dsm.stats(r) for r in range(self.n_ranks)}
        return stats

    def reset_statistics(self) -> None:
        self.monitoring.reset_all()
        self.dsm.reset_stats()

    def check_ready(self) -> None:
        if self.dsm is None or self.cluster is None:
            raise ConfigurationError("HAMSTER instance missing substrate")
