"""Consistency Management module (§4.2, §4.5).

Exposes the HAMSTER consistency API: selection among optimized
implementations of all widely used models (:mod:`repro.consistency`),
scope-based acquire/release services, explicit fences, and the model
compatibility queries programming-model implementers use when matching a
target API's semantics to the substrate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.consistency import MODELS, ConsistencyModel, can_host, get_model, strength
from repro.core.monitoring import ModuleStats
from repro.errors import ConsistencyError

__all__ = ["ConsistencyMgmt"]


class ConsistencyMgmt:
    """Consistency services + model selection."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.stats = ModuleStats("consistency")
        self._models: Dict[str, ConsistencyModel] = {}
        self._active = self.dsm.consistency_model()
        if self._active not in MODELS:
            # Substrates may report hardware model names outside the API's
            # registry; fall back to release consistency.
            self._active = "release"

    # ------------------------------------------------------------ selection
    def supported_models(self) -> List[str]:
        self._h.charge_call()
        return sorted(MODELS)

    def native_model(self) -> str:
        """The substrate's own consistency model."""
        self._h.charge_call()
        return self.dsm.consistency_model()

    def can_host(self, program_model: str) -> bool:
        """Does the substrate guarantee ``program_model`` without extra
        enforcement? (§4.5 weaker-onto-stronger rule.)"""
        self._h.charge_call()
        return can_host(self.dsm.consistency_model(), program_model)

    def use(self, model_name: str) -> ConsistencyModel:
        """Select (and cache) the optimized implementation of a model."""
        self._h.charge_call()
        if model_name not in self._models:
            self._models[model_name] = get_model(model_name, self.dsm)
            self.stats.incr("models_instantiated")
        self._active = model_name
        return self._models[model_name]

    def active(self) -> ConsistencyModel:
        if self._active not in self._models:
            self._models[self._active] = get_model(self._active, self.dsm)
        return self._models[self._active]

    # ------------------------------------------------------------ operations
    def acquire(self, scope: int) -> None:
        """Enter a consistency scope under the active model."""
        return self._h.engine.kernel(self.acquire_g(scope))

    def acquire_g(self, scope: int):
        """Generator kernel of :meth:`acquire` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("acquires")
        yield from self.active().acquire_g(scope)

    def release(self, scope: int) -> None:
        """Leave a consistency scope under the active model."""
        return self._h.engine.kernel(self.release_g(scope))

    def release_g(self, scope: int):
        """Generator kernel of :meth:`release` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("releases")
        yield from self.active().release_g(scope)

    def fence(self) -> None:
        """Full consistency point: all of this rank's writes become
        globally fetchable."""
        return self._h.engine.kernel(self.fence_g())

    def fence_g(self):
        """Generator kernel of :meth:`fence` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("fences")
        yield from self.active().fence_g()

    def strength_of(self, model_name: str) -> int:
        return strength(model_name)

    def check_model(self, model_name: str) -> None:
        if model_name not in MODELS:
            raise ConsistencyError(
                f"unknown consistency model {model_name!r}; "
                f"known: {sorted(MODELS)}")
