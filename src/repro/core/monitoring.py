"""Generalized performance monitoring (§4.3).

Each HAMSTER module owns a :class:`ModuleStats` instance: an independent set
of named counters with query and reset services. Statistics are maintained
by the framework itself, independent of what the underlying architecture
provides, so the same counters exist on every platform — the property that
enables architecture- and programming-model-independent tool support.

Consumers (the paper's three scenarios): applications may query directly,
run-time systems may drive dynamic optimization, and external monitors may
attach via :meth:`ModuleStats.subscribe`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["ModuleStats", "MonitoringRegistry"]


class ModuleStats:
    """Named counters for one module, with query/reset services."""

    def __init__(self, module: str) -> None:
        self.module = module
        self._counters: Dict[str, float] = {}
        self._subscribers: List[Callable[[str, str, float], None]] = []

    # ------------------------------------------------------------- updates
    def incr(self, counter: str, amount: float = 1) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + amount
        for cb in self._subscribers:
            cb(self.module, counter, self._counters[counter])

    def observe(self, counter: str, value: float) -> None:
        """Track a max-style observation (high-water marks)."""
        self._counters[counter] = max(self._counters.get(counter, value), value)

    # ------------------------------------------------------------- queries
    def query(self, counter: Optional[str] = None):
        """One counter's value, or a snapshot dict of all of them."""
        if counter is not None:
            return self._counters.get(counter, 0)
        return dict(self._counters)

    def reset(self, counter: Optional[str] = None) -> None:
        if counter is not None:
            self._counters.pop(counter, None)
        else:
            self._counters.clear()

    # ---------------------------------------------------------- attachment
    def subscribe(self, callback: Callable[[str, str, float], None]) -> None:
        """Attach an external monitoring system; called on every update."""
        self._subscribers.append(callback)


class MonitoringRegistry:
    """All modules' statistics, queryable as one tree (tool support)."""

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleStats] = {}

    def module(self, name: str) -> ModuleStats:
        if name not in self._modules:
            self._modules[name] = ModuleStats(name)
        return self._modules[name]

    def query_all(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.query() for name, stats in self._modules.items()}

    def reset_all(self) -> None:
        for stats in self._modules.values():
            stats.reset()
