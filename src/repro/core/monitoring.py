"""Generalized performance monitoring (§4.3).

Each HAMSTER module owns a :class:`ModuleStats` instance: an independent set
of named counters with query and reset services. Statistics are maintained
by the framework itself, independent of what the underlying architecture
provides, so the same counters exist on every platform — the property that
enables architecture- and programming-model-independent tool support.

Consumers (the paper's three scenarios): applications may query directly,
run-time systems may drive dynamic optimization, and external monitors may
attach via :meth:`ModuleStats.subscribe`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["ModuleStats", "MonitoringRegistry"]


class ModuleStats:
    """Named counters for one module, with query/reset services."""

    def __init__(self, module: str) -> None:
        self.module = module
        self._counters: Dict[str, float] = {}
        #: per-counter observation aggregates: [count, sum, min, max]
        self._observed: Dict[str, List[float]] = {}
        self._subscribers: List[Callable[[str, str, float], None]] = []

    # ------------------------------------------------------------- updates
    def incr(self, counter: str, amount: float = 1) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + amount
        for cb in self._subscribers:
            cb(self.module, counter, self._counters[counter])

    def observe(self, counter: str, value: float) -> None:
        """Record one observation of a distribution-style metric.

        The full count/sum/min/max aggregate is kept (see
        :meth:`query_stats`); :meth:`query` keeps returning the high-water
        mark, the historical behaviour every existing consumer relies on.
        """
        agg = self._observed.get(counter)
        if agg is None:
            self._observed[counter] = [1, value, value, value]
        else:
            agg[0] += 1
            agg[1] += value
            if value < agg[2]:
                agg[2] = value
            if value > agg[3]:
                agg[3] = value
        # Exactly the historical high-water-mark semantics for query().
        self._counters[counter] = max(self._counters.get(counter, value), value)

    # ------------------------------------------------------------- queries
    def query(self, counter: Optional[str] = None):
        """One counter's value, or a snapshot dict of all of them.

        For observed counters the value is the maximum seen (backward
        compatible); use :meth:`query_stats` for the full aggregate.
        """
        if counter is not None:
            return self._counters.get(counter, 0)
        return dict(self._counters)

    def query_stats(self, counter: Optional[str] = None):
        """Full aggregate of an observed counter: a dict with ``count``,
        ``sum``, ``min``, ``max``, and ``mean`` keys — or, with no argument,
        that dict for every observed counter."""
        if counter is None:
            return {name: self.query_stats(name) for name in self._observed}
        agg = self._observed.get(counter)
        if agg is None:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        count, total, low, high = agg
        return {"count": int(count), "sum": total, "min": low, "max": high,
                "mean": total / count if count else 0.0}

    def reset(self, counter: Optional[str] = None) -> None:
        if counter is not None:
            self._counters.pop(counter, None)
            self._observed.pop(counter, None)
        else:
            self._counters.clear()
            self._observed.clear()

    # ---------------------------------------------------------- attachment
    def subscribe(self, callback: Callable[[str, str, float], None]) -> None:
        """Attach an external monitoring system; called on every update."""
        self._subscribers.append(callback)


class MonitoringRegistry:
    """All modules' statistics, queryable as one tree (tool support)."""

    def __init__(self) -> None:
        self._modules: Dict[str, ModuleStats] = {}

    def module(self, name: str) -> ModuleStats:
        if name not in self._modules:
            self._modules[name] = ModuleStats(name)
        return self._modules[name]

    def query_all(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.query() for name, stats in self._modules.items()}

    def reset_all(self) -> None:
        for stats in self._modules.values():
            stats.reset()
