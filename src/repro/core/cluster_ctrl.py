"""Cluster Control module (§4.2).

Manages cluster configuration: node identification, node-parameter queries,
and the simple messaging layer used for initialization — which HAMSTER also
exposes to the user for external messaging (the coalesced channel of §3.3).
Unlike the other modules, Cluster Control also serves the *other modules*:
the messaging fabric it owns carries DSM, lock, and forwarding traffic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.monitoring import ModuleStats
from repro.errors import ConfigurationError, MessagingError
from repro.msg.active_messages import Reply
from repro.msg.coalesce import MessagingFabric
from repro.sim.resources import SimQueue

__all__ = ["ClusterControl"]


class ClusterControl:
    """Node identity, configuration queries, and user messaging."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.cluster = hamster.cluster
        self.fabric: Optional[MessagingFabric] = hamster.fabric
        self.stats = ModuleStats("cluster")
        self._user_queues: Dict[int, SimQueue] = {}
        self._registry: Dict[str, Any] = {}  # rank-0-hosted name service
        if self.fabric is not None:
            chan = self.fabric.channel("cc")
            chan.register_all("usermsg", lambda nid: self._h_usermsg)
            chan.register_all("reg.put", lambda nid: self._h_reg_put)
            chan.register_all("reg.get", lambda nid: self._h_reg_get)
            self._chan = chan
        else:
            self._chan = None

    # -------------------------------------------------------------- identity
    def my_node(self) -> int:
        """Cluster node hosting the calling task."""
        self._h.charge_call()
        return self.dsm.node_of(self.dsm.current_rank())

    def n_nodes(self) -> int:
        self._h.charge_call()
        return self.cluster.n_nodes

    def n_ranks(self) -> int:
        self._h.charge_call()
        return self.dsm.n_procs

    def node_params(self, node_id: Optional[int] = None) -> Dict[str, Any]:
        """Query a node's parameters (CPU count, clock, interconnect kind)."""
        self._h.charge_call()
        if node_id is None:
            node_id = self.my_node()
        node = self.cluster.node(node_id)
        self.stats.incr("param_queries")
        return {
            "node_id": node.node_id,
            "n_cpus": node.n_cpus,
            "cpu_hz": self._h.params.cpu_hz,
            "page_size": self._h.params.page_size,
            "interconnect": self.cluster.kind,
            "dsm": self.dsm.kind,
        }

    # --------------------------------------------------------- user messaging
    def _user_queue(self, rank: int) -> SimQueue:
        if rank not in self._user_queues:
            self._user_queues[rank] = SimQueue(self._h.engine, name=f"cc.user{rank}")
        return self._user_queues[rank]

    def send_msg(self, dst_rank: int, payload: Any, size: int = 64) -> None:
        """External user message to another rank over the unified channel."""
        self._h.charge_call()
        self.stats.incr("user_msgs_sent")
        if not (0 <= dst_rank < self.dsm.n_procs):
            raise MessagingError(f"rank {dst_rank} out of range")
        src_rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(src_rank) == self.dsm.node_of(dst_rank):
            # Same node (or no network at all): in-memory delivery.
            self._user_queue(dst_rank).put((src_rank, payload))
            return
        self._chan.post(self.dsm.node_of(src_rank), self.dsm.node_of(dst_rank),
                        "usermsg", payload={"dst": dst_rank, "src": src_rank,
                                            "data": payload}, size=size)

    def recv_msg(self) -> Any:
        """Blocking receive of the next user message: ``(src_rank, payload)``."""
        self._h.charge_call()
        self.stats.incr("user_msgs_received")
        return self._user_queue(self.dsm.current_rank()).get()

    def _h_usermsg(self, msg) -> None:
        self._user_queue(msg.payload["dst"]).put(
            (msg.payload["src"], msg.payload["data"]))
        return None

    # ----------------------------------------------------------- name service
    def publish(self, key: str, value: Any) -> None:
        """Publish a key/value pair visible cluster-wide (initialization
        helper — e.g. TreadMarks allocation-data distribution)."""
        self._h.charge_call()
        self.stats.incr("registry_puts")
        rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(rank) == self.dsm.node_of(0):
            self._registry[key] = value
            return
        self._chan.rpc(self.dsm.node_of(rank), self.dsm.node_of(0), "reg.put",
                       payload={"key": key, "value": value}, size=64)

    def lookup(self, key: str) -> Any:
        """Fetch a published value (raises if missing)."""
        self._h.charge_call()
        self.stats.incr("registry_gets")
        rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(rank) == self.dsm.node_of(0):
            return self._lookup_local(key)
        return self._chan.rpc(self.dsm.node_of(rank), self.dsm.node_of(0),
                              "reg.get", payload=key, size=32)

    def _lookup_local(self, key: str) -> Any:
        try:
            return self._registry[key]
        except KeyError:
            raise ConfigurationError(f"no published value for key {key!r}") from None

    def _h_reg_put(self, msg) -> Reply:
        self._registry[msg.payload["key"]] = msg.payload["value"]
        return Reply(payload=True, size=8)

    def _h_reg_get(self, msg) -> Reply:
        return Reply(payload=self._lookup_local(msg.payload), size=64)
