"""Cluster Control module (§4.2).

Manages cluster configuration: node identification, node-parameter queries,
and the simple messaging layer used for initialization — which HAMSTER also
exposes to the user for external messaging (the coalesced channel of §3.3).
Unlike the other modules, Cluster Control also serves the *other modules*:
the messaging fabric it owns carries DSM, lock, and forwarding traffic.

Cluster Control additionally owns **failure detection** (S17): a
:class:`FailureDetector` runs one heartbeat process per node plus a
suspect/confirm protocol on a monitor node. Liveness is queryable through
:meth:`ClusterControl.node_alive` / :meth:`ClusterControl.suspected_nodes` /
:meth:`ClusterControl.failed_nodes`, and every detector transition feeds the
``cluster`` :class:`~repro.core.monitoring.ModuleStats` — so external
monitors observe suspects and failures through the ordinary §4.3 hooks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.monitoring import ModuleStats
from repro.errors import ConfigurationError, MessagingError, NodeFailedError
from repro.msg.active_messages import Reply
from repro.msg.coalesce import MessagingFabric
from repro.sim.process import SimProcess
from repro.sim.resources import SimQueue

__all__ = ["ClusterControl", "FailureDetector"]


class FailureDetector:
    """Heartbeat-based liveness tracking with suspect/confirm semantics.

    Every node runs a daemon heartbeat process that beats once per
    ``interval`` toward a monitor node. Heartbeats are tiny out-of-band
    control frames: they pay wire latency (and are subject to the active
    fault plan's losses, partitions, and crashes) but charge no CPU and do
    not contend with application traffic — so attaching a detector never
    perturbs application timing.

    The monitor marks a node **suspected** after ``suspect_after`` silent
    intervals and **confirmed failed** after ``confirm_after``; a suspect
    that beats again is cleared (transient loss or a quick restart), a
    confirmation is final. On confirmation the detector tells the messaging
    layer (pending RPCs to the node fail typed) and, with
    ``abort_on_confirm``, aborts the whole run with
    :class:`~repro.errors.NodeFailedError` — a crash is *reported*, never a
    hang.

    The detector shuts itself down when the application finishes, and also
    when the simulation goes quiet (no non-detector events at all for
    ``quiet_ticks`` checks) — so a run that deadlocks for application
    reasons still drains to the ordinary ``DeadlockError`` instead of being
    kept alive forever by heartbeat traffic.
    """

    def __init__(self, hamster, interval: float = 2e-3,
                 suspect_after: int = 3, confirm_after: int = 8,
                 abort_on_confirm: bool = True, monitor_node: int = 0,
                 quiet_ticks: int = 5) -> None:
        if interval <= 0:
            raise ConfigurationError("heartbeat interval must be positive")
        if not (0 < suspect_after < confirm_after):
            raise ConfigurationError(
                "need 0 < suspect_after < confirm_after heartbeat intervals")
        self.hamster = hamster
        self.engine = hamster.engine
        self.cluster = hamster.cluster
        self.network = hamster.cluster.network
        if self.network is None:
            raise ConfigurationError(
                "failure detection needs a networked platform (SMP nodes "
                "cannot lose heartbeats)")
        self.stats: ModuleStats = hamster.cluster_ctl.stats
        self.interval = interval
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        self.abort_on_confirm = abort_on_confirm
        self.monitor_node = monitor_node
        self.quiet_ticks = quiet_ticks
        n = self.cluster.n_nodes
        self._last_seen: List[float] = [0.0] * n
        self._suspected: set = set()
        self._confirmed: set = set()
        self._senders: List[SimProcess] = []
        self._in_flight = 0
        self._quiet = 0
        self._stopped = False
        self.started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "FailureDetector":
        """Launch the per-node heartbeat processes and the monitor tick.
        Call from launcher context, before the SPMD run."""
        if self.started:
            return self
        self.started = True
        for node_id in range(self.cluster.n_nodes):
            if node_id == self.monitor_node:
                continue
            proc = SimProcess(self.engine, self._sender, args=(node_id,),
                              name=f"hb.n{node_id}", daemon=True)
            proc.start()
            self._senders.append(proc)
        self.engine.schedule(self.interval, self._tick)
        return self

    def stop(self) -> None:
        """Stop beating and checking; parked senders exit at their next
        wakeup, letting the event queue drain naturally."""
        self._stopped = True

    # ------------------------------------------------------------ heartbeat
    def _sender(self, proc: SimProcess, node_id: int):
        # Generator body: stackless under the generator backend, so a
        # 1024-node detector costs 1023 frames, not 1023 OS threads.
        while not self._stopped:
            yield self.interval
            if self._stopped:
                return
            self._beat(node_id)

    def _beat(self, node_id: int) -> None:
        self.stats.incr("heartbeats_sent")
        faults = getattr(self.network, "faults", None)
        now = self.engine.now
        if faults is not None and faults.heartbeat_lost(
                node_id, self.monitor_node, now):
            self.stats.incr("heartbeats_lost")
            return
        self._in_flight += 1
        self.engine.schedule(self.network.latency,
                             lambda n=node_id: self._deliver(n))

    def _deliver(self, node_id: int) -> None:
        self._in_flight -= 1
        self._last_seen[node_id] = self.engine.now
        if node_id in self._suspected:
            self._suspected.discard(node_id)
            self.stats.incr("nodes_recovered")
            self.engine.trace.emit("hb.recover", node=node_id)

    # -------------------------------------------------------------- monitor
    def _infra_pending(self) -> int:
        """Events in the engine queue that belong to the detector itself:
        one parked hold per live sender plus in-flight heartbeat frames.
        (The tick's own event has already been popped when this runs.)"""
        return sum(1 for p in self._senders if p.alive) + self._in_flight

    def _tick(self) -> None:
        if self._stopped:
            return
        engine = self.engine
        now = engine.now
        for node_id in range(self.cluster.n_nodes):
            if node_id == self.monitor_node or node_id in self._confirmed:
                continue
            age = now - self._last_seen[node_id]
            if age > self.confirm_after * self.interval:
                self._confirm(node_id, now)
            elif (age > self.suspect_after * self.interval
                  and node_id not in self._suspected):
                self._suspected.add(node_id)
                self.stats.incr("nodes_suspected")
                engine.trace.emit("hb.suspect", node=node_id, silent_for=age)
        if self._stopped:
            return  # _confirm aborted the run
        # -------------------------------------------------- self-shutdown
        app_alive = any(p.alive and not p.daemon for p in engine._processes)
        if not app_alive:
            self.stop()
            return
        if len(engine._queue) <= self._infra_pending():
            self._quiet += 1
            if self._quiet >= self.quiet_ticks:
                self.stop()  # app is wedged; let DeadlockError surface
                return
        else:
            self._quiet = 0
        engine.schedule(self.interval, self._tick)

    def _confirm(self, node_id: int, now: float) -> None:
        self._suspected.discard(node_id)
        self._confirmed.add(node_id)
        self.stats.incr("nodes_failed")
        self.engine.trace.emit("hb.confirm", node=node_id)
        exc = NodeFailedError(node_id, "heartbeats stopped", detected_at=now)
        fabric = self.hamster.fabric
        if fabric is not None:
            fabric.layer.mark_node_failed(node_id, exc)
        if self.abort_on_confirm:
            self.stop()
            self.engine._report_exception(exc)

    # -------------------------------------------------------------- queries
    def alive(self, node_id: int) -> bool:
        return node_id not in self._confirmed

    def suspected(self) -> List[int]:
        return sorted(self._suspected)

    def confirmed(self) -> List[int]:
        return sorted(self._confirmed)

    def status(self) -> Dict[str, Any]:
        return {"suspected": self.suspected(), "failed": self.confirmed(),
                "interval": self.interval,
                "heartbeats_sent": self.stats.query("heartbeats_sent"),
                "heartbeats_lost": self.stats.query("heartbeats_lost")}


class ClusterControl:
    """Node identity, configuration queries, and user messaging."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.cluster = hamster.cluster
        self.fabric: Optional[MessagingFabric] = hamster.fabric
        self.stats = ModuleStats("cluster")
        self.detector: Optional[FailureDetector] = None
        self._user_queues: Dict[int, SimQueue] = {}
        self._registry: Dict[str, Any] = {}  # rank-0-hosted name service
        if self.fabric is not None:
            chan = self.fabric.channel("cc")
            chan.register_all("usermsg", lambda nid: self._h_usermsg)
            chan.register_all("reg.put", lambda nid: self._h_reg_put)
            chan.register_all("reg.get", lambda nid: self._h_reg_get)
            self._chan = chan
        else:
            self._chan = None

    # -------------------------------------------------------------- identity
    def my_node(self) -> int:
        """Cluster node hosting the calling task."""
        return self._h.engine.kernel(self.my_node_g())

    def my_node_g(self):
        """Generator kernel of :meth:`my_node` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        return self.dsm.node_of(self.dsm.current_rank())

    def n_nodes(self) -> int:
        return self._h.engine.kernel(self.n_nodes_g())

    def n_nodes_g(self):
        """Generator kernel of :meth:`n_nodes` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        return self.cluster.n_nodes

    def n_ranks(self) -> int:
        return self._h.engine.kernel(self.n_ranks_g())

    def n_ranks_g(self):
        """Generator kernel of :meth:`n_ranks` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        return self.dsm.n_procs

    def node_params(self, node_id: Optional[int] = None) -> Dict[str, Any]:
        """Query a node's parameters (CPU count, clock, interconnect kind)."""
        return self._h.engine.kernel(self.node_params_g(node_id))

    def node_params_g(self, node_id: Optional[int] = None):
        """Generator kernel of :meth:`node_params` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        if node_id is None:
            node_id = yield from self.my_node_g()
        node = self.cluster.node(node_id)
        self.stats.incr("param_queries")
        return {
            "node_id": node.node_id,
            "n_cpus": node.n_cpus,
            "cpu_hz": self._h.params.cpu_hz,
            "page_size": self._h.params.page_size,
            "interconnect": self.cluster.kind,
            "dsm": self.dsm.kind,
        }

    # ------------------------------------------------------ failure detection
    def start_failure_detection(self, interval: float = 2e-3,
                                suspect_after: int = 3,
                                confirm_after: int = 8,
                                abort_on_confirm: bool = True,
                                monitor_node: int = 0) -> FailureDetector:
        """Attach and start a :class:`FailureDetector` (idempotent)."""
        if self.detector is None:
            self.detector = FailureDetector(
                self._h, interval=interval, suspect_after=suspect_after,
                confirm_after=confirm_after,
                abort_on_confirm=abort_on_confirm,
                monitor_node=monitor_node)
            self.detector.start()
        return self.detector

    def node_alive(self, node_id: int) -> bool:
        """Liveness query: ``False`` only for confirmed-failed nodes.

        Without a detector every node is presumed alive (the paper's
        healthy-cluster assumption)."""
        if not (0 <= node_id < self.cluster.n_nodes):
            raise ConfigurationError(f"node {node_id} out of range")
        return self.detector is None or self.detector.alive(node_id)

    def suspected_nodes(self) -> List[int]:
        return [] if self.detector is None else self.detector.suspected()

    def failed_nodes(self) -> List[int]:
        return [] if self.detector is None else self.detector.confirmed()

    # --------------------------------------------------------- user messaging
    def _user_queue(self, rank: int) -> SimQueue:
        if rank not in self._user_queues:
            self._user_queues[rank] = SimQueue(self._h.engine, name=f"cc.user{rank}")
        return self._user_queues[rank]

    def send_msg(self, dst_rank: int, payload: Any, size: int = 64) -> None:
        """External user message to another rank over the unified channel."""
        return self._h.engine.kernel(self.send_msg_g(dst_rank, payload, size))

    def send_msg_g(self, dst_rank: int, payload: Any, size: int = 64):
        """Generator kernel of :meth:`send_msg` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("user_msgs_sent")
        if not (0 <= dst_rank < self.dsm.n_procs):
            raise MessagingError(f"rank {dst_rank} out of range")
        src_rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(src_rank) == self.dsm.node_of(dst_rank):
            # Same node (or no network at all): in-memory delivery.
            self._user_queue(dst_rank).put((src_rank, payload))
            return
        yield from self._chan.post_g(
            self.dsm.node_of(src_rank), self.dsm.node_of(dst_rank),
            "usermsg", payload={"dst": dst_rank, "src": src_rank,
                                "data": payload}, size=size)

    def recv_msg(self) -> Any:
        """Blocking receive of the next user message: ``(src_rank, payload)``."""
        return self._h.engine.kernel(self.recv_msg_g())

    def recv_msg_g(self):
        """Generator kernel of :meth:`recv_msg` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("user_msgs_received")
        return (yield from self._user_queue(self.dsm.current_rank()).get_g())

    def _h_usermsg(self, msg) -> None:
        self._user_queue(msg.payload["dst"]).put(
            (msg.payload["src"], msg.payload["data"]))
        return None

    # ----------------------------------------------------------- name service
    def publish(self, key: str, value: Any) -> None:
        """Publish a key/value pair visible cluster-wide (initialization
        helper — e.g. TreadMarks allocation-data distribution)."""
        return self._h.engine.kernel(self.publish_g(key, value))

    def publish_g(self, key: str, value: Any):
        """Generator kernel of :meth:`publish` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("registry_puts")
        rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(rank) == self.dsm.node_of(0):
            self._registry[key] = value
            return
        yield from self._chan.rpc_g(
            self.dsm.node_of(rank), self.dsm.node_of(0), "reg.put",
            payload={"key": key, "value": value}, size=64)

    def lookup(self, key: str) -> Any:
        """Fetch a published value (raises if missing)."""
        return self._h.engine.kernel(self.lookup_g(key))

    def lookup_g(self, key: str):
        """Generator kernel of :meth:`lookup` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        self.stats.incr("registry_gets")
        rank = self.dsm.current_rank()
        if self._chan is None or self.dsm.node_of(rank) == self.dsm.node_of(0):
            return self._lookup_local(key)
        return (yield from self._chan.rpc_g(
            self.dsm.node_of(rank), self.dsm.node_of(0),
            "reg.get", payload=key, size=32))

    def _lookup_local(self, key: str) -> Any:
        try:
            return self._registry[key]
        except KeyError:
            raise ConfigurationError(f"no published value for key {key!r}") from None

    def _h_reg_put(self, msg) -> Reply:
        self._registry[msg.payload["key"]] = msg.payload["value"]
        return Reply(payload=True, size=8)

    def _h_reg_get(self, msg) -> Reply:
        return Reply(payload=self._lookup_local(msg.payload), size=64)
