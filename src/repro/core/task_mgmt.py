"""Task Management module (§4.2).

HAMSTER's inherent task model is SPMD: one task per rank, started together.
This module deliberately does *not* define a new thread API (that would
impose semantics); instead it provides the mechanisms programming models use
to integrate native thread services: local task spawning on a rank, join,
task identity queries, and task-exit hooks. Thread-API layers (POSIX/Win32
models) add command *forwarding* on top via the messaging primitives — see
:mod:`repro.models.forwarding`.

Task bodies may be plain callables (thread-backed under every engine
backend) or generator functions (stackless under the generator backend,
thread-trampolined under the thread backend) — both receive identical
bind/unbind and exit-hook treatment. Blocking services follow the
twin-kernel convention of :mod:`repro.sim.process`.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.core.monitoring import ModuleStats
from repro.errors import TaskError
from repro.sim.process import SimProcess

__all__ = ["TaskMgmt", "TaskHandle"]


class TaskHandle:
    """Identity of one task managed by the Task Management module."""

    def __init__(self, tid: int, rank: int, proc: SimProcess) -> None:
        self.tid = tid
        self.rank = rank
        self.proc = proc

    @property
    def alive(self) -> bool:
        return self.proc.alive

    @property
    def result(self) -> Any:
        return self.proc.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskHandle {self.tid} rank={self.rank}>"


class TaskMgmt:
    """SPMD task model + thread-service integration mechanisms."""

    def __init__(self, hamster) -> None:
        self._h = hamster
        self.dsm = hamster.dsm
        self.stats = ModuleStats("task")
        self._tids = itertools.count(1)
        self._tasks: Dict[int, TaskHandle] = {}
        self._exit_hooks: List[Callable[[TaskHandle], None]] = []

    # -------------------------------------------------------------- identity
    def my_rank(self) -> int:
        """SPMD rank of the calling task."""
        return self._h.engine.kernel(self.my_rank_g())

    def my_rank_g(self):
        """Generator kernel of :meth:`my_rank` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        return self.dsm.current_rank()

    def n_tasks(self) -> int:
        """Width of the SPMD job."""
        return self._h.engine.kernel(self.n_tasks_g())

    def n_tasks_g(self):
        """Generator kernel of :meth:`n_tasks` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        return self.dsm.n_procs

    def my_task(self) -> Optional[TaskHandle]:
        proc = self._h.engine.require_process()
        for handle in self._tasks.values():
            if handle.proc is proc:
                return handle
        return None

    # ------------------------------------------------------------- spawning
    def spawn_local(self, rank: int, fn: Callable, args: tuple = (),
                    name: str = "") -> TaskHandle:
        """Start a new task bound to ``rank`` (on that rank's node).

        This is the integration point for thread creation: the POSIX/Win32
        model layers forward create-requests to the target rank and call
        this there. The spawn cost of the native OS thread service is
        charged on the target node. A generator-function ``fn`` runs
        stackless under the generator backend.
        """
        return self._h.engine.kernel(self.spawn_local_g(rank, fn, args, name))

    def spawn_local_g(self, rank: int, fn: Callable, args: tuple = (),
                      name: str = ""):
        """Generator kernel of :meth:`spawn_local` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        tid = next(self._tids)
        node = self._h.cluster.node(self.dsm.node_of(rank))
        handle = self._make_task(tid, rank, fn, args, name)
        self.stats.incr("tasks_spawned")
        # OS thread-creation cost on the hosting node, charged to the
        # spawning task when one is running (startup spawns are free —
        # they model the job launcher, not application work).
        if self._h.engine.current_process is not None:
            yield from node.cpu_time_g(self._h.params.task_spawn_cost)
        handle.proc.start()
        return handle

    def _make_task(self, tid: int, rank: int, fn: Callable, args: tuple,
                   name: str) -> TaskHandle:
        # Both body shapes perform the same bind/unbind + exit-hook
        # bookkeeping; only the execution style differs (see module docs).
        if inspect.isgeneratorfunction(fn):
            def body(proc: SimProcess):
                self.dsm.bind_task(proc, rank)
                try:
                    return (yield from fn(*args))
                finally:
                    self._task_exited(proc, tid)
        else:
            def body(proc: SimProcess) -> Any:
                self.dsm.bind_task(proc, rank)
                try:
                    return fn(*args)
                finally:
                    self._task_exited(proc, tid)

        proc = SimProcess(self._h.engine, body,
                          name=name or f"task{tid}@r{rank}")
        handle = TaskHandle(tid, rank, proc)
        self._tasks[tid] = handle
        return handle

    def _task_exited(self, proc: SimProcess, tid: int) -> None:
        self.dsm.unbind_task(proc)
        handle = self._tasks.get(tid)
        if handle is not None:
            for hook in self._exit_hooks:
                hook(handle)

    def join(self, handle_or_tid) -> Any:
        """Wait for a task to finish; returns its result."""
        return self._h.engine.kernel(self.join_g(handle_or_tid))

    def join_g(self, handle_or_tid):
        """Generator kernel of :meth:`join` (``yield from`` it)."""
        yield from self._h.charge_call_g()
        handle = self._resolve(handle_or_tid)
        self.stats.incr("joins")
        me = self._h.engine.require_process()
        return (yield from me.join_g(handle.proc))

    def task(self, tid: int) -> TaskHandle:
        return self._resolve(tid)

    def _resolve(self, handle_or_tid) -> TaskHandle:
        if isinstance(handle_or_tid, TaskHandle):
            return handle_or_tid
        try:
            return self._tasks[handle_or_tid]
        except KeyError:
            raise TaskError(f"unknown task id {handle_or_tid}") from None

    def live_tasks(self) -> List[TaskHandle]:
        return [h for h in self._tasks.values() if h.alive]

    # ----------------------------------------------------------------- hooks
    def on_exit(self, hook: Callable[[TaskHandle], None]) -> None:
        """Register a task-exit hook (model layers use this for cleanup)."""
        self._exit_hooks.append(hook)
