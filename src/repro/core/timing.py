"""Platform-independent timing services (§4.4).

The paper augments the HAMSTER interface with services independent of the
parallel environment, the prime example being application timing. In the
simulation these read the virtual clock, which is exactly what the
benchmarks report.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import HamsterError

__all__ = ["TimingServices", "PhaseTimer"]


class PhaseTimer:
    """Accumulating start/stop timer for one named application phase."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self.total = 0.0
        self.count = 0
        self._started_at: Optional[float] = None

    def start(self) -> None:
        if self._started_at is not None:
            raise HamsterError("timer already running")
        self._started_at = self._clock()

    def stop(self) -> float:
        if self._started_at is None:
            raise HamsterError("timer is not running")
        elapsed = self._clock() - self._started_at
        self._started_at = None
        self.total += elapsed
        self.count += 1
        return elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None


class TimingServices:
    """Wall-clock and phase timing over the (virtual) platform clock."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self._phases: Dict[str, PhaseTimer] = {}

    def wtime(self) -> float:
        """Seconds of (virtual) wall-clock time — ``jia_wtime`` analogue."""
        return self.engine.now

    def phase(self, name: str) -> PhaseTimer:
        """Named accumulating timer (the LU all/core/barrier splits of
        Figures 2-4 are measured with these)."""
        if name not in self._phases:
            self._phases[name] = PhaseTimer(lambda: self.engine.now)
        return self._phases[name]

    def phase_totals(self) -> Dict[str, float]:
        return {name: t.total for name, t in self._phases.items()}

    def reset(self) -> None:
        self._phases.clear()
