"""Cluster configuration (§3.3, §5.4).

The paper's experiments switch platforms by changing *only a configuration
file* — identical application binaries run on SW-DSM, hybrid DSM, or the
SMP. :class:`ClusterConfig` is that file: it names the platform, the DSM,
the rank count, and the messaging arrangement, and :meth:`ClusterConfig.build`
assembles the full stack (engine → cluster → fabric → DSM → HAMSTER).

Configs come from three sources:

* :func:`preset` — the named configurations used throughout the evaluation
  (``"sw-dsm-4"``, ``"hybrid-4"``, ``"smp-2"``, ...),
* :func:`loads` / :func:`load` — INI-style text (the unified node
  configuration file of §3.3),
* direct construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.params import MachineParams, PAPER_PLATFORM
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

__all__ = ["ClusterConfig", "BuiltPlatform", "preset", "loads", "load", "PRESETS"]

_PLATFORMS = {"smp", "beowulf", "sci"}
_DSMS = {"smp", "jiajia", "scivm", "composite"}


@dataclass
class ClusterConfig:
    """One experiment's platform description."""

    #: hardware: "smp" | "beowulf" (Ethernet) | "sci"
    platform: str = "beowulf"
    #: memory system: "smp" | "jiajia" | "scivm"
    dsm: str = "jiajia"
    #: cluster nodes (or CPUs for the SMP platform)
    nodes: int = 4
    #: SPMD width; defaults to nodes
    ranks: Optional[int] = None
    #: coalesced HAMSTER messaging (True) vs stand-alone DSM stack (False)
    integrated_messaging: bool = True
    #: per-service-call overhead; None -> platform default, 0.0 for native
    #: (non-HAMSTER) bindings
    call_overhead: Optional[float] = None
    #: machine cost-parameter overrides
    param_overrides: Dict[str, Any] = field(default_factory=dict)
    #: enable simulation tracing
    trace: bool = False
    #: fault plan (S17): a :class:`repro.faults.FaultPlan`, a bare seed, or
    #: a plan dict; None (the default) leaves the network perfect and adds
    #: zero state or cost
    faults: Optional[Any] = None
    #: causal span recording (repro.obs). Off by default: the engine keeps
    #: the shared null observer and runs are bit-identical to an
    #: uninstrumented build; on, spans never charge virtual time either.
    observe: bool = False
    #: sharing-pattern analytics (repro.obs.sharing). Off by default: the
    #: engine keeps the shared null recorder and runs are bit-identical;
    #: on, recording is host-side only and never charges virtual time.
    sharing: bool = False
    #: time-series metrics sampling period in virtual seconds (None = off)
    metrics_interval: Optional[float] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.platform not in _PLATFORMS:
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; expected {sorted(_PLATFORMS)}")
        if self.dsm not in _DSMS:
            raise ConfigurationError(
                f"unknown dsm {self.dsm!r}; expected {sorted(_DSMS)}")
        if self.dsm == "smp" and self.platform != "smp":
            raise ConfigurationError("the smp memory system needs the smp platform")
        if self.dsm == "jiajia" and self.platform == "smp":
            raise ConfigurationError("JiaJia needs a networked platform")
        if self.dsm == "scivm" and self.platform != "sci":
            raise ConfigurationError("SCI-VM needs the sci platform")
        if self.dsm == "composite" and self.platform != "sci":
            raise ConfigurationError(
                "the composite DSM needs the sci platform (it hosts both the "
                "SW-DSM and the hybrid DSM on the SAN)")
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.faults is not None and self.platform == "smp":
            raise ConfigurationError(
                "fault injection needs a networked platform (the SMP bus "
                "does not lose messages)")
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got {self.metrics_interval}")

    # ----------------------------------------------------------------- build
    def params(self) -> MachineParams:
        base = PAPER_PLATFORM.with_overrides(
            coalesce_messaging=self.integrated_messaging)
        if self.param_overrides:
            base = base.with_overrides(**self.param_overrides)
        return base

    def build(self) -> "BuiltPlatform":
        """Assemble engine, cluster, fabric, DSM, and HAMSTER runtime."""
        from repro.core.hamster import Hamster
        from repro.dsm import make_dsm
        from repro.msg.coalesce import MessagingFabric

        params = self.params()
        engine = Engine(trace=Tracer(enabled=True) if self.trace else None)
        sharing = None
        if self.sharing:
            # Installed before the DSM is constructed so substrates can
            # attach their PageTable transition hooks at init time.
            from repro.obs.sharing import SharingRecorder

            sharing = SharingRecorder(engine)
            engine.sharing = sharing
        n_ranks = self.ranks if self.ranks is not None else self.nodes
        if self.platform == "smp":
            cluster = Cluster.smp(engine, n_cpus=max(self.nodes, n_ranks), params=params)
        elif self.platform == "beowulf":
            cluster = Cluster.beowulf(engine, self.nodes, params=params)
        else:
            cluster = Cluster.sci_cluster(engine, self.nodes, params=params)
        plan = injector = None
        if self.faults is not None:
            from repro.faults import FaultPlan, FaultyNetwork

            # Re-check here: `faults` may have been assigned after
            # construction, bypassing __post_init__.
            if cluster.network is None:
                raise ConfigurationError(
                    "fault injection needs a networked platform (the SMP "
                    "bus does not lose messages)")
            plan = FaultPlan.coerce(self.faults)
            injector = FaultyNetwork(cluster.network, plan)
        fabric = None
        if cluster.network is not None:
            fabric = MessagingFabric(cluster, integrated=self.integrated_messaging)
            if plan is not None and plan.active:
                fabric.layer.enable_reliability()
        if self.dsm == "composite":
            from repro.dsm.composite import CompositeMemorySystem
            from repro.dsm.jiajia import JiaJiaSystem
            from repro.dsm.scivm import SciVmSystem

            children = {
                "jiajia": JiaJiaSystem(cluster, fabric=fabric, n_procs=n_ranks),
                "scivm": SciVmSystem(cluster, fabric=fabric, n_procs=n_ranks),
            }
            dsm = CompositeMemorySystem(cluster, children, primary="jiajia")
        else:
            dsm = make_dsm(self.dsm, cluster, fabric=fabric, n_procs=n_ranks)
        hamster = Hamster(cluster, dsm, fabric=fabric,
                          call_overhead=self.call_overhead)
        if plan is not None and plan.heartbeat:
            hamster.cluster_ctl.start_failure_detection(
                interval=plan.heartbeat_interval)
        obs = metrics = None
        built = BuiltPlatform(config=self, engine=engine, cluster=cluster,
                              fabric=fabric, dsm=dsm, hamster=hamster,
                              faults=injector, sharing=sharing)
        if self.observe:
            from repro.obs import ObsRecorder

            obs = ObsRecorder(engine)
            engine.obs = obs
        if self.metrics_interval is not None:
            from repro.obs import MetricsSampler

            metrics = MetricsSampler(built, self.metrics_interval).start()
        built.obs = obs
        built.metrics = metrics
        return built

    # ------------------------------------------------------------------- io
    def to_text(self) -> str:
        """Serialize as the INI-style configuration file."""
        lines = ["[cluster]",
                 f"platform = {self.platform}",
                 f"nodes = {self.nodes}",
                 f"ranks = {self.ranks if self.ranks is not None else self.nodes}",
                 "",
                 "[hamster]",
                 f"dsm = {self.dsm}",
                 f"messaging = {'integrated' if self.integrated_messaging else 'separate'}"]
        if self.param_overrides:
            lines += ["", "[params]"]
            lines += [f"{k} = {v}" for k, v in sorted(self.param_overrides.items())]
        if self.faults is not None:
            import json as _json

            from repro.faults import FaultPlan

            plan = FaultPlan.coerce(self.faults)
            lines += ["", "[faults]",
                      f"plan = {_json.dumps(plan.to_dict(), sort_keys=True)}"]
        if self.observe or self.sharing or self.metrics_interval is not None:
            lines += ["", "[obs]", f"observe = {str(self.observe).lower()}"]
            if self.sharing:
                lines += ["sharing = true"]
            if self.metrics_interval is not None:
                lines += [f"metrics_interval = {self.metrics_interval}"]
        return "\n".join(lines) + "\n"


@dataclass
class BuiltPlatform:
    """Everything :meth:`ClusterConfig.build` assembled."""

    config: ClusterConfig
    engine: Engine
    cluster: Cluster
    fabric: Any
    dsm: Any
    hamster: Any
    #: the installed :class:`repro.faults.FaultyNetwork`, or None
    faults: Any = None
    #: the :class:`repro.obs.ObsRecorder` when built with ``observe=True``
    obs: Any = None
    #: the armed :class:`repro.obs.MetricsSampler` when built with a
    #: ``metrics_interval``
    metrics: Any = None
    #: the :class:`repro.obs.sharing.SharingRecorder` when built with
    #: ``sharing=True``
    sharing: Any = None


def loads(text: str) -> ClusterConfig:
    """Parse an INI-style configuration file (§3.3's unified node config)."""
    section = ""
    values: Dict[Tuple[str, str], str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().lower()
            continue
        if "=" not in line:
            raise ConfigurationError(f"config line {lineno}: expected 'key = value'")
        key, _, val = line.partition("=")
        values[(section, key.strip().lower())] = val.strip()

    def get(section: str, key: str, default: Optional[str] = None) -> Optional[str]:
        return values.get((section, key), default)

    platform = get("cluster", "platform", "beowulf")
    nodes = int(get("cluster", "nodes", "4"))
    ranks_s = get("cluster", "ranks")
    dsm = get("hamster", "dsm", "jiajia")
    messaging = get("hamster", "messaging", "integrated")
    if messaging not in ("integrated", "separate"):
        raise ConfigurationError(
            f"messaging must be 'integrated' or 'separate', got {messaging!r}")
    overrides: Dict[str, Any] = {}
    valid_params = {f.name for f in dataclasses.fields(MachineParams)}
    for (sec, key), val in values.items():
        if sec != "params":
            continue
        if key not in valid_params:
            raise ConfigurationError(f"unknown machine parameter {key!r}")
        current = getattr(PAPER_PLATFORM, key)
        if isinstance(current, bool):
            overrides[key] = val.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, int):
            overrides[key] = int(val)
        else:
            overrides[key] = float(val)
    faults = _parse_faults(values)
    obs_keys = {key for (sec, key) in values if sec == "obs"}
    unknown_obs = obs_keys - {"observe", "sharing", "metrics_interval"}
    if unknown_obs:
        raise ConfigurationError(f"unknown [obs] keys {sorted(unknown_obs)}")
    observe = (get("obs", "observe", "false") or "false").lower() in (
        "1", "true", "yes", "on")
    sharing = (get("obs", "sharing", "false") or "false").lower() in (
        "1", "true", "yes", "on")
    interval_s = get("obs", "metrics_interval")
    return ClusterConfig(platform=platform, dsm=dsm, nodes=nodes,
                         ranks=int(ranks_s) if ranks_s else None,
                         integrated_messaging=(messaging == "integrated"),
                         param_overrides=overrides, faults=faults,
                         observe=observe, sharing=sharing,
                         metrics_interval=float(interval_s) if interval_s else None)


def _parse_faults(values: Dict[Tuple[str, str], str]) -> Optional[Any]:
    """Build a fault plan from a ``[faults]`` section: either one ``plan``
    key holding the JSON form, or flat seed/rate/heartbeat keys."""
    items = {key: val for (sec, key), val in values.items() if sec == "faults"}
    if not items:
        return None
    from repro.faults import FaultPlan, LinkFaults

    if "plan" in items:
        if len(items) > 1:
            raise ConfigurationError(
                "[faults] 'plan' cannot be combined with other keys")
        return FaultPlan.loads(items["plan"])
    link_keys = {"drop_rate", "dup_rate", "delay_rate", "delay_min", "delay_max"}
    plan_keys = {"seed", "heartbeat", "heartbeat_interval"}
    unknown = set(items) - link_keys - plan_keys
    if unknown:
        raise ConfigurationError(f"unknown [faults] keys {sorted(unknown)}")
    link = LinkFaults(**{k: float(v) for k, v in items.items() if k in link_keys})
    return FaultPlan(
        seed=int(items.get("seed", "0")), link=link,
        heartbeat=items.get("heartbeat", "true").lower() in ("1", "true", "yes", "on"),
        heartbeat_interval=float(items.get("heartbeat_interval", "2e-3")))


def load(path: str) -> ClusterConfig:
    """Load a configuration file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())


#: The named platforms of the evaluation (§5). "native-jiajia-N" is the
#: unmodified-JiaJia baseline of Figure 2: direct DSM binding (no HAMSTER
#: per-call overhead) with its own separate messaging stack.
PRESETS: Dict[str, ClusterConfig] = {
    "smp-2": ClusterConfig(platform="smp", dsm="smp", nodes=2, name="smp-2"),
    "smp-4": ClusterConfig(platform="smp", dsm="smp", nodes=4, name="smp-4"),
    "sw-dsm-2": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=2, name="sw-dsm-2"),
    "sw-dsm-4": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=4, name="sw-dsm-4"),
    "hybrid-2": ClusterConfig(platform="sci", dsm="scivm", nodes=2, name="hybrid-2"),
    "hybrid-4": ClusterConfig(platform="sci", dsm="scivm", nodes=4, name="hybrid-4"),
    "native-jiajia-2": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=2,
                                     integrated_messaging=False, call_overhead=0.0,
                                     param_overrides={"hamster_fault_hook": 0.0,
                                                      "hamster_sync_hook": 0.0},
                                     name="native-jiajia-2"),
    "native-jiajia-4": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=4,
                                     integrated_messaging=False, call_overhead=0.0,
                                     param_overrides={"hamster_fault_hook": 0.0,
                                                      "hamster_sync_hook": 0.0},
                                     name="native-jiajia-4"),
    # ---------------------------------------------------------- scale axis
    # Large-cluster presets for the scaling-curve suite (`bench scaling`).
    # The paper's testbeds stop at 4 nodes; these extrapolate both fabrics
    # to commodity-cluster sizes. The SCI presets switch the ringlet into
    # the 2D-torus layout Dolphin used for large installations (width W on
    # a W*W torus), keeping per-hop latency identical to the small rings.
    "eth-64": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=64,
                            name="eth-64"),
    "eth-256": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=256,
                             name="eth-256"),
    "eth-1024": ClusterConfig(platform="beowulf", dsm="jiajia", nodes=1024,
                              name="eth-1024"),
    "sci-torus-64": ClusterConfig(platform="sci", dsm="scivm", nodes=64,
                                  param_overrides={"sci_torus_width": 8},
                                  name="sci-torus-64"),
    "sci-torus-256": ClusterConfig(platform="sci", dsm="scivm", nodes=256,
                                   param_overrides={"sci_torus_width": 16},
                                   name="sci-torus-256"),
    "sci-torus-1024": ClusterConfig(platform="sci", dsm="scivm", nodes=1024,
                                    param_overrides={"sci_torus_width": 32},
                                    name="sci-torus-1024"),
}


def preset(name: str) -> ClusterConfig:
    """Fetch a named evaluation configuration (returns a private copy)."""
    try:
        cfg = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}") from None
    return dataclasses.replace(cfg, param_overrides=dict(cfg.param_overrides))
