"""Exception hierarchy for the HAMSTER reproduction.

Every error raised by the framework derives from :class:`HamsterError` so
callers can catch framework failures with a single ``except`` clause while
still distinguishing the subsystem at fault.
"""

from __future__ import annotations


class HamsterError(Exception):
    """Base class for all framework errors."""


class SimulationError(HamsterError):
    """Raised for misuse of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    This is the simulated equivalent of a hung cluster: every remaining
    process is waiting on a lock, barrier, or message that can never arrive.
    """

    def __init__(self, blocked: list) -> None:
        names = ", ".join(sorted(str(p) for p in blocked))
        super().__init__(f"deadlock: event queue empty with blocked processes [{names}]")
        self.blocked = list(blocked)


class ConfigurationError(HamsterError):
    """Raised for invalid cluster configuration files or parameters."""


class MemoryError_(HamsterError):
    """Raised for global memory abstraction failures (bad address, OOM)."""


class AllocationError(MemoryError_):
    """Raised when a global allocation request cannot be satisfied."""


class ProtectionError(MemoryError_):
    """Raised when an access violates page protection in a way the DSM
    protocol cannot service (e.g. access to unmapped global memory)."""


class ConsistencyError(HamsterError):
    """Raised for invalid consistency-model operations (e.g. releasing a
    scope that was never acquired)."""


class SynchronizationError(HamsterError):
    """Raised for synchronization misuse (unlocking a free lock, barrier
    count mismatch)."""


class TaskError(HamsterError):
    """Raised for task-management failures (joining an unknown task)."""


class MessagingError(HamsterError):
    """Raised for messaging-layer failures (unknown handler, bad node)."""


#: Keep a handle on the builtin before we shadow it below, so our timeout
#: error also answers ``except TimeoutError`` written against the builtin.
_BuiltinTimeoutError = TimeoutError


class TimeoutError(MessagingError, _BuiltinTimeoutError):  # noqa: A001
    """Raised when a reliable message exhausts its retransmission budget
    without being acknowledged (see :mod:`repro.faults`). Also a subclass of
    the builtin ``TimeoutError`` for idiomatic ``except`` clauses."""


class NodeFailedError(MessagingError):
    """Raised when the failure detector confirms a node dead, or when a
    message is addressed to a node already confirmed dead.

    Carries ``node_id`` (the failed node) and ``detected_at`` (the virtual
    time of confirmation, when known).
    """

    def __init__(self, node_id: int, detail: str = "",
                 detected_at: "float | None" = None) -> None:
        msg = f"node {node_id} failed"
        if detected_at is not None:
            msg += f" (confirmed at t={detected_at:.6f}s)"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.node_id = node_id
        self.detected_at = detected_at


class ModelError(HamsterError):
    """Raised by programming-model layers for API misuse, mirroring the
    error codes the native APIs would return."""


class CapabilityError(HamsterError):
    """Raised when a requested capability (coherence scheme, distribution)
    is not supported by the underlying memory subsystem."""
