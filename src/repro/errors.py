"""Exception hierarchy for the HAMSTER reproduction.

Every error raised by the framework derives from :class:`HamsterError` so
callers can catch framework failures with a single ``except`` clause while
still distinguishing the subsystem at fault.
"""

from __future__ import annotations


class HamsterError(Exception):
    """Base class for all framework errors."""


class SimulationError(HamsterError):
    """Raised for misuse of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    This is the simulated equivalent of a hung cluster: every remaining
    process is waiting on a lock, barrier, or message that can never arrive.
    """

    def __init__(self, blocked: list) -> None:
        names = ", ".join(sorted(str(p) for p in blocked))
        super().__init__(f"deadlock: event queue empty with blocked processes [{names}]")
        self.blocked = list(blocked)


class ConfigurationError(HamsterError):
    """Raised for invalid cluster configuration files or parameters."""


class MemoryError_(HamsterError):
    """Raised for global memory abstraction failures (bad address, OOM)."""


class AllocationError(MemoryError_):
    """Raised when a global allocation request cannot be satisfied."""


class ProtectionError(MemoryError_):
    """Raised when an access violates page protection in a way the DSM
    protocol cannot service (e.g. access to unmapped global memory)."""


class ConsistencyError(HamsterError):
    """Raised for invalid consistency-model operations (e.g. releasing a
    scope that was never acquired)."""


class SynchronizationError(HamsterError):
    """Raised for synchronization misuse (unlocking a free lock, barrier
    count mismatch)."""


class TaskError(HamsterError):
    """Raised for task-management failures (joining an unknown task)."""


class MessagingError(HamsterError):
    """Raised for messaging-layer failures (unknown handler, bad node)."""


class ModelError(HamsterError):
    """Raised by programming-model layers for API misuse, mirroring the
    error codes the native APIs would return."""


class CapabilityError(HamsterError):
    """Raised when a requested capability (coherence scheme, distribution)
    is not supported by the underlying memory subsystem."""
