"""JiaJia API subset (Table 2, row 6).

The thinnest model layer: JiaJia's application interface maps almost one-to-
one onto HAMSTER services (6.1 lines/call in the paper). Applications from
the JiaJia benchmark suite run against this API on *any* platform; only the
cluster configuration changes (§5.4).

This module is the HAMSTER-bound implementation measured in Table 2. Its
native-binding twin (direct DSM calls, no HAMSTER core — the Figure 2
baseline) lives in :mod:`repro.models.native_jiajia` and exposes the byte-
identical method surface.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.memory.layout import Distribution
from repro.models.base import ProgrammingModel

__all__ = ["JiaJiaApi"]


class JiaJiaApi(ProgrammingModel):
    """jia_* calls over HAMSTER services."""

    MODEL_NAME = "JiaJia API (subset)"
    CONSISTENCY = "scope"
    API_CALLS = ("jia_init", "jia_exit", "jia_alloc", "jia_alloc_array",
                 "jia_lock", "jia_unlock", "jia_barrier", "jia_wtime")

    def jia_init(self) -> tuple:
        """Returns (jiapid, jiahosts) like the C globals."""
        with self._obs_span("jia_init"):
            return self._rank(), self._nranks()

    def jia_init_g(self):
        """Generator kernel of :meth:`jia_init` — non-blocking here, but
        part of the ``*_g`` surface both bindings share (the native twin
        charges per call, so its kernel does yield)."""
        return self.jia_init()
        yield  # unreachable; makes this a generator function

    def jia_exit(self) -> None:
        with self._obs_span("jia_exit"):
            self.hamster.sync.barrier()

    def jia_exit_g(self):
        """Generator kernel of :meth:`jia_exit` (``yield from`` it)."""
        with self._obs_span("jia_exit"):
            yield from self.hamster.sync.barrier_g()

    def jia_alloc(self, nbytes: int, distribution: Optional[Distribution] = None):
        """Global synchronous allocation across all hosts."""
        with self._obs_span("jia_alloc"):
            return self.hamster.memory.alloc_collective(
                nbytes, distribution=distribution)

    def jia_alloc_g(self, nbytes: int, distribution: Optional[Distribution] = None):
        """Generator kernel of :meth:`jia_alloc` (``yield from`` it)."""
        with self._obs_span("jia_alloc"):
            return (yield from self.hamster.memory.alloc_collective_g(
                nbytes, distribution=distribution))

    def jia_alloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                        name: str = "", distribution: Optional[Distribution] = None):
        with self._obs_span("jia_alloc_array"):
            return self.hamster.memory.alloc_array_collective(
                shape, dtype=dtype, name=name, distribution=distribution)

    def jia_alloc_array_g(self, shape: Sequence[int], dtype: Any = np.float64,
                          name: str = "",
                          distribution: Optional[Distribution] = None):
        """Generator kernel of :meth:`jia_alloc_array` (``yield from`` it)."""
        with self._obs_span("jia_alloc_array"):
            return (yield from self.hamster.memory.alloc_array_collective_g(
                shape, dtype=dtype, name=name, distribution=distribution))

    def jia_lock(self, lock_id: int) -> None:
        with self._obs_span("jia_lock"):
            self.hamster.sync.lock(lock_id)

    def jia_lock_g(self, lock_id: int):
        """Generator kernel of :meth:`jia_lock` (``yield from`` it)."""
        with self._obs_span("jia_lock"):
            yield from self.hamster.sync.lock_g(lock_id)

    def jia_unlock(self, lock_id: int) -> None:
        with self._obs_span("jia_unlock"):
            self.hamster.sync.unlock(lock_id)

    def jia_unlock_g(self, lock_id: int):
        """Generator kernel of :meth:`jia_unlock` (``yield from`` it)."""
        with self._obs_span("jia_unlock"):
            yield from self.hamster.sync.unlock_g(lock_id)

    def jia_barrier(self) -> None:
        with self._obs_span("jia_barrier"):
            self.hamster.sync.barrier()

    def jia_barrier_g(self):
        """Generator kernel of :meth:`jia_barrier` (``yield from`` it)."""
        with self._obs_span("jia_barrier"):
            yield from self.hamster.sync.barrier_g()

    def jia_wtime(self) -> float:
        return self.hamster.timing.wtime()

    def jia_wtime_g(self):
        """Generator kernel of :meth:`jia_wtime` (``yield from`` it)."""
        return self.jia_wtime()
        yield  # unreachable; makes this a generator function
