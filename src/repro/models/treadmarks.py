"""TreadMarks API (Table 2, row 4).

Almost every routine maps directly onto a HAMSTER service ("attesting to the
completeness of the HAMSTER design", §5.2). The exception the paper calls
out — the only routine implemented fully by hand — is the allocation-data
distribution: TreadMarks uses *single-node* allocation, so the allocating
process must explicitly deliver the resulting pointer to the other
processes (``Tmk_distribute``), instead of paying a global synchronous
allocation's implicit barrier on every malloc.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.memory.layout import single_home
from repro.models.base import ProgrammingModel

__all__ = ["TreadMarksApi"]


class TreadMarksApi(ProgrammingModel):
    """Tmk_* calls over HAMSTER services."""

    MODEL_NAME = "TreadMarks API"
    CONSISTENCY = "release"  # TreadMarks is lazy release consistency
    API_CALLS = ("Tmk_startup", "Tmk_exit", "Tmk_proc_id", "Tmk_nprocs",
                 "Tmk_malloc", "Tmk_malloc_array", "Tmk_free",
                 "Tmk_distribute", "Tmk_barrier",
                 "Tmk_lock_acquire", "Tmk_lock_release",
                 "Tmk_trylock", "Tmk_wtime")

    def Tmk_startup(self) -> None:
        """Process startup; a no-op beyond the template (already launched)."""
        self.hamster.sync.barrier()

    def Tmk_exit(self, status: int = 0) -> int:
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()
        return status

    def Tmk_proc_id(self) -> int:
        return self.hamster.task.my_rank()

    def Tmk_nprocs(self) -> int:
        return self.hamster.task.n_tasks()

    # ---------------------------------------------------------------- memory
    def Tmk_malloc(self, nbytes: int, name: str = ""):
        """Single-node allocation: only the caller allocates (pages homed
        here); no implicit barrier — the pointer must be Tmk_distribute'd."""
        return self.hamster.memory.alloc(
            nbytes, name=name, distribution=single_home(self._rank()))

    def Tmk_malloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                         name: str = ""):
        return self.hamster.memory.alloc_array(
            shape, dtype=dtype, name=name,
            distribution=single_home(self._rank()))

    def Tmk_free(self, target) -> None:
        self.hamster.memory.free(target)

    def Tmk_distribute(self, key: str, obj: Any = None) -> Any:
        """The hand-written routine (§5.2): deliver single-node allocation
        data to every process. The allocator passes the object; every other
        process passes ``None``; all receive the allocator's object.

        Built from cluster-control messaging + one barrier — nothing in the
        HAMSTER interface maps to it directly.
        """
        if obj is not None:
            self.hamster.cluster_ctl.publish(key, obj)
        self.hamster.sync.barrier()
        value = self.hamster.cluster_ctl.lookup(key)
        if value is None:
            raise ModelError(f"Tmk_distribute: nothing published under {key!r}")
        return value

    # ------------------------------------------------------- synchronization
    def Tmk_barrier(self, barrier_id: int = 0) -> None:
        self.hamster.sync.barrier()

    def Tmk_lock_acquire(self, lock_id: int) -> None:
        self.hamster.sync.lock(lock_id)

    def Tmk_lock_release(self, lock_id: int) -> None:
        self.hamster.sync.unlock(lock_id)

    def Tmk_trylock(self, lock_id: int) -> bool:
        return self.hamster.sync.try_lock(lock_id)

    def Tmk_wtime(self) -> float:
        return self.hamster.timing.wtime()
