"""OpenMP-flavoured model (extension beyond Table 2).

The paper's motivation names OpenMP as "the most notable effort" toward
shared-memory standardization (§1) but targets SMPs only; HAMSTER's pitch
is exactly that such a model could run on clusters too. This layer
delivers that: an OpenMP-style API — parallel-for with static/dynamic/
guided schedules, critical sections, typed reductions, single/master
regions, ordered loops — over HAMSTER services, portable to every
platform.

Not part of the Table 2 measurement set (the paper had not implemented it);
the Table 2 methodology still applies to it through
``repro.bench.loc_metrics.count_logical_lines`` if desired.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Optional

import numpy as np

from repro.errors import ModelError
from repro.models.base import ProgrammingModel

__all__ = ["OpenMpModel"]

#: reduction operator table (name -> (numpy fold, identity))
_REDUCTIONS = {
    "+": (np.add.reduce, 0.0),
    "*": (np.multiply.reduce, 1.0),
    "max": (np.maximum.reduce, -np.inf),
    "min": (np.minimum.reduce, np.inf),
}


class OpenMpModel(ProgrammingModel):
    """omp_* calls over HAMSTER services."""

    MODEL_NAME = "OpenMP-like model"
    CONSISTENCY = "release"
    API_CALLS = (
        "omp_get_thread_num", "omp_get_num_threads", "omp_in_parallel",
        "omp_parallel_for", "omp_schedule_static", "omp_schedule_dynamic",
        "omp_schedule_guided",
        "omp_critical", "omp_atomic_add",
        "omp_barrier", "omp_single", "omp_master", "omp_ordered",
        "omp_reduce", "omp_set_lock", "omp_unset_lock", "omp_init_lock",
        "omp_get_wtime", "omp_flush",
    )

    #: dynamic-schedule chunk size default
    DEFAULT_CHUNK = 8

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self._critical_lock = hamster.sync.new_lock()
        self._sched_lock = hamster.sync.new_lock()
        self._ordered_lock = hamster.sync.new_lock()
        #: shared dynamic-schedule cursors, step -> next index
        self._cursors: dict = {}
        self._steps = itertools.count()
        self._step_of_rank: dict = {}
        self._reduce_slots: dict = {}
        self._ordered_turn: dict = {}

    # -------------------------------------------------------------- identity
    def omp_get_thread_num(self) -> int:
        return self.hamster.task.my_rank()

    def omp_get_num_threads(self) -> int:
        return self.hamster.task.n_tasks()

    def omp_in_parallel(self) -> bool:
        """Always true under the SPMD task structure (the 'parallel region'
        is the whole program, as with OMP_PARALLEL at main)."""
        return self.omp_get_num_threads() > 1

    # ------------------------------------------------------------- schedules
    def omp_schedule_static(self, n: int, chunk: Optional[int] = None) -> List[range]:
        """This thread's index ranges under a static schedule."""
        me, width = self.omp_get_thread_num(), self.omp_get_num_threads()
        if chunk is None:
            per = (n + width - 1) // width
            lo = min(me * per, n)
            return [range(lo, min(lo + per, n))]
        return [range(start, min(start + chunk, n))
                for start in range(me * chunk, n, width * chunk)]

    def _shared_cursor_next(self, key, n: int, take: int) -> range:
        """Atomically claim ``take`` indices from a shared cursor."""
        self.hamster.sync.lock(self._sched_lock)
        try:
            start = self._cursors.get(key, 0)
            stop = min(start + take, n)
            self._cursors[key] = stop
            return range(start, stop)
        finally:
            self.hamster.sync.unlock(self._sched_lock)

    def omp_schedule_dynamic(self, n: int, chunk: int = DEFAULT_CHUNK
                             ) -> Iterable[range]:
        """Generator of index chunks under dynamic (work-stealing-ish)
        scheduling; all threads must iterate it inside the same phase."""
        key = self._phase_key(n, "dyn")
        while True:
            got = self._shared_cursor_next(key, n, chunk)
            if not got:
                return
            yield got

    def omp_schedule_guided(self, n: int, minimum: int = 4) -> Iterable[range]:
        """Guided schedule: chunks shrink as the iteration space drains."""
        key = self._phase_key(n, "gui")
        width = self.omp_get_num_threads()
        while True:
            self.hamster.sync.lock(self._sched_lock)
            try:
                start = self._cursors.get(key, 0)
                remaining = n - start
                if remaining <= 0:
                    return
                take = max(minimum, remaining // (2 * width))
                stop = min(start + take, n)
                self._cursors[key] = stop
            finally:
                self.hamster.sync.unlock(self._sched_lock)
            yield range(start, stop)

    def _phase_key(self, n: int, tag: str):
        """One shared cursor per (loop phase, tag): ranks entering their
        k-th scheduled loop share cursor k."""
        rank = self.omp_get_thread_num()
        count = self._step_of_rank.get((rank, tag), 0)
        self._step_of_rank[(rank, tag)] = count + 1
        return (tag, count, n)

    def omp_parallel_for(self, n: int, body: Callable[[int], None],
                         schedule: str = "static", chunk: Optional[int] = None
                         ) -> None:
        """Run ``body(i)`` for i in range(n) across all threads; implicit
        barrier at the end (as in OpenMP without nowait)."""
        if schedule == "static":
            spans = self.omp_schedule_static(n, chunk)
        elif schedule == "dynamic":
            spans = self.omp_schedule_dynamic(n, chunk or self.DEFAULT_CHUNK)
        elif schedule == "guided":
            spans = self.omp_schedule_guided(n)
        else:
            raise ModelError(f"unknown schedule {schedule!r}")
        for span in spans:
            for i in span:
                body(i)
        self.omp_barrier()

    # ---------------------------------------------------------------- blocks
    def omp_critical(self, body: Callable[[], Any]) -> Any:
        self.hamster.sync.lock(self._critical_lock)
        try:
            return body()
        finally:
            self.hamster.sync.unlock(self._critical_lock)

    def omp_atomic_add(self, array, index: Any, value: float) -> float:
        """Atomic `array[index] += value`; returns the new value."""
        def add():
            new = float(array[index]) + value
            array[index] = new
            self.hamster.consistency.fence()
            return new
        return self.omp_critical(add)

    def omp_barrier(self) -> None:
        self.hamster.sync.barrier()

    def omp_single(self, body: Callable[[], Any]) -> Any:
        """Exactly one thread executes; result broadcast; implicit barrier."""
        me = self.omp_get_thread_num()
        # Phase-keyed: every rank's k-th single region shares one slot.
        key = f"omp.single.{self._phase_key(0, 'single')[1]}"
        if me == 0:
            self.hamster.cluster_ctl.publish(key, body())
        self.omp_barrier()
        value = self.hamster.cluster_ctl.lookup(key)
        self.omp_barrier()
        return value

    def omp_master(self, body: Callable[[], Any]) -> Any:
        """Thread 0 executes; NO implicit barrier (as in OpenMP)."""
        if self.omp_get_thread_num() == 0:
            return body()
        return None

    def omp_ordered(self, iteration: int, total: int, body: Callable[[], Any]) -> Any:
        """Execute ``body`` in ascending ``iteration`` order across threads
        (the OMP ORDERED construct for a loop of ``total`` iterations)."""
        proc = self.hamster.engine.require_process()
        key = total
        while self._ordered_turn.get(key, 0) != iteration:
            proc.hold(2e-6)  # wait for our turn
        try:
            return body()
        finally:
            self._ordered_turn[key] = iteration + 1

    # ------------------------------------------------------------- reduction
    def omp_reduce(self, value: float, op: str = "+") -> float:
        """All-reduce a per-thread value; every thread returns the result."""
        if op not in _REDUCTIONS:
            raise ModelError(f"unknown reduction op {op!r}; "
                             f"known: {sorted(_REDUCTIONS)}")
        me, width = self.omp_get_thread_num(), self.omp_get_num_threads()
        key = self._phase_key(0, "red")[1]
        slot = self._reduce_slots.setdefault(key, {})
        slot[me] = value
        self.omp_barrier()
        fold, _identity = _REDUCTIONS[op]
        result = float(fold(np.array([slot[r] for r in range(width)])))
        self.omp_barrier()
        return result

    # ----------------------------------------------------------------- locks
    def omp_init_lock(self) -> int:
        return self.hamster.sync.new_lock()

    def omp_set_lock(self, lock: int) -> None:
        self.hamster.sync.lock(lock)

    def omp_unset_lock(self, lock: int) -> None:
        self.hamster.sync.unlock(lock)

    # ------------------------------------------------------------------ misc
    def omp_get_wtime(self) -> float:
        return self.hamster.timing.wtime()

    def omp_flush(self) -> None:
        self.hamster.consistency.fence()
