"""Common machinery for programming-model layers.

A :class:`ProgrammingModel` wraps a HAMSTER runtime and exposes one target
API as methods. Implementing a new API (§4.4) means: map each call onto a
HAMSTER service (or a small composition of them), pick the consistency
model, the task structure, and an initialization template. The base class
supplies the shared plumbing — startup delegation, per-task identity, and
the ``API_CALLS`` manifest the Table 2 complexity measurement counts.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, ClassVar, List, Optional, Sequence, Tuple

from repro.core.hamster import Hamster
from repro.errors import ModelError

__all__ = ["ProgrammingModel"]


class ProgrammingModel:
    """Base for all Table 2 model layers."""

    #: display name matching Table 2's rows
    MODEL_NAME: ClassVar[str] = "abstract"
    #: names of the public API entry points (the "#API calls" column)
    API_CALLS: ClassVar[Tuple[str, ...]] = ()
    #: consistency model this API promises its applications
    CONSISTENCY: ClassVar[str] = "release"

    def __init__(self, hamster: Hamster) -> None:
        self.hamster = hamster
        self._check_consistency()

    def _check_consistency(self) -> None:
        # §4.5: the model's consistency must be recreatable on the
        # substrate. Weaker-than-substrate rides free; otherwise the
        # consistency module's optimized implementation closes the gap —
        # instantiate it so acquire/release go through it when needed.
        self.hamster.consistency.check_model(self.CONSISTENCY)
        self._cons = self.hamster.consistency.use(self.CONSISTENCY)

    # -------------------------------------------------------- observability
    def _obs_span(self, call: str):
        """Context manager spanning one public API call.

        The root of the causal tree for everything the call triggers
        (service work, protocol actions, wire transfers). Rank attribution
        must not raise outside task context, so it goes through the DSM's
        pid->rank table instead of ``current_rank()``.
        """
        obs = self.hamster.engine.obs
        if not obs.enabled:
            return obs.span(call)
        proc = self.hamster.engine.current_process
        rank = (self.hamster.dsm._task_rank.get(proc.pid)
                if proc is not None else None)
        return obs.span("api.call", call=call, rank=rank,
                        model=self.MODEL_NAME)

    # ------------------------------------------------------------- identity
    def _rank(self) -> int:
        return self.hamster.dsm.current_rank()

    def _nranks(self) -> int:
        return self.hamster.n_ranks

    # -------------------------------------------------------------- startup
    def run(self, main: Callable, args: tuple = ()) -> List[Any]:
        """Launch ``main(model, *args)`` SPMD-style on every rank — the
        default external-startup template. Thread-structured models
        override this (they start a single main thread). A generator-
        function ``main`` runs stackless under the generator backend."""
        if inspect.isgeneratorfunction(main):
            model = self

            def shim(env, *a):
                return (yield from main(model, *a))

            return self.hamster.run_spmd(shim, args=args)
        return self.hamster.run_spmd(lambda env, *a: main(self, *a), args=args)

    # ------------------------------------------------------------ reflection
    @classmethod
    def api_call_count(cls) -> int:
        return len(cls.API_CALLS)

    @classmethod
    def check_manifest(cls) -> None:
        """Verify every declared API call exists as a public method —
        keeps the Table 2 manifest honest."""
        missing = [name for name in cls.API_CALLS if not callable(getattr(cls, name, None))]
        if missing:
            raise ModelError(
                f"{cls.MODEL_NAME}: API_CALLS entries without methods: {missing}")
