"""The SPMD programming model (Table 2, row 1).

The first model implemented within the project (§5.2): a user-friendly
export of most HAMSTER services under a single flat API, intended both for
direct application programming and as the basis for run-time systems. Its
calls have deliberately *broad* functionality (collective allocation with
distribution annotations, combined timing/statistics queries), which is why
it costs more lines per call than the thin DSM APIs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.memory.layout import Distribution
from repro.models.base import ProgrammingModel

__all__ = ["SpmdModel"]


class SpmdModel(ProgrammingModel):
    """Flat SPMD API over the full breadth of HAMSTER services."""

    MODEL_NAME = "SPMD model"
    CONSISTENCY = "scope"
    API_CALLS = (
        "spmd_init", "spmd_exit", "spmd_proc_id", "spmd_num_procs",
        "spmd_node_id", "spmd_num_nodes",
        "spmd_alloc", "spmd_alloc_array", "spmd_free",
        "spmd_barrier", "spmd_lock", "spmd_unlock", "spmd_trylock",
        "spmd_newlock",
        "spmd_acquire", "spmd_release", "spmd_fence",
        "spmd_send", "spmd_recv",
        "spmd_wtime", "spmd_stats", "spmd_reset_stats", "spmd_capabilities",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self._initialized: dict = {}

    # --------------------------------------------------------- init / exit
    def spmd_init(self) -> int:
        """Per-task initialization; returns the task's process id."""
        rank = self._rank()
        self._initialized[rank] = True
        return rank

    def spmd_exit(self) -> None:
        """Terminate the task's participation (final barrier + flush)."""
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()
        self._initialized.pop(self._rank(), None)

    # -------------------------------------------------------------- identity
    def spmd_proc_id(self) -> int:
        return self.hamster.task.my_rank()

    def spmd_num_procs(self) -> int:
        return self.hamster.task.n_tasks()

    def spmd_node_id(self) -> int:
        return self.hamster.cluster_ctl.my_node()

    def spmd_num_nodes(self) -> int:
        return self.hamster.cluster_ctl.n_nodes()

    # ---------------------------------------------------------------- memory
    def spmd_alloc(self, nbytes: int, name: str = "",
                   distribution: Optional[Distribution] = None):
        """Collective global allocation with optional distribution
        annotation (all tasks call together, implicit barrier)."""
        return self.hamster.memory.alloc_collective(
            nbytes, name=name, distribution=distribution)

    def spmd_alloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                         name: str = "",
                         distribution: Optional[Distribution] = None):
        """Collective typed-array allocation."""
        return self.hamster.memory.alloc_array_collective(
            shape, dtype=dtype, name=name, distribution=distribution)

    def spmd_free(self, target) -> None:
        self.hamster.memory.free(target)

    # ------------------------------------------------------- synchronization
    def spmd_barrier(self) -> None:
        self.hamster.sync.barrier()

    def spmd_lock(self, lock_id: int) -> None:
        self.hamster.sync.lock(lock_id)

    def spmd_unlock(self, lock_id: int) -> None:
        self.hamster.sync.unlock(lock_id)

    def spmd_trylock(self, lock_id: int) -> bool:
        return self.hamster.sync.try_lock(lock_id)

    def spmd_newlock(self) -> int:
        return self.hamster.sync.new_lock()

    # ------------------------------------------------------------ consistency
    def spmd_acquire(self, scope: int) -> None:
        self.hamster.consistency.acquire(scope)

    def spmd_release(self, scope: int) -> None:
        self.hamster.consistency.release(scope)

    def spmd_fence(self) -> None:
        self.hamster.consistency.fence()

    # -------------------------------------------------------------- messaging
    def spmd_send(self, dst: int, payload: Any, size: int = 64) -> None:
        """External message to another task (the unified channel of §3.3)."""
        self.hamster.cluster_ctl.send_msg(dst, payload, size=size)

    def spmd_recv(self) -> Any:
        return self.hamster.cluster_ctl.recv_msg()

    # ----------------------------------------------------- timing / monitoring
    def spmd_wtime(self) -> float:
        return self.hamster.timing.wtime()

    def spmd_stats(self, rank: Optional[int] = None) -> dict:
        """Combined module + DSM statistics for one task (§4.3)."""
        stats = dict(self.hamster.memory.access_stats(rank))
        stats["sync"] = self.hamster.sync.stats.query()
        return stats

    def spmd_reset_stats(self) -> None:
        self.hamster.reset_statistics()

    def spmd_capabilities(self) -> frozenset:
        return self.hamster.memory.capabilities()
