"""Win32 threads API (Table 2, row 8).

The heaviest model of the paper's set (23.5 lines/call): Win32's handle-
centric object model means almost every routine manipulates a polymorphic
HANDLE (threads, mutexes, semaphores, events all flow through
WaitForSingleObject/CloseHandle), and the distributed setting again needs
the command-forwarding mechanism for cross-node thread control.

Semantics follow the Win32 originals: manual- vs auto-reset events,
WaitForMultipleObjects with wait-all/wait-any, INFINITE timeouts, DWORD
return codes (WAIT_OBJECT_0, WAIT_TIMEOUT, WAIT_FAILED).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ModelError
from repro.models.base import ProgrammingModel
from repro.models.forwarding import ForwardingService

__all__ = ["Win32ThreadsApi"]

INFINITE = float("inf")
WAIT_OBJECT_0 = 0
WAIT_TIMEOUT = 0x102
WAIT_FAILED = 0xFFFFFFFF
STILL_ACTIVE = 259


@dataclass
class _Handle:
    """A Win32 HANDLE: typed kernel object reference."""

    hid: int
    kind: str                       # thread | mutex | semaphore | event | critsec
    state: Dict[str, Any] = field(default_factory=dict)
    closed: bool = False


class Win32ThreadsApi(ProgrammingModel):
    """Win32 thread/synchronization API over HAMSTER services."""

    MODEL_NAME = "WIN32 threads"
    CONSISTENCY = "release"
    API_CALLS = (
        "CreateThread", "ExitThread", "TerminateThread",
        "GetCurrentThread", "GetCurrentThreadId", "GetExitCodeThread",
        "SuspendThread", "ResumeThread", "SwitchToThread", "Sleep",
        "GetThreadPriority", "SetThreadPriority",
        "WaitForSingleObject", "WaitForMultipleObjects", "CloseHandle",
        "CreateMutex", "ReleaseMutex",
        "CreateSemaphore", "ReleaseSemaphore",
        "CreateEvent", "SetEvent", "ResetEvent", "PulseEvent",
        "InitializeCriticalSection", "DeleteCriticalSection",
        "EnterCriticalSection", "LeaveCriticalSection",
        "TryEnterCriticalSection",
        "InterlockedIncrement", "InterlockedDecrement",
        "InterlockedExchange", "InterlockedCompareExchange",
        "InterlockedExchangeAdd",
        "TlsAlloc", "TlsFree", "TlsSetValue", "TlsGetValue",
        "GetCurrentProcessorNumber", "GetSystemInfo",
        "CreateRemoteThread", "QueueUserAPC", "GetLastError",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self.fwd = ForwardingService(hamster, channel_name="win32.fwd")
        self.fwd.register("create", self._do_create)
        self.fwd.register("wait_thread", self._do_wait_thread)
        self._hids = itertools.count(0x100)
        self._handles: Dict[int, _Handle] = {}
        self._proc_tid: Dict[int, int] = {}
        self._next_rank = itertools.count(1)
        self._tls_keys = itertools.count(1)
        self._tls: Dict[int, Dict[int, Any]] = {}
        # Eager creation: see pthreads._once_lock.
        self._interlock: int = hamster.sync.new_lock()
        self._last_error = 0

    # -------------------------------------------------------------- startup
    def run(self, main: Callable, args: tuple = ()) -> Any:
        def entry(env):
            if env.rank != 0:
                return None
            h = self._new_handle("thread", rank=0, finished=False, code=STILL_ACTIVE)
            self._proc_tid[env.proc.pid] = h.hid
            result = main(self, *args)
            h.state["finished"] = True
            h.state["code"] = 0
            return result
        return self.hamster.run_spmd(entry)[0]

    def _new_handle(self, kind: str, **state: Any) -> _Handle:
        h = _Handle(next(self._hids), kind, state)
        self._handles[h.hid] = h
        return h

    def _get(self, handle, kind: Optional[str] = None) -> _Handle:
        h = handle if isinstance(handle, _Handle) else self._handles.get(handle)
        if h is None or h.closed:
            raise ModelError(f"invalid or closed HANDLE {handle!r}")
        if kind is not None and h.kind != kind:
            raise ModelError(f"HANDLE {h.hid:#x} is a {h.kind}, expected {kind}")
        return h

    # --------------------------------------------------------------- threads
    def CreateThread(self, start_routine: Callable, parameter: Any = None,
                     rank: Optional[int] = None) -> _Handle:
        """Create a thread (optionally pinned to a rank); returns its HANDLE."""
        target = rank if rank is not None else next(self._next_rank) % self._nranks()
        h = self._new_handle("thread", rank=target, finished=False,
                             code=STILL_ACTIVE, suspended=False, priority=0)
        self.fwd.invoke(target, "create", h.hid, target, start_routine, parameter)
        return h

    def CreateRemoteThread(self, rank: int, start_routine: Callable,
                           parameter: Any = None) -> _Handle:
        """Explicitly-placed creation (the Win32 cross-process analogue)."""
        return self.CreateThread(start_routine, parameter, rank=rank)

    def _do_create(self, hid: int, rank: int, start_routine: Callable,
                   parameter: Any) -> int:
        h = self._handles[hid]

        def body() -> Any:
            proc = self.hamster.engine.require_process()
            self._proc_tid[proc.pid] = hid
            try:
                code = start_routine(parameter)
            except _Win32Exit as stop:
                code = stop.code
            finally:
                self._proc_tid.pop(proc.pid, None)
            h.state["finished"] = True
            h.state["code"] = code if code is not None else 0
            return code

        h.state["task"] = self.hamster.task.spawn_local(rank, body,
                                                        name=f"win32.{hid:#x}")
        return hid

    def ExitThread(self, exit_code: int = 0) -> None:
        raise _Win32Exit(exit_code)

    def TerminateThread(self, handle, exit_code: int = 1) -> bool:
        """Cooperative approximation: marks the thread terminated; the
        paper-era caveat (dangerous, avoid) applies here too."""
        h = self._get(handle, "thread")
        h.state["finished"] = True
        h.state["code"] = exit_code
        return True

    def GetCurrentThread(self) -> Optional[_Handle]:
        proc = self.hamster.engine.require_process()
        hid = self._proc_tid.get(proc.pid)
        return None if hid is None else self._handles.get(hid)

    def GetCurrentThreadId(self) -> int:
        proc = self.hamster.engine.require_process()
        return self._proc_tid.get(proc.pid, 0)

    def GetExitCodeThread(self, handle) -> int:
        h = self._get(handle, "thread")
        return h.state["code"] if h.state["finished"] else STILL_ACTIVE

    def SuspendThread(self, handle) -> int:
        h = self._get(handle, "thread")
        h.state["suspended"] = True
        return 0

    def ResumeThread(self, handle) -> int:
        h = self._get(handle, "thread")
        was = h.state.get("suspended", False)
        h.state["suspended"] = False
        return 1 if was else 0

    def SwitchToThread(self) -> bool:
        self.hamster.engine.require_process().hold(1e-6)
        return True

    def Sleep(self, milliseconds: float) -> None:
        self.hamster.engine.require_process().hold(milliseconds / 1e3)

    def GetThreadPriority(self, handle) -> int:
        return self._get(handle, "thread").state.get("priority", 0)

    def SetThreadPriority(self, handle, priority: int) -> bool:
        self._get(handle, "thread").state["priority"] = priority
        return True

    # ----------------------------------------------------------------- waits
    def WaitForSingleObject(self, handle, timeout: float = INFINITE) -> int:
        """Wait on any waitable HANDLE (thread/mutex/semaphore/event)."""
        h = self._get(handle)
        if h.kind == "thread":
            if not h.state["finished"]:
                if timeout != INFINITE:
                    # Bounded thread wait: poll until deadline.
                    deadline = self.hamster.engine.now + timeout / 1e3
                    proc = self.hamster.engine.require_process()
                    while not h.state["finished"]:
                        if self.hamster.engine.now >= deadline:
                            return WAIT_TIMEOUT
                        proc.hold(50e-6)
                    return WAIT_OBJECT_0
                self.fwd.invoke(h.state["rank"], "wait_thread", h.hid)
            return WAIT_OBJECT_0
        if h.kind == "mutex":
            if timeout == INFINITE:
                self.hamster.sync.lock(h.state["lock"])
                return WAIT_OBJECT_0
            return (WAIT_OBJECT_0 if self.hamster.sync.try_lock(h.state["lock"])
                    else WAIT_TIMEOUT)
        if h.kind == "semaphore":
            return self._sem_wait(h, timeout)
        if h.kind == "event":
            return self._event_wait(h, timeout)
        return WAIT_FAILED

    def _do_wait_thread(self, hid: int) -> int:
        h = self._handles[hid]
        task = h.state.get("task")
        if task is not None:
            self.hamster.task.join(task)
        return 0

    def WaitForMultipleObjects(self, handles: List[Any], wait_all: bool = True,
                               timeout: float = INFINITE) -> int:
        """Wait-all joins every handle; wait-any polls for the first
        signaled one and returns WAIT_OBJECT_0 + its index."""
        if wait_all:
            for h in handles:
                code = self.WaitForSingleObject(h, timeout)
                if code != WAIT_OBJECT_0:
                    return code
            return WAIT_OBJECT_0
        deadline = (None if timeout == INFINITE
                    else self.hamster.engine.now + timeout / 1e3)
        proc = self.hamster.engine.require_process()
        while True:
            for i, h in enumerate(handles):
                if self.WaitForSingleObject(h, 0) == WAIT_OBJECT_0:
                    return WAIT_OBJECT_0 + i
            if deadline is not None and self.hamster.engine.now >= deadline:
                return WAIT_TIMEOUT
            proc.hold(50e-6)

    def CloseHandle(self, handle) -> bool:
        h = self._get(handle)
        h.closed = True
        return True

    # ---------------------------------------------------------------- mutexes
    def CreateMutex(self, initial_owner: bool = False) -> _Handle:
        h = self._new_handle("mutex", lock=self.hamster.sync.new_lock())
        if initial_owner:
            self.hamster.sync.lock(h.state["lock"])
        return h

    def ReleaseMutex(self, handle) -> bool:
        h = self._get(handle, "mutex")
        self.hamster.sync.unlock(h.state["lock"])
        return True

    # -------------------------------------------------------------- semaphores
    def CreateSemaphore(self, initial: int, maximum: int) -> _Handle:
        if initial < 0 or maximum < 1 or initial > maximum:
            raise ModelError("CreateSemaphore: invalid counts")
        return self._new_handle("semaphore",
                                sem=self.hamster.sync.new_semaphore(initial),
                                maximum=maximum)

    def ReleaseSemaphore(self, handle, count: int = 1) -> bool:
        h = self._get(handle, "semaphore")
        sem = h.state["sem"]
        if sem.value + count > h.state["maximum"]:
            self._last_error = 0x12A  # ERROR_TOO_MANY_POSTS
            return False
        sem.release(count)
        return True

    def _sem_wait(self, h: _Handle, timeout: float) -> int:
        sem = h.state["sem"]
        if timeout == INFINITE:
            sem.acquire()
            return WAIT_OBJECT_0
        deadline = self.hamster.engine.now + timeout / 1e3
        proc = self.hamster.engine.require_process()
        while True:
            if sem.value > 0:
                sem.acquire()
                return WAIT_OBJECT_0
            if self.hamster.engine.now >= deadline:
                return WAIT_TIMEOUT
            proc.hold(50e-6)

    # ------------------------------------------------------------------ events
    def CreateEvent(self, manual_reset: bool = False,
                    initial_state: bool = False) -> _Handle:
        lock = self.hamster.sync.new_lock()
        return self._new_handle("event", manual=manual_reset,
                                signaled=initial_state, lock=lock,
                                cond=self.hamster.sync.new_condition(lock))

    def SetEvent(self, handle) -> bool:
        h = self._get(handle, "event")
        self.hamster.sync.lock(h.state["lock"])
        h.state["signaled"] = True
        if h.state["manual"]:
            h.state["cond"].broadcast()
        else:
            h.state["cond"].signal()
        self.hamster.sync.unlock(h.state["lock"])
        return True

    def ResetEvent(self, handle) -> bool:
        h = self._get(handle, "event")
        h.state["signaled"] = False
        return True

    def PulseEvent(self, handle) -> bool:
        h = self._get(handle, "event")
        self.hamster.sync.lock(h.state["lock"])
        if h.state["manual"]:
            h.state["cond"].broadcast()
        else:
            h.state["cond"].signal()
        h.state["signaled"] = False
        self.hamster.sync.unlock(h.state["lock"])
        return True

    def _event_wait(self, h: _Handle, timeout: float) -> int:
        self.hamster.sync.lock(h.state["lock"])
        try:
            if h.state["signaled"]:
                if not h.state["manual"]:
                    h.state["signaled"] = False
                return WAIT_OBJECT_0
            if timeout == 0:
                return WAIT_TIMEOUT
            ok = h.state["cond"].wait(None if timeout == INFINITE else timeout / 1e3)
            if not ok:
                return WAIT_TIMEOUT
            if not h.state["manual"]:
                h.state["signaled"] = False
            return WAIT_OBJECT_0
        finally:
            self.hamster.sync.unlock(h.state["lock"])

    # -------------------------------------------------------- critical sections
    def InitializeCriticalSection(self) -> _Handle:
        return self._new_handle("critsec", lock=self.hamster.sync.new_lock())

    def DeleteCriticalSection(self, handle) -> None:
        self._get(handle, "critsec").closed = True

    def EnterCriticalSection(self, handle) -> None:
        self.hamster.sync.lock(self._get(handle, "critsec").state["lock"])

    def LeaveCriticalSection(self, handle) -> None:
        self.hamster.sync.unlock(self._get(handle, "critsec").state["lock"])

    def TryEnterCriticalSection(self, handle) -> bool:
        return self.hamster.sync.try_lock(self._get(handle, "critsec").state["lock"])

    # ---------------------------------------------------------------- atomics
    def _interlocked(self, fn: Callable[[], Any]) -> Any:
        self.hamster.sync.lock(self._interlock)
        try:
            return fn()
        finally:
            self.hamster.sync.unlock(self._interlock)

    def InterlockedIncrement(self, arr, index: Any = 0) -> int:
        def op() -> int:
            value = int(arr[index]) + 1
            arr[index] = value
            self.hamster.consistency.fence()
            return value
        return self._interlocked(op)

    def InterlockedDecrement(self, arr, index: Any = 0) -> int:
        def op() -> int:
            value = int(arr[index]) - 1
            arr[index] = value
            self.hamster.consistency.fence()
            return value
        return self._interlocked(op)

    def InterlockedExchange(self, arr, value: int, index: Any = 0) -> int:
        def op() -> int:
            old = int(arr[index])
            arr[index] = value
            self.hamster.consistency.fence()
            return old
        return self._interlocked(op)

    def InterlockedCompareExchange(self, arr, value: int, comparand: int,
                                   index: Any = 0) -> int:
        def op() -> int:
            old = int(arr[index])
            if old == comparand:
                arr[index] = value
                self.hamster.consistency.fence()
            return old
        return self._interlocked(op)

    def InterlockedExchangeAdd(self, arr, delta: int, index: Any = 0) -> int:
        def op() -> int:
            old = int(arr[index])
            arr[index] = old + delta
            self.hamster.consistency.fence()
            return old
        return self._interlocked(op)

    # -------------------------------------------------------------------- TLS
    def TlsAlloc(self) -> int:
        key = next(self._tls_keys)
        self._tls[key] = {}
        return key

    def TlsFree(self, key: int) -> bool:
        return self._tls.pop(key, None) is not None

    def TlsSetValue(self, key: int, value: Any) -> bool:
        if key not in self._tls:
            return False
        self._tls[key][self.GetCurrentThreadId()] = value
        return True

    def TlsGetValue(self, key: int) -> Any:
        return self._tls.get(key, {}).get(self.GetCurrentThreadId())

    # ------------------------------------------------------------------- misc
    def GetCurrentProcessorNumber(self) -> int:
        return self.hamster.cluster_ctl.my_node()

    def GetSystemInfo(self) -> dict:
        return {"dwNumberOfProcessors": self._nranks(),
                "dwPageSize": self.hamster.params.page_size,
                "dwNumberOfNodes": self.hamster.cluster_ctl.n_nodes()}

    def QueueUserAPC(self, fn: Callable, handle, arg: Any = None) -> bool:
        """Asynchronous procedure call: runs ``fn(arg)`` on the target
        thread's rank (forwarded fire-and-forget via a transient task)."""
        h = self._get(handle, "thread")
        self.hamster.task.spawn_local(h.state["rank"], lambda: fn(arg),
                                      name="win32.apc")
        return True

    def GetLastError(self) -> int:
        return self._last_error


class _Win32Exit(Exception):
    def __init__(self, code: int) -> None:
        super().__init__("ExitThread")
        self.code = code
