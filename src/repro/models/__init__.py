"""Programming-model layers (§4.4, Table 2).

Each module in this package is one thin shared-memory API implemented purely
in terms of HAMSTER services — the paper's retargetability claim made
concrete. The nine models of Table 2:

================== ============================================ =================
model               module                                       style
================== ============================================ =================
SPMD                :mod:`repro.models.spmd`                     HAMSTER-native
SMP/SPMD            :mod:`repro.models.smp_spmd`                 HAMSTER-native
ANL macros          :mod:`repro.models.anl`                      macro package
TreadMarks API      :mod:`repro.models.treadmarks`               SW-DSM API
HLRC API            :mod:`repro.models.hlrc`                     SW-DSM API
JiaJia API (subset) :mod:`repro.models.jiajia_api`               SW-DSM API
POSIX threads       :mod:`repro.models.pthreads`                 thread API
Win32 threads       :mod:`repro.models.win32`                    thread API
Cray shmem          :mod:`repro.models.shmem`                    one-sided put/get
================== ============================================ =================

The thread APIs share the active-message *command forwarding* facility in
:mod:`repro.models.forwarding` (deliberately not a HAMSTER service — §5.2).
:data:`MODEL_REGISTRY` drives the Table 2 complexity measurement.
"""

from repro.models.base import ProgrammingModel

MODEL_REGISTRY = {
    "SPMD model": ("repro.models.spmd", "SpmdModel"),
    "SMP/SPMD model": ("repro.models.smp_spmd", "SmpSpmdModel"),
    "ANL macros": ("repro.models.anl", "AnlMacros"),
    "TreadMarks API": ("repro.models.treadmarks", "TreadMarksApi"),
    "HLRC API": ("repro.models.hlrc", "HlrcApi"),
    "JiaJia API (subset)": ("repro.models.jiajia_api", "JiaJiaApi"),
    "POSIX threads": ("repro.models.pthreads", "PosixThreadsApi"),
    "WIN32 threads": ("repro.models.win32", "Win32ThreadsApi"),
    "Cray put/get (shmem) API": ("repro.models.shmem", "ShmemApi"),
}


def load_model(display_name: str):
    """Import and return the model class for a Table 2 row name."""
    import importlib

    module_name, cls_name = MODEL_REGISTRY[display_name]
    return getattr(importlib.import_module(module_name), cls_name)


__all__ = ["ProgrammingModel", "MODEL_REGISTRY", "load_model"]
