"""HLRC API (Table 2, row 5).

Home-based Lazy Release Consistency (Rangarajan/Iftode). The API is a large
set of *very thin* calls — the paper measures 5.5 lines per call, the lowest
of any model — because HLRC's primitives (home-based allocation, acquire/
release pairs, explicit flushes, per-page home control) correspond almost
exactly to individual HAMSTER services.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.memory.layout import Distribution, block, cyclic, explicit, single_home
from repro.models.base import ProgrammingModel

__all__ = ["HlrcApi"]


class HlrcApi(ProgrammingModel):
    """hlrc_* calls over HAMSTER services."""

    MODEL_NAME = "HLRC API"
    CONSISTENCY = "release"
    API_CALLS = (
        "hlrc_init", "hlrc_exit", "hlrc_my_pid", "hlrc_num_procs",
        "hlrc_my_node", "hlrc_num_nodes",
        "hlrc_malloc", "hlrc_malloc_array", "hlrc_free",
        "hlrc_malloc_block", "hlrc_malloc_cyclic", "hlrc_malloc_onhome",
        "hlrc_acquire", "hlrc_release", "hlrc_flush",
        "hlrc_lock", "hlrc_unlock", "hlrc_trylock", "hlrc_newlock",
        "hlrc_barrier",
        "hlrc_wtime", "hlrc_stats", "hlrc_stats_reset",
        "hlrc_capabilities", "hlrc_home_of",
    )

    # ------------------------------------------------------------ lifecycle
    def hlrc_init(self) -> int:
        self.hamster.sync.barrier()
        return self._rank()

    def hlrc_exit(self) -> None:
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()

    def hlrc_my_pid(self) -> int:
        return self.hamster.task.my_rank()

    def hlrc_num_procs(self) -> int:
        return self.hamster.task.n_tasks()

    def hlrc_my_node(self) -> int:
        return self.hamster.cluster_ctl.my_node()

    def hlrc_num_nodes(self) -> int:
        return self.hamster.cluster_ctl.n_nodes()

    # ---------------------------------------------------------------- memory
    def hlrc_malloc(self, nbytes: int, distribution: Optional[Distribution] = None):
        """Global synchronous allocation (all processes, implicit barrier)."""
        return self.hamster.memory.alloc_collective(nbytes, distribution=distribution)

    def hlrc_malloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                          name: str = "", distribution: Optional[Distribution] = None):
        return self.hamster.memory.alloc_array_collective(
            shape, dtype=dtype, name=name, distribution=distribution)

    def hlrc_free(self, target) -> None:
        self.hamster.memory.free(target)

    def hlrc_malloc_block(self, shape: Sequence[int], dtype: Any = np.float64,
                          name: str = ""):
        """Home-control convenience: block page placement."""
        return self.hlrc_malloc_array(shape, dtype, name, distribution=block())

    def hlrc_malloc_cyclic(self, shape: Sequence[int], dtype: Any = np.float64,
                           name: str = ""):
        return self.hlrc_malloc_array(shape, dtype, name, distribution=cyclic())

    def hlrc_malloc_onhome(self, shape: Sequence[int], home: int,
                           dtype: Any = np.float64, name: str = ""):
        return self.hlrc_malloc_array(shape, dtype, name,
                                      distribution=single_home(home))

    def hlrc_home_of(self, array, page_index: int) -> int:
        """Home rank of the ``page_index``-th page of an allocation."""
        return self.hamster.dsm.home_of(array.region.first_page + page_index)

    # ------------------------------------------------------------ consistency
    def hlrc_acquire(self, scope: int) -> None:
        self.hamster.consistency.acquire(scope)

    def hlrc_release(self, scope: int) -> None:
        self.hamster.consistency.release(scope)

    def hlrc_flush(self) -> None:
        self.hamster.consistency.fence()

    # ------------------------------------------------------- synchronization
    def hlrc_lock(self, lock_id: int) -> None:
        self.hamster.sync.lock(lock_id)

    def hlrc_unlock(self, lock_id: int) -> None:
        self.hamster.sync.unlock(lock_id)

    def hlrc_trylock(self, lock_id: int) -> bool:
        return self.hamster.sync.try_lock(lock_id)

    def hlrc_newlock(self) -> int:
        return self.hamster.sync.new_lock()

    def hlrc_barrier(self) -> None:
        self.hamster.sync.barrier()

    # ----------------------------------------------------- timing/monitoring
    def hlrc_wtime(self) -> float:
        return self.hamster.timing.wtime()

    def hlrc_stats(self, rank: Optional[int] = None) -> dict:
        return self.hamster.memory.access_stats(rank)

    def hlrc_stats_reset(self) -> None:
        self.hamster.memory.reset_access_stats()

    def hlrc_capabilities(self) -> frozenset:
        return self.hamster.memory.capabilities()
