"""Command forwarding for distributed thread APIs (§5.2).

POSIX and Win32 thread routines must sometimes execute on the node where
the *target thread* lives (or, for creation, where the new thread should
run). HAMSTER deliberately omits a forwarding framework from its services;
instead it is built here — once — on top of the messaging primitives, and
shared by both thread models ("all communication uses some form of active
message present within the HAMSTER modules").

Blocking commands (join, wait) must not stall the target node's message
server, so every forwarded command runs in a transient worker task that
answers with a deferred reply.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ModelError
from repro.sim.process import SimProcess

__all__ = ["ForwardingService"]


class ForwardingService:
    """Execute named commands on a chosen rank, transparently local or
    remote."""

    def __init__(self, hamster, channel_name: str = "fwd") -> None:
        self.hamster = hamster
        self.dsm = hamster.dsm
        self._commands: Dict[str, Callable] = {}
        fabric = hamster.fabric
        self._chan = None
        if fabric is not None:
            self._chan = fabric.channel(channel_name)
            self._chan.register_all("cmd", lambda nid: self._h_cmd)

    def register(self, name: str, fn: Callable) -> None:
        """Register ``fn(*args)`` as a forwardable command."""
        if name in self._commands:
            raise ModelError(f"forwarding command {name!r} already registered")
        self._commands[name] = fn

    def invoke(self, rank: int, name: str, *args: Any, bind: bool = False) -> Any:
        """Run command ``name`` on ``rank``'s node; blocks for the result.

        With ``bind=True`` the remote worker executes bound to ``rank``, so
        the command may itself use rank-contextual services (locks, shared
        memory) on the target's behalf.
        """
        fn = self._lookup(name)
        my_rank = self.dsm.current_rank()
        src_node = self.dsm.node_of(my_rank)
        dst_node = self.dsm.node_of(rank)
        if self._chan is None or src_node == dst_node:
            return fn(*args)
        return self._chan.rpc(src_node, dst_node, "cmd",
                              payload={"name": name, "args": args,
                                       "bind": rank if bind else None},
                              size=96)

    def _lookup(self, name: str) -> Callable:
        try:
            return self._commands[name]
        except KeyError:
            raise ModelError(f"unknown forwarding command {name!r}") from None

    def _h_cmd(self, msg) -> None:
        # Run the (possibly blocking) command in a transient worker so the
        # message server stays responsive; reply when it finishes.
        fn = self._lookup(msg.payload["name"])
        args = msg.payload["args"]
        bind_rank = msg.payload.get("bind")

        def worker(proc: SimProcess) -> None:
            if bind_rank is not None:
                self.dsm.bind_task(proc, bind_rank)
            try:
                result = fn(*args)
            finally:
                if bind_rank is not None:
                    self.dsm.unbind_task(proc)
            self._chan.reply(msg, payload=result, size=64)

        SimProcess(self.hamster.engine, worker, name=f"fwd.{msg.payload['name']}",
                   daemon=True).start()
        return None  # deferred reply
