"""POSIX threads API (Table 2, row 7).

A *distributed* pthreads: threads are created across the cluster's nodes
but share the global memory abstraction, so unmodified pthread programs run
on any HAMSTER platform. The characteristic complexity of the thread APIs
(§5.2) is the **forwarding mechanism**: a threading routine executes either
on the node where the target thread runs, or — for creation — on the node
where the new thread *should* run. Forwarding rides the active-message
facility of :mod:`repro.models.forwarding`; HAMSTER itself deliberately
offers no forwarding service.

Error returns follow the POSIX convention (0 on success / errno values),
except where Python exceptions are clearly better (invalid handles).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ModelError
from repro.models.base import ProgrammingModel
from repro.models.forwarding import ForwardingService

__all__ = ["PosixThreadsApi", "PthreadAttr"]

# errno values used by the API
EBUSY = 16
EINVAL = 22
ETIMEDOUT = 110
PTHREAD_CANCELED = object()

PTHREAD_CREATE_JOINABLE = 0
PTHREAD_CREATE_DETACHED = 1
PTHREAD_CANCEL_ENABLE = 0
PTHREAD_CANCEL_DISABLE = 1

PTHREAD_MUTEX_NORMAL = 0
PTHREAD_MUTEX_RECURSIVE = 1


class _PthreadExit(Exception):
    def __init__(self, retval: Any) -> None:
        super().__init__("pthread_exit")
        self.retval = retval


@dataclass
class PthreadAttr:
    """Thread creation attributes (+ the distributed extension: placement)."""

    detachstate: int = PTHREAD_CREATE_JOINABLE
    node: Optional[int] = None  # target rank; None -> round-robin


@dataclass
class _Thread:
    tid: int
    rank: int
    handle: Any = None
    retval: Any = None
    detached: bool = False
    finished: bool = False
    cancel_requested: bool = False
    cancel_state: int = PTHREAD_CANCEL_ENABLE
    specific: Dict[int, Any] = field(default_factory=dict)


class _Mutex:
    __slots__ = ("lock_id", "kind", "owner", "depth")

    def __init__(self, lock_id: int, kind: int) -> None:
        self.lock_id = lock_id
        self.kind = kind
        self.owner: Optional[int] = None
        self.depth = 0


class PosixThreadsApi(ProgrammingModel):
    """pthread_* calls over HAMSTER services + command forwarding."""

    MODEL_NAME = "POSIX threads"
    CONSISTENCY = "release"
    API_CALLS = (
        "pthread_create", "pthread_exit", "pthread_join", "pthread_detach",
        "pthread_self", "pthread_equal", "pthread_once", "pthread_cancel",
        "pthread_testcancel", "pthread_setcancelstate", "sched_yield",
        "pthread_attr_init", "pthread_attr_destroy",
        "pthread_attr_setdetachstate", "pthread_attr_getdetachstate",
        "pthread_attr_setnode", "pthread_attr_getnode",
        "pthread_mutex_init", "pthread_mutex_destroy", "pthread_mutex_lock",
        "pthread_mutex_trylock", "pthread_mutex_unlock",
        "pthread_mutexattr_init", "pthread_mutexattr_destroy",
        "pthread_mutexattr_settype", "pthread_mutexattr_gettype",
        "pthread_cond_init", "pthread_cond_destroy", "pthread_cond_wait",
        "pthread_cond_timedwait", "pthread_cond_signal",
        "pthread_cond_broadcast", "pthread_condattr_init",
        "pthread_condattr_destroy",
        "pthread_key_create", "pthread_key_delete",
        "pthread_setspecific", "pthread_getspecific",
        "pthread_rwlock_init", "pthread_rwlock_destroy",
        "pthread_rwlock_rdlock", "pthread_rwlock_tryrdlock",
        "pthread_rwlock_wrlock", "pthread_rwlock_trywrlock",
        "pthread_rwlock_unlock",
        "pthread_barrier_init", "pthread_barrier_destroy",
        "pthread_barrier_wait", "pthread_barrierattr_init",
        "pthread_barrierattr_destroy",
        "pthread_getconcurrency", "pthread_setconcurrency",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self.fwd = ForwardingService(hamster, channel_name="pthread.fwd")
        self.fwd.register("create", self._do_create)
        self.fwd.register("join", self._do_join)
        self._tids = itertools.count(2)  # tid 1 is the main thread
        self._threads: Dict[int, _Thread] = {}
        self._proc_tid: Dict[int, int] = {}
        self._next_rank = itertools.count(1)  # round-robin after main's rank 0
        self._keys = itertools.count(1)
        self._live_keys: set = set()
        self._once_done: set = set()
        # Eager creation: lazy lock creation from inside a task can be
        # raced by another rank mid-charge.
        self._once_lock: int = hamster.sync.new_lock()
        self._concurrency = 0

    # -------------------------------------------------------------- startup
    def run(self, main: Callable, args: tuple = ()) -> Any:
        """Thread task structure: one *main thread* on rank 0; all other
        parallelism comes from pthread_create."""
        def entry(env):
            if env.rank != 0:
                return None  # other ranks host created threads only
            me = _Thread(tid=1, rank=0)
            self._threads[1] = me
            self._proc_tid[env.proc.pid] = 1
            try:
                return main(self, *args)
            except _PthreadExit as stop:
                return stop.retval
        results = self.hamster.run_spmd(entry)
        return results[0]

    # ------------------------------------------------------ thread lifecycle
    def pthread_create(self, start_routine: Callable, arg: Any = None,
                       attr: Optional[PthreadAttr] = None) -> int:
        """Create a thread; executes the creation on the node where the
        thread will run (forwarded when remote). Returns the new tid."""
        attr = attr or PthreadAttr()
        if attr.node is not None:
            rank = attr.node
        else:
            rank = next(self._next_rank) % self._nranks()
        tid = next(self._tids)
        self.fwd.invoke(rank, "create", tid, rank, start_routine, arg,
                        attr.detachstate == PTHREAD_CREATE_DETACHED)
        return tid

    def _do_create(self, tid: int, rank: int, start_routine: Callable,
                   arg: Any, detached: bool) -> int:
        thread = _Thread(tid=tid, rank=rank, detached=detached)
        self._threads[tid] = thread

        def body() -> Any:
            proc = self.hamster.engine.require_process()
            self._proc_tid[proc.pid] = tid
            try:
                thread.retval = start_routine(arg)
            except _PthreadExit as stop:
                thread.retval = stop.retval
            finally:
                thread.finished = True
                self._proc_tid.pop(proc.pid, None)
            return thread.retval

        thread.handle = self.hamster.task.spawn_local(rank, body,
                                                      name=f"pthread{tid}")
        return tid

    def pthread_exit(self, retval: Any = None) -> None:
        raise _PthreadExit(retval)

    def pthread_join(self, tid: int) -> Tuple[int, Any]:
        """Join; forwarded to the node hosting the target thread. Returns
        (0, retval) POSIX-style."""
        thread = self._thread(tid)
        if thread.detached:
            return EINVAL, None
        retval = self.fwd.invoke(thread.rank, "join", tid)
        self._threads.pop(tid, None)
        return 0, retval

    def _do_join(self, tid: int) -> Any:
        thread = self._thread(tid)
        if thread.handle is not None:
            self.hamster.task.join(thread.handle)
        return PTHREAD_CANCELED if thread.cancel_requested and thread.finished \
            and thread.retval is None and thread.cancel_state == PTHREAD_CANCEL_ENABLE \
            else thread.retval

    def pthread_detach(self, tid: int) -> int:
        self._thread(tid).detached = True
        return 0

    def pthread_self(self) -> int:
        proc = self.hamster.engine.require_process()
        return self._proc_tid.get(proc.pid, 0)

    def pthread_equal(self, a: int, b: int) -> bool:
        return a == b

    def pthread_once(self, once_control: str, init_routine: Callable) -> int:
        self.hamster.sync.lock(self._once_lock)
        try:
            if once_control not in self._once_done:
                self._once_done.add(once_control)
                init_routine()
        finally:
            self.hamster.sync.unlock(self._once_lock)
        return 0

    def pthread_cancel(self, tid: int) -> int:
        """Deferred cancellation: marks the thread; it terminates at its
        next cancellation point (pthread_testcancel)."""
        self._thread(tid).cancel_requested = True
        return 0

    def pthread_testcancel(self) -> None:
        tid = self.pthread_self()
        thread = self._threads.get(tid)
        if (thread is not None and thread.cancel_requested
                and thread.cancel_state == PTHREAD_CANCEL_ENABLE):
            raise _PthreadExit(PTHREAD_CANCELED)

    def pthread_setcancelstate(self, state: int) -> int:
        thread = self._threads.get(self.pthread_self())
        if thread is None or state not in (PTHREAD_CANCEL_ENABLE, PTHREAD_CANCEL_DISABLE):
            return EINVAL
        thread.cancel_state = state
        return 0

    def sched_yield(self) -> int:
        self.hamster.engine.require_process().hold(1e-6)
        return 0

    # ----------------------------------------------------------------- attrs
    def pthread_attr_init(self) -> PthreadAttr:
        return PthreadAttr()

    def pthread_attr_destroy(self, attr: PthreadAttr) -> int:
        return 0

    def pthread_attr_setdetachstate(self, attr: PthreadAttr, state: int) -> int:
        if state not in (PTHREAD_CREATE_JOINABLE, PTHREAD_CREATE_DETACHED):
            return EINVAL
        attr.detachstate = state
        return 0

    def pthread_attr_getdetachstate(self, attr: PthreadAttr) -> int:
        return attr.detachstate

    def pthread_attr_setnode(self, attr: PthreadAttr, rank: int) -> int:
        """Distributed extension: pin the new thread to a rank."""
        if not (0 <= rank < self._nranks()):
            return EINVAL
        attr.node = rank
        return 0

    def pthread_attr_getnode(self, attr: PthreadAttr) -> Optional[int]:
        return attr.node

    # --------------------------------------------------------------- mutexes
    def pthread_mutex_init(self, kind: int = PTHREAD_MUTEX_NORMAL) -> _Mutex:
        return _Mutex(self.hamster.sync.new_lock(), kind)

    def pthread_mutex_destroy(self, mutex: _Mutex) -> int:
        return EBUSY if mutex.owner is not None else 0

    def pthread_mutex_lock(self, mutex: _Mutex) -> int:
        tid = self.pthread_self()
        if mutex.kind == PTHREAD_MUTEX_RECURSIVE and mutex.owner == tid:
            mutex.depth += 1
            return 0
        self.hamster.sync.lock(mutex.lock_id)
        mutex.owner, mutex.depth = tid, 1
        return 0

    def pthread_mutex_trylock(self, mutex: _Mutex) -> int:
        tid = self.pthread_self()
        if mutex.kind == PTHREAD_MUTEX_RECURSIVE and mutex.owner == tid:
            mutex.depth += 1
            return 0
        if self.hamster.sync.try_lock(mutex.lock_id):
            mutex.owner, mutex.depth = tid, 1
            return 0
        return EBUSY

    def pthread_mutex_unlock(self, mutex: _Mutex) -> int:
        if mutex.owner != self.pthread_self():
            return EINVAL
        mutex.depth -= 1
        if mutex.depth == 0:
            mutex.owner = None
            self.hamster.sync.unlock(mutex.lock_id)
        return 0

    def pthread_mutexattr_init(self) -> dict:
        return {"type": PTHREAD_MUTEX_NORMAL}

    def pthread_mutexattr_destroy(self, attr: dict) -> int:
        return 0

    def pthread_mutexattr_settype(self, attr: dict, kind: int) -> int:
        if kind not in (PTHREAD_MUTEX_NORMAL, PTHREAD_MUTEX_RECURSIVE):
            return EINVAL
        attr["type"] = kind
        return 0

    def pthread_mutexattr_gettype(self, attr: dict) -> int:
        return attr["type"]

    # ------------------------------------------------------------ conditions
    def pthread_cond_init(self, mutex: _Mutex):
        return self.hamster.sync.new_condition(mutex.lock_id)

    def pthread_cond_destroy(self, cond) -> int:
        return EBUSY if cond._waiters else 0

    def pthread_cond_wait(self, cond, mutex: _Mutex) -> int:
        tid = self.pthread_self()
        mutex.owner = None
        cond.wait()
        mutex.owner, mutex.depth = tid, 1
        return 0

    def pthread_cond_timedwait(self, cond, mutex: _Mutex, timeout: float) -> int:
        tid = self.pthread_self()
        mutex.owner = None
        signaled = cond.wait(timeout=timeout)
        mutex.owner, mutex.depth = tid, 1
        return 0 if signaled else ETIMEDOUT

    def pthread_cond_signal(self, cond) -> int:
        cond.signal()
        return 0

    def pthread_cond_broadcast(self, cond) -> int:
        cond.broadcast()
        return 0

    def pthread_condattr_init(self) -> dict:
        return {}

    def pthread_condattr_destroy(self, attr: dict) -> int:
        return 0

    # -------------------------------------------------------- thread-specific
    def pthread_key_create(self) -> int:
        key = next(self._keys)
        self._live_keys.add(key)
        return key

    def pthread_key_delete(self, key: int) -> int:
        if key not in self._live_keys:
            return EINVAL
        self._live_keys.discard(key)
        for thread in self._threads.values():
            thread.specific.pop(key, None)
        return 0

    def pthread_setspecific(self, key: int, value: Any) -> int:
        if key not in self._live_keys:
            return EINVAL
        self._thread(self.pthread_self()).specific[key] = value
        return 0

    def pthread_getspecific(self, key: int) -> Any:
        thread = self._threads.get(self.pthread_self())
        return None if thread is None else thread.specific.get(key)

    # ----------------------------------------------------------------- rwlock
    def pthread_rwlock_init(self) -> dict:
        mutex = self.pthread_mutex_init()
        return {"mutex": mutex, "cond": self.pthread_cond_init(mutex),
                "readers": 0, "writer": False}

    def pthread_rwlock_destroy(self, rw: dict) -> int:
        return EBUSY if rw["readers"] or rw["writer"] else 0

    def pthread_rwlock_rdlock(self, rw: dict) -> int:
        self.pthread_mutex_lock(rw["mutex"])
        while rw["writer"]:
            self.pthread_cond_wait(rw["cond"], rw["mutex"])
        rw["readers"] += 1
        self.pthread_mutex_unlock(rw["mutex"])
        return 0

    def pthread_rwlock_tryrdlock(self, rw: dict) -> int:
        if self.pthread_mutex_trylock(rw["mutex"]) != 0:
            return EBUSY
        try:
            if rw["writer"]:
                return EBUSY
            rw["readers"] += 1
            return 0
        finally:
            self.pthread_mutex_unlock(rw["mutex"])

    def pthread_rwlock_wrlock(self, rw: dict) -> int:
        self.pthread_mutex_lock(rw["mutex"])
        while rw["writer"] or rw["readers"]:
            self.pthread_cond_wait(rw["cond"], rw["mutex"])
        rw["writer"] = True
        self.pthread_mutex_unlock(rw["mutex"])
        return 0

    def pthread_rwlock_trywrlock(self, rw: dict) -> int:
        if self.pthread_mutex_trylock(rw["mutex"]) != 0:
            return EBUSY
        try:
            if rw["writer"] or rw["readers"]:
                return EBUSY
            rw["writer"] = True
            return 0
        finally:
            self.pthread_mutex_unlock(rw["mutex"])

    def pthread_rwlock_unlock(self, rw: dict) -> int:
        self.pthread_mutex_lock(rw["mutex"])
        if rw["writer"]:
            rw["writer"] = False
        elif rw["readers"]:
            rw["readers"] -= 1
        else:
            self.pthread_mutex_unlock(rw["mutex"])
            return EINVAL
        self.pthread_cond_broadcast(rw["cond"])
        self.pthread_mutex_unlock(rw["mutex"])
        return 0

    # ---------------------------------------------------------------- barrier
    def pthread_barrier_init(self, count: int) -> dict:
        if count < 1:
            raise ModelError("pthread_barrier_init: count must be >= 1")
        mutex = self.pthread_mutex_init()
        return {"mutex": mutex, "cond": self.pthread_cond_init(mutex),
                "count": count, "arrived": 0, "generation": 0}

    def pthread_barrier_destroy(self, bar: dict) -> int:
        return EBUSY if bar["arrived"] else 0

    def pthread_barrier_wait(self, bar: dict) -> int:
        """Returns PTHREAD_BARRIER_SERIAL_THREAD (-1) for one waiter."""
        self.pthread_mutex_lock(bar["mutex"])
        gen = bar["generation"]
        bar["arrived"] += 1
        if bar["arrived"] == bar["count"]:
            bar["arrived"] = 0
            bar["generation"] += 1
            self.pthread_cond_broadcast(bar["cond"])
            self.pthread_mutex_unlock(bar["mutex"])
            return -1
        while bar["generation"] == gen:
            self.pthread_cond_wait(bar["cond"], bar["mutex"])
        self.pthread_mutex_unlock(bar["mutex"])
        return 0

    def pthread_barrierattr_init(self) -> dict:
        return {}

    def pthread_barrierattr_destroy(self, attr: dict) -> int:
        return 0

    # ----------------------------------------------------------- concurrency
    def pthread_getconcurrency(self) -> int:
        return self._concurrency

    def pthread_setconcurrency(self, level: int) -> int:
        if level < 0:
            return EINVAL
        self._concurrency = level
        return 0

    # ------------------------------------------------------------- internals
    def _thread(self, tid: int) -> _Thread:
        try:
            return self._threads[tid]
        except KeyError:
            raise ModelError(f"unknown thread id {tid}") from None
