"""ANL macros (Table 2, row 3).

The Argonne National Laboratory PARMACS macro set used by the SPLASH codes
(MAIN_ENV, CREATE, G_MALLOC, LOCK, BARRIER, GETSUB, ...). Each macro is a
one-to-few-line mapping onto a HAMSTER service — 7.3 lines/call in the
paper, the classic example of a macro package riding a complete service
layer.

Macro names keep their historic upper-case spelling; DEC/INIT pairs return/
take handle integers exactly like the C macros' declared objects.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.models.base import ProgrammingModel

__all__ = ["AnlMacros"]


class AnlMacros(ProgrammingModel):
    """SPLASH-style ANL macro package."""

    MODEL_NAME = "ANL macros"
    CONSISTENCY = "release"
    API_CALLS = (
        "MAIN_INITENV", "MAIN_END",
        "CREATE", "WAIT_FOR_END",
        "G_MALLOC", "G_MALLOC_ARRAY", "G_FREE",
        "LOCKDEC", "LOCKINIT", "LOCK", "UNLOCK", "ALOCKDEC", "ALOCK", "AULOCK",
        "BARDEC", "BARINIT", "BARRIER",
        "GSDEC", "GSINIT", "GETSUB",
        "CLOCK",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self._children: list = []
        self._counters: Dict[int, Dict[str, int]] = {}
        self._next_handle = 1

    # ------------------------------------------------------------- lifecycle
    def MAIN_INITENV(self) -> None:
        """Environment setup at the top of main()."""
        self.hamster.sync.barrier()

    def MAIN_END(self) -> None:
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()

    def CREATE(self, fn: Callable, *args: Any) -> int:
        """Start a worker on the next rank (SPLASH's process-creation macro).

        In the SPMD template all ranks already exist, so CREATE under
        HAMSTER spawns an *additional* task via the Task Management module,
        placed round-robin.
        """
        rank = len(self._children) % self._nranks()
        handle = self.hamster.task.spawn_local(rank, fn, args=args,
                                               name=f"anl.worker{len(self._children)}")
        self._children.append(handle)
        return handle.tid

    def WAIT_FOR_END(self, n: Optional[int] = None) -> None:
        """Join the last ``n`` created workers (all by default)."""
        children = self._children if n is None else self._children[-n:]
        for handle in children:
            self.hamster.task.join(handle)
        del self._children[:]

    # ---------------------------------------------------------------- memory
    def G_MALLOC(self, nbytes: int, name: str = ""):
        return self.hamster.memory.alloc_collective(nbytes, name=name)

    def G_MALLOC_ARRAY(self, shape: Sequence[int], dtype: Any = np.float64,
                       name: str = ""):
        return self.hamster.memory.alloc_array_collective(shape, dtype=dtype,
                                                          name=name)

    def G_FREE(self, target) -> None:
        self.hamster.memory.free(target)

    # ----------------------------------------------------------------- locks
    def LOCKDEC(self) -> int:
        return self.hamster.sync.new_lock()

    def LOCKINIT(self, lock_handle: int) -> None:
        """Lock initialization is implicit in HAMSTER; kept for API parity."""

    def LOCK(self, lock_handle: int) -> None:
        self.hamster.sync.lock(lock_handle)

    def UNLOCK(self, lock_handle: int) -> None:
        self.hamster.sync.unlock(lock_handle)

    def ALOCKDEC(self, n: int) -> list:
        """Array-of-locks declaration."""
        return [self.hamster.sync.new_lock() for _ in range(n)]

    def ALOCK(self, locks: list, index: int) -> None:
        self.hamster.sync.lock(locks[index])

    def AULOCK(self, locks: list, index: int) -> None:
        self.hamster.sync.unlock(locks[index])

    # --------------------------------------------------------------- barriers
    def BARDEC(self) -> int:
        handle = self._next_handle
        self._next_handle += 1
        return handle

    def BARINIT(self, bar_handle: int) -> None:
        """Barrier initialization is implicit; kept for API parity."""

    def BARRIER(self, bar_handle: int = 0, n: Optional[int] = None) -> None:
        self.hamster.sync.barrier()

    # -------------------------------------------- self-scheduling (GETSUB)
    def GSDEC(self) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._counters[handle] = {"lock": self.hamster.sync.new_lock(),
                                  "next": 0, "limit": 0}
        return handle

    def GSINIT(self, gs_handle: int, limit: int = 0) -> None:
        counter = self._gs(gs_handle)
        counter["next"] = 0
        counter["limit"] = limit

    def GETSUB(self, gs_handle: int, limit: Optional[int] = None) -> int:
        """Fetch the next loop index from a shared self-scheduling counter;
        returns -1 when the iteration space is exhausted."""
        counter = self._gs(gs_handle)
        if limit is not None:
            counter["limit"] = limit
        self.hamster.sync.lock(counter["lock"])
        try:
            if counter["next"] >= counter["limit"]:
                return -1
            index = counter["next"]
            counter["next"] += 1
            return index
        finally:
            self.hamster.sync.unlock(counter["lock"])

    def _gs(self, handle: int) -> dict:
        try:
            return self._counters[handle]
        except KeyError:
            raise ModelError(f"unknown GETSUB counter handle {handle}") from None

    # ---------------------------------------------------------------- timing
    def CLOCK(self) -> float:
        return self.hamster.timing.wtime()
