"""Native JiaJia binding — the Figure 2 baseline.

Byte-identical API surface to :class:`repro.models.jiajia_api.JiaJiaApi`,
but bound *directly* to the JiaJia DSM: no HAMSTER service dispatch (only
the thin native wrapper cost per call), and the DSM runs its own stand-alone
messaging stack (build it from the ``native-jiajia-*`` presets, which set
``integrated_messaging=False``).

This class is deliberately outside Table 2's measurement set: it represents
the *unmodified standard distribution of JiaJia*, not a HAMSTER programming
model.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.memory.layout import Distribution

__all__ = ["NativeJiaJiaApi"]


class NativeJiaJiaApi:
    """jia_* calls straight onto the DSM substrate."""

    MODEL_NAME = "JiaJia (native)"

    def __init__(self, hamster) -> None:
        # The native build still receives the assembled platform object for
        # startup/teardown convenience, but the data path below never enters
        # the HAMSTER modules.
        self.hamster = hamster
        self.dsm = hamster.dsm
        if self.dsm.kind != "jiajia":
            raise ModelError("the native JiaJia binding needs the jiajia DSM")
        self._params = hamster.params
        # Collective-allocation rendezvous (JiaJia's own global alloc).
        self._alloc_seq: dict = {}
        self._alloc_results: dict = {}

    # ------------------------------------------------------------- plumbing
    def _charge(self) -> None:
        """Thin native-wrapper cost per API call."""
        rank = self.dsm.current_rank()
        self.hamster.cluster.node(self.dsm.node_of(rank)).cpu_time(
            self._params.native_call_overhead)

    def _charge_g(self):
        """Generator kernel of :meth:`_charge` (``yield from`` it)."""
        rank = self.dsm.current_rank()
        return self.hamster.cluster.node(self.dsm.node_of(rank)).cpu_time_g(
            self._params.native_call_overhead)

    def run(self, main: Callable, args: tuple = ()) -> List[Any]:
        if inspect.isgeneratorfunction(main):
            api = self

            def shim(env, *a):
                return (yield from main(api, *a))

            return self.hamster.run_spmd(shim, args=args)
        return self.hamster.run_spmd(lambda env, *a: main(self, *a), args=args)

    # ------------------------------------------------------------------ api
    def jia_init(self) -> tuple:
        self._charge()
        return self.dsm.current_rank(), self.dsm.n_procs

    def jia_init_g(self):
        yield from self._charge_g()
        return self.dsm.current_rank(), self.dsm.n_procs

    def jia_exit(self) -> None:
        self._charge()
        self.dsm.barrier()

    def jia_exit_g(self):
        yield from self._charge_g()
        yield from self.dsm.barrier_g()

    def jia_alloc(self, nbytes: int, distribution: Optional[Distribution] = None):
        self._charge()
        return self._collective(lambda: self.dsm.allocate(nbytes, distribution=distribution))

    def jia_alloc_g(self, nbytes: int, distribution: Optional[Distribution] = None):
        yield from self._charge_g()
        return (yield from self._collective_g(
            lambda: self.dsm.allocate(nbytes, distribution=distribution)))

    def jia_alloc_array(self, shape: Sequence[int], dtype: Any = np.float64,
                        name: str = "", distribution: Optional[Distribution] = None):
        self._charge()
        return self._collective(lambda: self.dsm.make_array(
            shape, dtype=dtype, name=name, distribution=distribution))

    def jia_alloc_array_g(self, shape: Sequence[int], dtype: Any = np.float64,
                          name: str = "",
                          distribution: Optional[Distribution] = None):
        yield from self._charge_g()
        return (yield from self._collective_g(lambda: self.dsm.make_array(
            shape, dtype=dtype, name=name, distribution=distribution)))

    def _collective(self, make):
        rank = self.dsm.current_rank()
        seq = self._alloc_seq.get(rank, 0)
        self._alloc_seq[rank] = seq + 1
        if seq not in self._alloc_results:
            self._alloc_results[seq] = make()
        self.dsm.barrier()
        return self._alloc_results[seq]

    def _collective_g(self, make):
        # ``make`` is host-side (pure allocation, no virtual-time cost);
        # only the rendezvous barrier blocks.
        rank = self.dsm.current_rank()
        seq = self._alloc_seq.get(rank, 0)
        self._alloc_seq[rank] = seq + 1
        if seq not in self._alloc_results:
            self._alloc_results[seq] = make()
        yield from self.dsm.barrier_g()
        return self._alloc_results[seq]

    def jia_lock(self, lock_id: int) -> None:
        self._charge()
        self.dsm.lock(lock_id)

    def jia_lock_g(self, lock_id: int):
        yield from self._charge_g()
        yield from self.dsm.lock_g(lock_id)

    def jia_unlock(self, lock_id: int) -> None:
        self._charge()
        self.dsm.unlock(lock_id)

    def jia_unlock_g(self, lock_id: int):
        yield from self._charge_g()
        yield from self.dsm.unlock_g(lock_id)

    def jia_barrier(self) -> None:
        self._charge()
        self.dsm.barrier()

    def jia_barrier_g(self):
        yield from self._charge_g()
        yield from self.dsm.barrier_g()

    def jia_wtime(self) -> float:
        self._charge()
        return self.hamster.engine.now

    def jia_wtime_g(self):
        yield from self._charge_g()
        return self.hamster.engine.now
