"""Cray shmem put/get API (Table 2, row 9).

One-sided communication over the shared memory abstraction. The shmem model
is *symmetric*: every PE owns an instance of each symmetric allocation, and
``shmem_put``/``shmem_get`` address the instance of a chosen remote PE
directly. We realize the symmetric heap as a shared array with one slab per
PE, homed block-wise so that PE *p*'s slab lives on *p*'s node — a put then
becomes a remote write to the target's home pages (hardware transactions on
the hybrid DSM; fetch/diff traffic on the SW-DSM, flushed eagerly because
one-sided semantics require remote completion).

Includes the classic collectives (sum/max reductions, broadcast, collect),
atomics, and point-to-point synchronization (wait/fence/quiet).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.memory.layout import explicit
from repro.models.base import ProgrammingModel

__all__ = ["ShmemApi", "SymmetricArray"]


class SymmetricArray:
    """One symmetric allocation: per-PE slabs of identical shape."""

    def __init__(self, backing, n_pes: int, shape: Tuple[int, ...]) -> None:
        self._backing = backing  # SharedArray of shape (n_pes, *shape)
        self.n_pes = n_pes
        self.shape = shape

    def _slab_index(self, pe: int, index: Any) -> tuple:
        if not isinstance(index, tuple):
            index = (index,)
        return (pe,) + index

    def read(self, pe: int, index: Any = slice(None)):
        return self._backing[self._slab_index(pe, index)]

    def write(self, pe: int, index: Any, value: Any) -> None:
        self._backing[self._slab_index(pe, index)] = value

    def refresh(self, pe: int, index: Any = slice(None)) -> None:
        self._backing.refresh(self._slab_index(pe, index))


class ShmemApi(ProgrammingModel):
    """shmem_* calls over HAMSTER services."""

    MODEL_NAME = "Cray put/get (shmem) API"
    CONSISTENCY = "release"
    API_CALLS = (
        "start_pes", "shmem_my_pe", "shmem_n_pes", "shmem_finalize",
        "shmem_malloc", "shmem_free",
        "shmem_put", "shmem_get", "shmem_put64", "shmem_get64",
        "shmem_put32", "shmem_get32", "shmem_putmem", "shmem_getmem",
        "shmem_p", "shmem_g",
        "shmem_barrier_all", "shmem_fence", "shmem_quiet",
        "shmem_wait", "shmem_wait_until",
        "shmem_swap", "shmem_int_finc", "shmem_int_fadd",
        "shmem_int_sum_to_all", "shmem_double_sum_to_all",
        "shmem_double_max_to_all", "shmem_broadcast", "shmem_collect",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        # Created eagerly in launcher context: lazy creation from inside a
        # task could be raced by another rank mid-charge.
        self._atomic_lock: int = hamster.sync.new_lock()

    # -------------------------------------------------------------- lifecycle
    def start_pes(self, npes: int = 0) -> None:
        """PE startup; ``npes`` is advisory as in the Cray API."""
        if npes and npes != self._nranks():
            raise ModelError(
                f"start_pes({npes}) does not match the job width {self._nranks()}")
        self.hamster.sync.barrier()

    def shmem_my_pe(self) -> int:
        return self.hamster.task.my_rank()

    def shmem_n_pes(self) -> int:
        return self.hamster.task.n_tasks()

    def shmem_finalize(self) -> None:
        self.shmem_quiet()
        self.hamster.sync.barrier()

    # --------------------------------------------------------- symmetric heap
    def shmem_malloc(self, shape: Sequence[int], dtype: Any = np.float64,
                     name: str = "sym") -> SymmetricArray:
        """Symmetric allocation: every PE gets a same-shaped slab homed on
        its own node (collective, like the C symmetric heap discipline)."""
        n = self._nranks()
        shape = tuple(int(s) for s in shape)
        slab_bytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        page = self.hamster.params.page_size
        pages_per_slab = max(1, (slab_bytes + page - 1) // page)
        # Pad each slab to whole pages so slab p starts on a page boundary
        # and can be homed on PE p exactly.
        padded = pages_per_slab * page
        per_row = padded // np.dtype(dtype).itemsize
        homes = [p for p in range(n) for _ in range(pages_per_slab)]
        backing = self.hamster.memory.alloc_array_collective(
            (n, per_row), dtype=dtype, name=name, distribution=explicit(homes))
        flat = int(np.prod(shape))
        sym = SymmetricArray(_Reshaper(backing, shape, flat), n, shape)
        return sym

    def shmem_free(self, sym: SymmetricArray) -> None:
        self.hamster.memory.free(sym._backing.backing)

    # ----------------------------------------------------------------- rma
    def shmem_put(self, sym: SymmetricArray, index: Any, value: Any, pe: int) -> None:
        """Write ``value`` into PE ``pe``'s slab at ``index``; remotely
        complete before returning (one-sided semantics)."""
        sym.write(pe, index, value)
        self.hamster.consistency.fence()

    def shmem_get(self, sym: SymmetricArray, index: Any, pe: int):
        """Read from PE ``pe``'s slab, observing its latest completed puts."""
        sym.refresh(pe, index)
        return sym.read(pe, index)

    def shmem_put64(self, sym: SymmetricArray, index: Any, value: Any, pe: int) -> None:
        self.shmem_put(sym, index, value, pe)

    def shmem_get64(self, sym: SymmetricArray, index: Any, pe: int):
        return self.shmem_get(sym, index, pe)

    def shmem_put32(self, sym: SymmetricArray, index: Any, value: Any, pe: int) -> None:
        self.shmem_put(sym, index, value, pe)

    def shmem_get32(self, sym: SymmetricArray, index: Any, pe: int):
        return self.shmem_get(sym, index, pe)

    def shmem_putmem(self, sym: SymmetricArray, index: Any, value: Any, pe: int) -> None:
        self.shmem_put(sym, index, value, pe)

    def shmem_getmem(self, sym: SymmetricArray, index: Any, pe: int):
        return self.shmem_get(sym, index, pe)

    def shmem_p(self, sym: SymmetricArray, index: int, value: Any, pe: int) -> None:
        """Single-element put."""
        self.shmem_put(sym, index, value, pe)

    def shmem_g(self, sym: SymmetricArray, index: int, pe: int):
        """Single-element get."""
        arr = self.shmem_get(sym, index, pe)
        return arr if np.isscalar(arr) else np.asarray(arr).reshape(-1)[0]

    # ------------------------------------------------------- synchronization
    def shmem_barrier_all(self) -> None:
        self.hamster.sync.barrier()

    def shmem_fence(self) -> None:
        """Order puts to each PE (completion not required)."""
        self.hamster.consistency.fence()

    def shmem_quiet(self) -> None:
        """Complete all outstanding puts."""
        self.hamster.consistency.fence()

    def shmem_wait(self, sym: SymmetricArray, index: int, not_value: Any) -> Any:
        """Spin until own slab's ``index`` differs from ``not_value``."""
        return self.shmem_wait_until(sym, index, lambda v: v != not_value)

    def shmem_wait_until(self, sym: SymmetricArray, index: int, predicate) -> Any:
        me = self.shmem_my_pe()
        proc = self.hamster.engine.require_process()
        while True:
            sym.refresh(me, index)
            value = self.shmem_g(sym, index, me)
            if predicate(value):
                return value
            proc.hold(5e-6)  # poll interval

    # ---------------------------------------------------------------- atomics
    def _atomic(self) -> int:
        return self._atomic_lock

    def shmem_swap(self, sym: SymmetricArray, index: int, value: Any, pe: int):
        self.hamster.sync.lock(self._atomic())
        try:
            old = self.shmem_g(sym, index, pe)
            sym.write(pe, index, value)
            self.hamster.consistency.fence()
            return old
        finally:
            self.hamster.sync.unlock(self._atomic())

    def shmem_int_finc(self, sym: SymmetricArray, index: int, pe: int) -> int:
        return self.shmem_int_fadd(sym, index, 1, pe)

    def shmem_int_fadd(self, sym: SymmetricArray, index: int, delta: int, pe: int) -> int:
        self.hamster.sync.lock(self._atomic())
        try:
            old = int(self.shmem_g(sym, index, pe))
            sym.write(pe, index, old + delta)
            self.hamster.consistency.fence()
            return old
        finally:
            self.hamster.sync.unlock(self._atomic())

    # ------------------------------------------------------------ collectives
    def _reduce(self, sym: SymmetricArray, index: Any, op: str):
        """All-reduce over all PEs' slabs at ``index`` (barrier-bracketed)."""
        self.hamster.sync.barrier()
        values = [np.asarray(self.shmem_get(sym, index, pe))
                  for pe in range(self.shmem_n_pes())]
        # Everyone must finish reading the inputs before anyone overwrites
        # its slab with the result.
        self.hamster.sync.barrier()
        stacked = np.stack(values)
        if op == "sum":
            result = stacked.sum(axis=0)
        elif op == "max":
            result = stacked.max(axis=0)
        else:
            raise ModelError(f"unknown reduction op {op!r}")
        sym.write(self.shmem_my_pe(), index, result)
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()
        return result

    def shmem_int_sum_to_all(self, sym: SymmetricArray, index: Any = slice(None)):
        return self._reduce(sym, index, "sum")

    def shmem_double_sum_to_all(self, sym: SymmetricArray, index: Any = slice(None)):
        return self._reduce(sym, index, "sum")

    def shmem_double_max_to_all(self, sym: SymmetricArray, index: Any = slice(None)):
        return self._reduce(sym, index, "max")

    def shmem_broadcast(self, sym: SymmetricArray, index: Any, root: int):
        """Copy root's slab section into every PE's slab."""
        self.hamster.sync.barrier()
        data = self.shmem_get(sym, index, root)
        sym.write(self.shmem_my_pe(), index, data)
        self.hamster.consistency.fence()
        self.hamster.sync.barrier()
        return data

    def shmem_collect(self, sym: SymmetricArray, index: Any = slice(None)):
        """Gather all PEs' slab sections; returns the stacked array."""
        self.hamster.sync.barrier()
        out = np.stack([np.asarray(self.shmem_get(sym, index, pe))
                        for pe in range(self.shmem_n_pes())])
        self.hamster.sync.barrier()
        return out


class _Reshaper:
    """Adapter presenting the padded (n_pes, per_row) backing array as
    (n_pes, *shape) slabs."""

    def __init__(self, backing, shape: Tuple[int, ...], flat: int) -> None:
        self.backing = backing
        self.shape = shape
        self.flat = flat

    def _lower(self, index: tuple):
        pe = index[0]
        rest = index[1:]
        if len(self.shape) <= 1:
            # 1-D slabs live directly in the row.
            inner = rest if rest else (slice(0, self.flat),)
            if isinstance(inner[0], slice):
                start, stop, _ = inner[0].indices(self.shape[0] if self.shape else self.flat)
                return (pe, slice(start, stop)), None
            return (pe, inner[0]), None
        # Multi-dim slabs: fall back to whole-row transfers + local reshape.
        return (pe, slice(0, self.flat)), rest

    def __getitem__(self, index: tuple):
        low, rest = self._lower(index)
        data = self.backing[low]
        if rest is None:
            return data
        data = data.reshape(self.shape)
        return data[rest] if rest else data

    def __setitem__(self, index: tuple, value) -> None:
        low, rest = self._lower(index)
        if rest is None:
            self.backing[low] = value
            return
        row = self.backing[low].reshape(self.shape)
        row[rest] = value
        self.backing[low] = row.reshape(-1)

    def refresh(self, index: tuple) -> None:
        low, _ = self._lower(index)
        self.backing.refresh(low)
