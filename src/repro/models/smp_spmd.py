"""SMP/SPMD model (Table 2, row 2).

The SPMD API extended for multiprocessor nodes (§3.3's two-way SMP
integration): models oriented towards process parallelism treat the SMP's
CPUs as separate "nodes" using the startup/memory machinery of the SCI-VM,
while still letting tasks discover which peers are *co-located* so they can
exploit physically shared memory (node-local sub-barriers, cheap intra-node
data exchange).

Adds the node-topology calls on top of the plain SPMD surface.
"""

from __future__ import annotations

from typing import List

from repro.models.spmd import SpmdModel

__all__ = ["SmpSpmdModel"]


class SmpSpmdModel(SpmdModel):
    """SPMD with SMP-node awareness."""

    MODEL_NAME = "SMP/SPMD model"
    CONSISTENCY = "scope"
    API_CALLS = SpmdModel.API_CALLS + (
        "spmd_local_peers", "spmd_is_local", "spmd_local_master",
        "spmd_local_barrier", "spmd_cpus_on_node",
    )

    def __init__(self, hamster) -> None:
        super().__init__(hamster)
        self._local_barriers: dict = {}

    def spmd_local_peers(self) -> List[int]:
        """Ranks sharing the calling task's node (including itself)."""
        dsm = self.hamster.dsm
        me = dsm.node_of(dsm.current_rank())
        return [r for r in range(dsm.n_procs) if dsm.node_of(r) == me]

    def spmd_is_local(self, rank: int) -> bool:
        """True when ``rank`` runs on the calling task's node — its memory
        is physically shared with ours."""
        dsm = self.hamster.dsm
        return dsm.node_of(rank) == dsm.node_of(dsm.current_rank())

    def spmd_local_master(self) -> int:
        """Lowest co-located rank (convention: performs node-level work)."""
        return self.spmd_local_peers()[0]

    def spmd_local_barrier(self) -> None:
        """Barrier among co-located ranks only — native OS synchronization,
        no network traffic."""
        from repro.sim.resources import SimBarrier

        peers = tuple(self.spmd_local_peers())
        if len(peers) == 1:
            return
        if peers not in self._local_barriers:
            self._local_barriers[peers] = SimBarrier(
                self.hamster.engine, len(peers), name=f"smp.local{peers[0]}")
        node = self.hamster.cluster.node(
            self.hamster.dsm.node_of(self.hamster.dsm.current_rank()))
        node.cpu_time(self.hamster.params.os_sync_cost)
        self._local_barriers[peers].wait()

    def spmd_cpus_on_node(self, node_id: int = -1) -> int:
        if node_id < 0:
            node_id = self.hamster.cluster_ctl.my_node()
        return self.hamster.cluster_ctl.node_params(node_id)["n_cpus"]
