"""Worker protocol for the experiment fabric.

A worker process runs :func:`worker_main` over two queues: it takes
:class:`Job` objects off the (bounded) job queue and answers on the
result queue with tagged tuples::

    ("start", index, None,   pid)   # picked the job up (arms the timeout)
    ("beat",  index, prog,   pid)   # in-cell progress heartbeat
    ("done",  index, record, pid)   # cell executed, record attached
    ("fail",  index, detail, pid)   # cell raised a typed error
    ("bye",   index, None,   pid)   # saw the shutdown sentinel (None job)

``prog`` is ``{"events_executed": int, "virtual_seconds": float}`` —
the engine counters of the cell being executed, sampled from a periodic
host-side hook in the sim engine (:func:`repro.sim.engine.set_host_hook`)
and throttled to at most one message per ``heartbeat`` host seconds.
Heartbeats let the scheduler distinguish a *slow* cell from a *stuck*
one and record progress-at-kill when a timeout fires; they read counters
only and never touch virtual time, so results stay bit-identical with
heartbeats on or off.

The scheduler (:mod:`repro.fabric.scheduler`) owns retries, timeouts,
and crash recovery; the worker itself is deliberately dumb. Anything a
cell raises is reported as a ``fail`` message — only a *dying worker
process* (signal, hard crash, timeout kill) is recovered by the
scheduler respawning the worker and re-queueing its job.

:func:`execute_cell` is the single execution path for a cell: the serial
sweep mode, the parallel workers, and the parity tests all call it, so
a cell's virtual-time result cannot depend on where it ran.
"""

from __future__ import annotations

import os
import queue as _queue_mod
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import repro.fabric.faultpoints as faultpoints
from repro.fabric.gridspec import Scenario

__all__ = ["Job", "CellFailed", "execute_cell", "install_heartbeat",
           "worker_main", "CRASH_FLAG_ENV", "HOOK_EVERY_EVENTS"]

#: Legacy spelling of the ``worker-cell-start`` fault point
#: (:mod:`repro.fabric.faultpoints`): when set to a path, a worker
#: hard-exits (os._exit) before executing its next cell unless the flag
#: file already exists — the file is created first, so exactly one crash
#: happens and the retry succeeds. New code should arm
#: ``faultpoints.WORKER_CELL_START`` instead; both spellings exercise
#: the same recovery path.
CRASH_FLAG_ENV = "REPRO_FABRIC_CRASH_FLAG"

#: The engine host hook fires every this-many dispatched events; the
#: heartbeat interval (host seconds) then throttles actual messages.
#: Small enough to bound heartbeat latency on slow cells, large enough
#: to keep the per-event cost of an armed hook unmeasurable.
HOOK_EVERY_EVENTS = 2048


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a cell plus its content address."""

    index: int
    key: str
    scenario: Scenario
    attempt: int = 1


class CellFailed(Exception):
    """Typed per-cell failure recorded in the manifest.

    A failed cell never aborts the sweep: the scheduler converts crashes
    (after one retry), timeouts, and cell-level exceptions into this
    outcome and carries on with the rest of the grid.
    """

    def __init__(self, cell_id: str, kind: str, detail: str) -> None:
        super().__init__(f"{cell_id}: {kind}: {detail}")
        self.cell_id = cell_id
        #: "error" | "crash" | "timeout"
        self.kind = kind
        self.detail = detail


def execute_cell(scenario: Scenario, suite: str = "sweep") -> Dict[str, Any]:
    """Run one cell and return its telemetry record.

    The record is exactly what :func:`repro.bench.telemetry.run_unit`
    produces — schema-valid, baseline-comparable — with the ``id``
    rewritten to the cell id so swept variants of one preset/label pair
    stay distinguishable inside one document.
    """
    from repro.bench.telemetry import run_unit

    faults: Optional[Any] = None
    if scenario.faults is not None:
        from repro.faults import FaultPlan

        faults = FaultPlan.loads(scenario.faults)
    record = run_unit(scenario.preset, scenario.label, scenario.scale,
                      native=scenario.native, repeat=scenario.repeat,
                      suite=suite, overrides=dict(scenario.overrides),
                      faults=faults, nodes=scenario.nodes)
    record["id"] = scenario.cell_id()
    return record


def install_heartbeat(emit: Callable[[int, float], None],
                      interval: float) -> None:
    """Arm the process-wide engine hook behind worker/serial heartbeats.

    ``emit(events_executed, virtual_seconds)`` is called from the engine
    dispatch loop, at most once per ``interval`` host seconds, for every
    engine built in this process afterwards. Pair with
    :func:`repro.sim.engine.clear_host_hook` in a ``finally``.
    """
    from repro.sim.engine import set_host_hook

    if interval <= 0:
        raise ValueError(f"heartbeat interval must be > 0, got {interval}")
    last = [0.0]

    def hook(engine: Any) -> None:
        now = time.monotonic()
        if now - last[0] >= interval:
            last[0] = now
            emit(engine.events_executed, engine.now)

    set_host_hook(hook, every_events=HOOK_EVERY_EVENTS)


def _maybe_crash_for_test() -> None:
    flag = os.environ.get(CRASH_FLAG_ENV)
    if flag and not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8"):
            pass
        os._exit(faultpoints.FAULTPOINT_EXIT)  # hard death, no cleanup
    faultpoints.maybe_crash(faultpoints.WORKER_CELL_START)


def worker_main(job_q: Any, result_q: Any, suite: str = "sweep",
                heartbeat: Optional[float] = None) -> None:
    """Worker process entry point: drain jobs until the None sentinel.

    With ``heartbeat`` set, a periodic engine hook reports the running
    cell's progress as ``("beat", index, prog, pid)`` messages at most
    every ``heartbeat`` host seconds.

    Workers ignore SIGINT: a terminal Ctrl-C lands on the whole process
    group, and graceful shutdown means the *orchestrator* decides —
    in-flight cells drain to completion unless it escalates (SIGTERM
    from the scheduler's kill path still works).

    An idle worker polls the queue and checks that its parent is still
    alive between polls: if the orchestrator is SIGKILL'd (so neither
    the sentinel nor multiprocessing's daemon cleanup ever arrives),
    the orphaned worker exits on its own instead of blocking on the job
    queue forever and pinning the inherited pipes open.
    """
    import signal as _signal

    try:
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — non-main thread
        pass
    pid = os.getpid()
    parent = os.getppid()
    current: Dict[str, int] = {"index": -1}
    if heartbeat is not None:
        def emit(events: int, virtual: float) -> None:
            if current["index"] >= 0:
                result_q.put(("beat", current["index"],
                              {"events_executed": int(events),
                               "virtual_seconds": float(virtual)}, pid))

        install_heartbeat(emit, heartbeat)
    while True:
        try:
            job = job_q.get(timeout=1.0)
        except _queue_mod.Empty:
            if os.getppid() != parent:   # orphaned: orchestrator is gone
                return
            continue
        if job is None:
            result_q.put(("bye", -1, None, pid))
            return
        result_q.put(("start", job.index, None, pid))
        current["index"] = job.index
        _maybe_crash_for_test()
        try:
            record = execute_cell(job.scenario, suite=suite)
            current["index"] = -1
            result_q.put(("done", job.index, record, pid))
        except Exception as exc:  # noqa: BLE001 — typed failure, not death
            current["index"] = -1
            result_q.put(("fail", job.index,
                          f"{type(exc).__name__}: {exc}", pid))
