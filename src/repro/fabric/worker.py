"""Worker protocol for the experiment fabric.

A worker process runs :func:`worker_main` over two queues: it takes
:class:`Job` objects off the (bounded) job queue and answers on the
result queue with tagged tuples::

    ("start", index, None,   pid)   # picked the job up (arms the timeout)
    ("done",  index, record, pid)   # cell executed, record attached
    ("fail",  index, detail, pid)   # cell raised a typed error
    ("bye",   index, None,   pid)   # saw the shutdown sentinel (None job)

The scheduler (:mod:`repro.fabric.scheduler`) owns retries, timeouts,
and crash recovery; the worker itself is deliberately dumb. Anything a
cell raises is reported as a ``fail`` message — only a *dying worker
process* (signal, hard crash, timeout kill) is recovered by the
scheduler respawning the worker and re-queueing its job.

:func:`execute_cell` is the single execution path for a cell: the serial
sweep mode, the parallel workers, and the parity tests all call it, so
a cell's virtual-time result cannot depend on where it ran.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.fabric.gridspec import Scenario

__all__ = ["Job", "CellFailed", "execute_cell", "worker_main",
           "CRASH_FLAG_ENV"]

#: Test hook: when set to a path, a worker hard-exits (os._exit) before
#: executing its next cell unless the flag file already exists — the file
#: is created first, so exactly one crash happens and the retry succeeds.
#: This exercises the real crash-recovery path deterministically.
CRASH_FLAG_ENV = "REPRO_FABRIC_CRASH_FLAG"


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a cell plus its content address."""

    index: int
    key: str
    scenario: Scenario
    attempt: int = 1


class CellFailed(Exception):
    """Typed per-cell failure recorded in the manifest.

    A failed cell never aborts the sweep: the scheduler converts crashes
    (after one retry), timeouts, and cell-level exceptions into this
    outcome and carries on with the rest of the grid.
    """

    def __init__(self, cell_id: str, kind: str, detail: str) -> None:
        super().__init__(f"{cell_id}: {kind}: {detail}")
        self.cell_id = cell_id
        #: "error" | "crash" | "timeout"
        self.kind = kind
        self.detail = detail


def execute_cell(scenario: Scenario, suite: str = "sweep") -> Dict[str, Any]:
    """Run one cell and return its telemetry record.

    The record is exactly what :func:`repro.bench.telemetry.run_unit`
    produces — schema-valid, baseline-comparable — with the ``id``
    rewritten to the cell id so swept variants of one preset/label pair
    stay distinguishable inside one document.
    """
    from repro.bench.telemetry import run_unit

    faults: Optional[Any] = None
    if scenario.faults is not None:
        from repro.faults import FaultPlan

        faults = FaultPlan.loads(scenario.faults)
    record = run_unit(scenario.preset, scenario.label, scenario.scale,
                      native=scenario.native, repeat=scenario.repeat,
                      suite=suite, overrides=dict(scenario.overrides),
                      faults=faults, nodes=scenario.nodes)
    record["id"] = scenario.cell_id()
    return record


def _maybe_crash_for_test() -> None:
    flag = os.environ.get(CRASH_FLAG_ENV)
    if flag and not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8"):
            pass
        os._exit(43)  # simulate a hard worker death, bypassing cleanup


def worker_main(job_q: Any, result_q: Any, suite: str = "sweep") -> None:
    """Worker process entry point: drain jobs until the None sentinel."""
    pid = os.getpid()
    while True:
        job = job_q.get()
        if job is None:
            result_q.put(("bye", -1, None, pid))
            return
        result_q.put(("start", job.index, None, pid))
        _maybe_crash_for_test()
        try:
            record = execute_cell(job.scenario, suite=suite)
            result_q.put(("done", job.index, record, pid))
        except Exception as exc:  # noqa: BLE001 — typed failure, not death
            result_q.put(("fail", job.index,
                          f"{type(exc).__name__}: {exc}", pid))
