"""Durable sweep journal: the write-ahead log behind ``sweep resume``.

The scheduler journals every cell state transition to ``journal.jsonl``
using the same append-one-flushed-JSONL-line machinery as the event log
(:mod:`repro.fabric.events`), with one hardening step on top: a
**commit record** — written when a cell reaches a final outcome and its
result is safely in the content-addressed cache — is ``fsync``'d before
the scheduler moves on. Kill the orchestrator at any instant (SIGKILL,
OOM, power loss) and the journal still names exactly which cells are
durable; ``sweep resume <dir>`` replays it, restores the committed
outcomes, re-executes only the cells without a commit record, and
produces canonical records byte-identical to an uninterrupted run.

Line 1 is a **header** carrying everything resume needs — the grid spec
itself, the suite, the cache directory, the worker count::

    {"schema": "repro.fabric.journal/1", "suite": ..., "cells": N,
     "workers": W, "cache_dir": ..., "grid": {...GridSpec.to_dict()...}}

Every following line is one entry:

* ``{"kind": "cell", "cell": i, "state": ...}`` — a WAL transition
  (``enqueued`` / ``dispatched`` / ``started`` / ``retried``), flushed
  but not fsync'd: losing the tail costs nothing but narration;
* ``{"kind": "commit", "cell": i, "outcome": {...CellOutcome...}}`` —
  flushed **and fsync'd**; the cell's result is durable from here on;
* ``{"kind": "status", "status": "complete" | "interrupted" |
  "aborted"}`` — the sweep's terminal state, fsync'd.

:func:`replay_journal` is deliberately forgiving about the two ways a
crash can mangle the file — a **torn trailing line** (the write syscall
itself was interrupted) is dropped, and **duplicate commit records**
for one cell (a resumed sweep re-committing, or a crash landing between
two writes) resolve last-one-wins — and deliberately strict about
everything else: mid-file garbage or a foreign header raises
:class:`JournalError`, because silently skipping interior corruption
could resurrect a cell state the sweep never reached.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fabric.manifest import CellOutcome

__all__ = ["JOURNAL_SCHEMA", "JournalError", "SweepJournal", "JournalState",
           "replay_journal"]

JOURNAL_SCHEMA = "repro.fabric.journal/1"

#: Terminal sweep states a journal may record.
SWEEP_STATUSES = ("complete", "interrupted", "aborted")


class JournalError(ValueError):
    """A journal that cannot be trusted (foreign schema, interior
    corruption, or a grid mismatch on resume)."""


class SweepJournal:
    """Append-only writer for one sweep's durable journal.

    Use the constructor for a fresh sweep (truncates, writes the
    header) and :meth:`resume` to continue an interrupted journal
    (repairs a torn trailing line, then appends — the single header
    stays line 1 forever).
    """

    def __init__(self, path: str, header: Optional[Dict[str, Any]] = None,
                 _append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if _append:
            self._fh = open(self.path, "a", encoding="utf-8")
            self.header = header or {}
        else:
            self.header = dict(header or {})
            self.header.setdefault("schema", JOURNAL_SCHEMA)
            self.header.setdefault("wall_time",
                                   time.strftime("%Y-%m-%dT%H:%M:%S%z"))
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(self.header)
            self.sync()

    @classmethod
    def for_sweep(cls, path: str, spec: Any, workers: int,
                  cache_dir: str) -> "SweepJournal":
        """Open a fresh journal whose header can later drive ``resume``."""
        return cls(path, header={
            "schema": JOURNAL_SCHEMA,
            "suite": spec.suite,
            "cells": len(spec.expand()),
            "workers": int(workers),
            "cache_dir": str(cache_dir),
            "grid": spec.to_dict(),
        })

    @classmethod
    def resume(cls, path: str) -> "SweepJournal":
        """Reopen an interrupted journal for appending.

        A torn trailing line (partial write at the moment of death) is
        truncated away first, so the next entry starts on a clean line.
        """
        state = replay_journal(path)      # validates header + interior
        if state.torn_bytes is not None:
            with open(path, "r+b") as fh:
                fh.truncate(state.torn_bytes)
        return cls(path, header=state.header, _append=True)

    # ------------------------------------------------------------- writes
    def _write_line(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def transition(self, cell: int, state: str,
                   **fields: Any) -> None:
        """WAL a non-final cell state change (flushed, not fsync'd)."""
        entry: Dict[str, Any] = {"kind": "cell", "cell": int(cell),
                                 "state": state}
        entry.update(fields)
        self._write_line(entry)

    def commit(self, outcome: CellOutcome, sync: bool = True) -> None:
        """Record a cell's final outcome durably (flush + fsync).

        ``sync=False`` defers the fsync — used by the bulk cache-hit
        scan, which writes hundreds of commits and fsyncs once via
        :meth:`sync` instead of once per line.
        """
        self._write_line({"kind": "commit", "cell": outcome.index,
                          "outcome": outcome.to_dict()})
        if sync:
            self.sync()

    def status(self, status: str) -> None:
        """Record the sweep's terminal state (fsync'd)."""
        if status not in SWEEP_STATUSES:
            raise ValueError(f"unknown sweep status {status!r}")
        self._write_line({"kind": "status", "status": status})
        self.sync()

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -------------------------------------------------------------- close
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class JournalState:
    """Everything :func:`replay_journal` reconstructs from a journal."""

    header: Dict[str, Any]
    #: committed cell outcomes by grid index (duplicates: last wins)
    committed: Dict[int, CellOutcome] = field(default_factory=dict)
    #: last recorded terminal status, or None for a killed sweep
    status: Optional[str] = None
    #: byte offset to truncate to when a torn trailing line was found
    #: (None = the file ended cleanly)
    torn_bytes: Optional[int] = None
    #: count of WAL transition lines (narration, not state)
    transitions: int = 0

    def pending(self, total: int) -> List[int]:
        """Grid indices with no commit record — the resume worklist."""
        return [i for i in range(total) if i not in self.committed]

    def counts(self) -> Dict[str, int]:
        """Committed outcomes tallied by kind."""
        out: Dict[str, int] = {}
        for oc in self.committed.values():
            out[oc.outcome] = out.get(oc.outcome, 0) + 1
        return out


def replay_journal(path: str) -> JournalState:
    """Rebuild the durable sweep state from a journal file.

    Replay is **idempotent and prefix-consistent**: any prefix of a
    valid journal yields a state whose committed set is a subset of the
    full replay's, duplicate commit records collapse last-one-wins, and
    a torn final line is dropped (its byte offset is reported so a
    resuming writer can truncate it). A missing/foreign header or a
    corrupt *interior* line raises :class:`JournalError`.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise JournalError(f"cannot read journal: {exc}") from None
    lines: List[bytes] = data.split(b"\n")
    # data ending in "\n" leaves a final empty chunk; a non-empty final
    # chunk is a line with no newline — torn by definition.
    torn_tail = lines[-1] if lines[-1] else None
    lines = lines[:-1]
    if not lines:
        raise JournalError(f"{path}: empty journal (no header line)")
    try:
        header = json.loads(lines[0])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise JournalError(f"{path}: header is not valid JSON: {exc}") \
            from None
    if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"{path}: journal schema must be {JOURNAL_SCHEMA!r}, "
            f"got {header.get('schema') if isinstance(header, dict) else header!r}")
    state = JournalState(header=header)
    if torn_tail is not None:
        state.torn_bytes = len(data) - len(torn_tail)
    for n, raw in enumerate(lines[1:], start=2):
        if not raw.strip():
            continue
        try:
            entry = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if n == len(lines) and torn_tail is None:
                # Final complete-looking line that does not parse: the
                # newline landed but the payload did not — still a torn
                # tail. Truncate from the start of this line.
                state.torn_bytes = len(data) - (len(raw) + 1)
                break
            raise JournalError(
                f"{path}: line {n}: corrupt journal entry: {exc}") from None
        if not isinstance(entry, dict):
            raise JournalError(f"{path}: line {n}: entry must be an object")
        kind = entry.get("kind")
        if kind == "commit":
            try:
                outcome = CellOutcome.from_dict(entry["outcome"])
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalError(
                    f"{path}: line {n}: bad commit record: {exc}") from None
            state.committed[outcome.index] = outcome
        elif kind == "cell":
            state.transitions += 1
        elif kind == "status":
            state.status = entry.get("status")
        # unknown kinds: forward-compatible, ignored
    return state
