"""Sweep manifests: what happened to every cell of a grid.

A :class:`SweepManifest` is the machine-readable receipt of one sweep:
per cell, its id, content address, outcome (``hit`` / ``miss`` /
``failed`` / ``pending``), attempt count, and — for executed cells —
the host seconds and engine events it cost. ``python -m repro sweep
status`` renders a stored manifest; CI's sweep-smoke job asserts on its
counts (a repeated unchanged sweep must be 100% hits with zero
simulated events).

A ``pending`` cell never ran to a final outcome: the sweep was
interrupted (graceful SIGINT/SIGTERM drain) or aborted (the
``--max-failures`` budget tripped) first. The manifest-level ``status``
(``complete`` / ``interrupted`` / ``aborted``) records which, and
``sweep resume`` picks the pending cells back up from the journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["MANIFEST_SCHEMA", "CellOutcome", "SweepManifest"]

MANIFEST_SCHEMA = "repro.fabric.manifest/1"

#: The closed set of per-cell outcomes.
OUTCOMES = ("hit", "miss", "failed", "pending")

#: The closed set of sweep-level terminal states.
STATUSES = ("complete", "interrupted", "aborted")


@dataclass
class CellOutcome:
    """One grid cell's fate."""

    index: int
    id: str
    key: str
    #: "hit" (served from cache), "miss" (executed), "failed" (typed
    #: CellFailed: error / crash after retries / timeout), "pending"
    #: (sweep interrupted/aborted before the cell resolved)
    outcome: str
    attempts: int = 1
    host_seconds: float = 0.0
    events: int = 0
    #: "<kind>: <detail>" for failed cells
    error: Optional[str] = None
    #: last reported in-cell progress for cells that died mid-execution
    #: (timeout kill / crash): {"events_executed": int,
    #: "virtual_seconds": float}. None when the cell finished normally
    #: or no heartbeat ever arrived.
    progress: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        d = {"index": self.index, "id": self.id, "key": self.key,
             "outcome": self.outcome, "attempts": self.attempts,
             "host_seconds": self.host_seconds, "events": self.events,
             "error": self.error}
        if self.progress is not None:
            d["progress"] = self.progress
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CellOutcome":
        return cls(index=int(d["index"]), id=d["id"], key=d["key"],
                   outcome=d["outcome"], attempts=int(d.get("attempts", 1)),
                   host_seconds=float(d.get("host_seconds", 0.0)),
                   events=int(d.get("events", 0)), error=d.get("error"),
                   progress=d.get("progress"))


@dataclass
class SweepManifest:
    """The full receipt of one sweep run."""

    suite: str
    workers: int
    cells: List[CellOutcome] = field(default_factory=list)
    #: total wall seconds of the sweep (queue wait + execution)
    elapsed: float = 0.0
    #: snapshot of ResultCache.stats() at the end of the sweep, so cache
    #: effectiveness is a stored first-class number (None on manifests
    #: written before the stats existed)
    cache: Optional[Dict[str, Any]] = None
    #: how the sweep ended: "complete" (every cell resolved), "interrupted"
    #: (graceful SIGINT/SIGTERM drain), "aborted" (--max-failures tripped)
    status: str = "complete"

    # ------------------------------------------------------------- queries
    def counts(self) -> Dict[str, int]:
        out = {outcome: 0 for outcome in OUTCOMES}
        for cell in self.cells:
            out[cell.outcome] = out.get(cell.outcome, 0) + 1
        return out

    def hit_ratio(self) -> float:
        """Fraction of cells served from the cache (0.0 on an empty grid)."""
        if not self.cells:
            return 0.0
        return self.counts()["hit"] / len(self.cells)

    def simulated_events(self) -> int:
        """Engine events actually executed (hits contribute zero)."""
        return sum(c.events for c in self.cells if c.outcome == "miss")

    def failed_cells(self) -> List[CellOutcome]:
        return [c for c in self.cells if c.outcome == "failed"]

    def pending_cells(self) -> List[CellOutcome]:
        """Cells an interrupted/aborted sweep never resolved."""
        return [c for c in self.cells if c.outcome == "pending"]

    def all_cached(self) -> bool:
        counts = self.counts()
        return (counts["miss"] == 0 and counts["failed"] == 0
                and self.simulated_events() == 0)

    # ------------------------------------------------------------------ io
    def to_dict(self) -> Dict[str, Any]:
        d = {"schema": MANIFEST_SCHEMA, "suite": self.suite,
             "workers": self.workers, "elapsed": self.elapsed,
             "status": self.status,
             "counts": self.counts(),
             "simulated_events": self.simulated_events(),
             "cells": [c.to_dict() for c in self.cells]}
        if self.cache is not None:
            d["cache"] = self.cache
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SweepManifest":
        if d.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"manifest schema must be {MANIFEST_SCHEMA!r}, "
                f"got {d.get('schema')!r}")
        return cls(suite=d["suite"], workers=int(d["workers"]),
                   elapsed=float(d.get("elapsed", 0.0)),
                   cells=[CellOutcome.from_dict(c) for c in d.get("cells", [])],
                   cache=d.get("cache"),
                   status=str(d.get("status", "complete")))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        from repro.tools.export import write_text

        write_text(path, self.dumps())

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -------------------------------------------------------------- render
    def render(self) -> str:
        from repro.bench.report import render_table

        rows = []
        for cell in self.cells:
            error = cell.error or ""
            if cell.progress is not None:
                error += (f" [at kill: {cell.progress['events_executed']} "
                          f"events, "
                          f"{cell.progress['virtual_seconds']:.6f}s virtual]")
            rows.append([cell.id, cell.key[:12], cell.outcome, cell.attempts,
                         f"{cell.host_seconds * 1e3:.1f}", cell.events,
                         error])
        counts = self.counts()
        pending = (f" / {counts['pending']} pending"
                   if counts.get("pending") else "")
        status = f" [{self.status}]" if self.status != "complete" else ""
        title = (f"sweep {self.suite!r}{status}: {len(self.cells)} cells — "
                 f"{counts['hit']} hit / {counts['miss']} miss / "
                 f"{counts['failed']} failed{pending} "
                 f"({100.0 * self.hit_ratio():.0f}% cache hits) — "
                 f"{self.simulated_events()} simulated events, "
                 f"{self.elapsed:.1f}s wall, {self.workers} worker(s)")
        table = render_table(
            ["cell", "key", "outcome", "tries", "host ms", "events", "error"],
            rows, title=title)
        if self.cache is not None:
            table += (f"\ncache: {self.cache.get('hits', 0)} hit(s), "
                      f"{self.cache.get('misses', 0)} miss(es), "
                      f"{self.cache.get('stores', 0)} store(s); "
                      f"{self.cache.get('entries', 0)} entries / "
                      f"{self.cache.get('bytes', 0)} evictable bytes "
                      f"in {self.cache.get('root', '?')}")
            if self.cache.get("quarantined"):
                table += (f"\ncache: {self.cache['quarantined']} corrupt "
                          f"entr(ies) quarantined — run 'sweep fsck'")
        return table
