"""Sweep manifests: what happened to every cell of a grid.

A :class:`SweepManifest` is the machine-readable receipt of one sweep:
per cell, its id, content address, outcome (``hit`` / ``miss`` /
``failed``), attempt count, and — for executed cells — the host seconds
and engine events it cost. ``python -m repro sweep status`` renders a
stored manifest; CI's sweep-smoke job asserts on its counts (a repeated
unchanged sweep must be 100% hits with zero simulated events).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["MANIFEST_SCHEMA", "CellOutcome", "SweepManifest"]

MANIFEST_SCHEMA = "repro.fabric.manifest/1"

#: The closed set of per-cell outcomes.
OUTCOMES = ("hit", "miss", "failed")


@dataclass
class CellOutcome:
    """One grid cell's fate."""

    index: int
    id: str
    key: str
    #: "hit" (served from cache), "miss" (executed), "failed" (typed
    #: CellFailed: error / crash after retry / timeout)
    outcome: str
    attempts: int = 1
    host_seconds: float = 0.0
    events: int = 0
    #: "<kind>: <detail>" for failed cells
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "id": self.id, "key": self.key,
                "outcome": self.outcome, "attempts": self.attempts,
                "host_seconds": self.host_seconds, "events": self.events,
                "error": self.error}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CellOutcome":
        return cls(index=int(d["index"]), id=d["id"], key=d["key"],
                   outcome=d["outcome"], attempts=int(d.get("attempts", 1)),
                   host_seconds=float(d.get("host_seconds", 0.0)),
                   events=int(d.get("events", 0)), error=d.get("error"))


@dataclass
class SweepManifest:
    """The full receipt of one sweep run."""

    suite: str
    workers: int
    cells: List[CellOutcome] = field(default_factory=list)
    #: total wall seconds of the sweep (queue wait + execution)
    elapsed: float = 0.0

    # ------------------------------------------------------------- queries
    def counts(self) -> Dict[str, int]:
        out = {outcome: 0 for outcome in OUTCOMES}
        for cell in self.cells:
            out[cell.outcome] = out.get(cell.outcome, 0) + 1
        return out

    def simulated_events(self) -> int:
        """Engine events actually executed (hits contribute zero)."""
        return sum(c.events for c in self.cells if c.outcome == "miss")

    def failed_cells(self) -> List[CellOutcome]:
        return [c for c in self.cells if c.outcome == "failed"]

    def all_cached(self) -> bool:
        counts = self.counts()
        return (counts["miss"] == 0 and counts["failed"] == 0
                and self.simulated_events() == 0)

    # ------------------------------------------------------------------ io
    def to_dict(self) -> Dict[str, Any]:
        return {"schema": MANIFEST_SCHEMA, "suite": self.suite,
                "workers": self.workers, "elapsed": self.elapsed,
                "counts": self.counts(),
                "simulated_events": self.simulated_events(),
                "cells": [c.to_dict() for c in self.cells]}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SweepManifest":
        if d.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"manifest schema must be {MANIFEST_SCHEMA!r}, "
                f"got {d.get('schema')!r}")
        return cls(suite=d["suite"], workers=int(d["workers"]),
                   elapsed=float(d.get("elapsed", 0.0)),
                   cells=[CellOutcome.from_dict(c) for c in d.get("cells", [])])

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        from repro.tools.export import write_text

        write_text(path, self.dumps())

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -------------------------------------------------------------- render
    def render(self) -> str:
        from repro.bench.report import render_table

        rows = []
        for cell in self.cells:
            rows.append([cell.id, cell.key[:12], cell.outcome, cell.attempts,
                         f"{cell.host_seconds * 1e3:.1f}", cell.events,
                         cell.error or ""])
        counts = self.counts()
        title = (f"sweep {self.suite!r}: {len(self.cells)} cells — "
                 f"{counts['hit']} hit / {counts['miss']} miss / "
                 f"{counts['failed']} failed — "
                 f"{self.simulated_events()} simulated events, "
                 f"{self.elapsed:.1f}s wall, {self.workers} worker(s)")
        return render_table(
            ["cell", "key", "outcome", "tries", "host ms", "events", "error"],
            rows, title=title)
