"""Declarative sweep grids.

The paper's evaluation is a grid — models × interconnects × apps × node
counts — and every scaling item on the ROADMAP multiplies it further. A
:class:`GridSpec` names the swept axes declaratively:

* ``presets`` — platform presets (:data:`repro.config.PRESETS` names),
* ``labels`` — figure workloads (:data:`repro.bench.runners.WORKLOADS`),
* ``scales`` — working-set scales (1.0 = the paper's Table 1 sizes),
* ``nodes`` — node-count overrides (``None`` keeps the preset's count),
* ``overrides`` — :class:`repro.machine.params.MachineParams` overrides,
* ``faults`` — fault plans (``None`` = perfect network, a seed, or a
  :meth:`repro.faults.FaultPlan.to_dict` mapping).

:meth:`GridSpec.expand` crosses the axes into a deterministic list of
:class:`Scenario` cells. A scenario is pure, picklable data: the worker
protocol ships it to a worker process, and the content-addressed cache
(:mod:`repro.fabric.cache`) derives the cell's identity from it alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import PRESETS, ClusterConfig, preset
from repro.errors import ConfigurationError

__all__ = ["Scenario", "GridSpec"]


def _canonical_faults(value: Any) -> Optional[str]:
    """Normalize a fault-plan spelling to canonical JSON (or None)."""
    if value is None:
        return None
    from repro.faults import FaultPlan

    plan = FaultPlan.coerce(value)
    return json.dumps(plan.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """One grid cell: everything that determines a run's virtual result.

    Frozen and built from primitives only, so it pickles cleanly across
    the worker boundary and hashes deterministically across processes.
    """

    #: platform preset name (repro.config.PRESETS)
    preset: str
    #: figure workload label (repro.bench.runners.WORKLOADS)
    label: str
    #: working-set scale (1.0 = paper sizes)
    scale: float
    #: bind the JiaJia API natively (no HAMSTER call overhead)
    native: bool = False
    #: node-count override; None keeps the preset's count
    nodes: Optional[int] = None
    #: MachineParams overrides as sorted (name, value) pairs
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: canonical fault-plan JSON, or None for the perfect network
    faults: Optional[str] = None
    #: host-time repeats (virtual time must be identical across them)
    repeat: int = 1

    # --------------------------------------------------------------- identity
    def cell_id(self) -> str:
        """Human-readable unique id within a grid expansion."""
        parts = [self.preset]
        if self.nodes is not None:
            parts.append(f"x{self.nodes}")
        parts.append(f"/{self.label}@{self.scale:g}")
        if self.overrides:
            parts.append("+" + ",".join(f"{k}={v}" for k, v in self.overrides))
        if self.faults is not None:
            from repro.machine.params import stable_digest

            parts.append("~faults:" + stable_digest(self.faults)[:8])
        return "".join(parts)

    # ------------------------------------------------------------ materialize
    def build_config(self) -> ClusterConfig:
        """The cluster configuration this cell runs on (fresh instance)."""
        config = preset(self.preset)
        if self.nodes is not None:
            if self.nodes < 1:
                raise ConfigurationError(
                    f"cell {self.cell_id()}: need at least one node")
            config.nodes = self.nodes
        if self.overrides:
            config.param_overrides.update(dict(self.overrides))
        if self.faults is not None:
            from repro.faults import FaultPlan

            config.faults = FaultPlan.loads(self.faults)
        return config

    def workload(self) -> Tuple[str, Dict[str, Any]]:
        """The (app, params) pair behind this cell's figure label."""
        from repro.bench.runners import WORKLOADS

        wl = WORKLOADS[self.label]
        return wl.app, wl.params(self.scale)

    # ---------------------------------------------------------------------- io
    def to_dict(self) -> Dict[str, Any]:
        return {"preset": self.preset, "label": self.label,
                "scale": self.scale, "native": self.native,
                "nodes": self.nodes, "overrides": dict(self.overrides),
                "faults": self.faults, "repeat": self.repeat}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Scenario":
        return cls(preset=d["preset"], label=d["label"],
                   scale=float(d["scale"]), native=bool(d.get("native", False)),
                   nodes=d.get("nodes"),
                   overrides=tuple(sorted(d.get("overrides", {}).items())),
                   faults=d.get("faults"), repeat=int(d.get("repeat", 1)))


_GRID_KEYS = {"suite", "presets", "labels", "scales", "native", "nodes",
              "overrides", "faults", "repeat", "timeout"}


@dataclass
class GridSpec:
    """A declarative sweep: axes whose cross product is the cell list."""

    presets: Tuple[str, ...]
    labels: Tuple[str, ...]
    scales: Tuple[float, ...] = (0.05,)
    #: per-preset native binding; None auto-binds ``native-*`` presets
    native: Optional[Tuple[bool, ...]] = None
    nodes: Tuple[Optional[int], ...] = (None,)
    overrides: Tuple[Dict[str, Any], ...] = field(default_factory=lambda: ({},))
    faults: Tuple[Any, ...] = (None,)
    #: suite name stamped on the telemetry document
    suite: str = "sweep"
    #: host-time repeats per cell
    repeat: int = 1
    #: per-cell wall-clock timeout in host seconds (None = no limit)
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.presets:
            raise ConfigurationError("grid needs at least one preset")
        if not self.labels:
            raise ConfigurationError("grid needs at least one label")
        from repro.bench.runners import WORKLOADS

        for name in self.presets:
            if name not in PRESETS:
                raise ConfigurationError(
                    f"unknown preset {name!r}; known: {sorted(PRESETS)}")
        for label in self.labels:
            if label not in WORKLOADS:
                raise ConfigurationError(
                    f"unknown workload label {label!r}; "
                    f"known: {sorted(WORKLOADS)}")
        for scale in self.scales:
            if scale <= 0:
                raise ConfigurationError(f"scale must be > 0, got {scale}")
        if self.native is not None and len(self.native) != len(self.presets):
            raise ConfigurationError(
                "native axis must pair one flag per preset")
        if self.repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {self.repeat}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be > 0 seconds, got {self.timeout}")

    # ---------------------------------------------------------------- expand
    def expand(self) -> List[Scenario]:
        """Cross the axes into cells, in deterministic grid order."""
        cells: List[Scenario] = []
        for i, preset_name in enumerate(self.presets):
            native = (self.native[i] if self.native is not None
                      else preset_name.startswith("native-"))
            for nodes in self.nodes:
                for label in self.labels:
                    for scale in self.scales:
                        for ovr in self.overrides:
                            for faults in self.faults:
                                cells.append(Scenario(
                                    preset=preset_name, label=label,
                                    scale=float(scale), native=native,
                                    nodes=nodes,
                                    overrides=tuple(sorted(ovr.items())),
                                    faults=_canonical_faults(faults),
                                    repeat=self.repeat))
        return cells

    # -------------------------------------------------------------------- io
    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "GridSpec":
        unknown = set(d) - _GRID_KEYS
        if unknown:
            raise ConfigurationError(f"unknown grid keys {sorted(unknown)}")
        if "presets" not in d or "labels" not in d:
            raise ConfigurationError("grid needs 'presets' and 'labels' axes")
        native = d.get("native")
        return cls(
            presets=tuple(d["presets"]), labels=tuple(d["labels"]),
            scales=tuple(float(s) for s in d.get("scales", (0.05,))),
            native=tuple(bool(n) for n in native) if native is not None else None,
            nodes=tuple(d.get("nodes", (None,))),
            overrides=tuple(d.get("overrides", ({},))),
            faults=tuple(d.get("faults", (None,))),
            suite=str(d.get("suite", "sweep")),
            repeat=int(d.get("repeat", 1)),
            timeout=float(d["timeout"]) if d.get("timeout") is not None else None)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "suite": self.suite, "presets": list(self.presets),
            "labels": list(self.labels), "scales": list(self.scales),
            "nodes": list(self.nodes),
            "overrides": list(self.overrides), "faults": list(self.faults),
            "repeat": self.repeat}
        if self.native is not None:
            d["native"] = list(self.native)
        if self.timeout is not None:
            d["timeout"] = self.timeout
        return d

    @classmethod
    def loads(cls, text: str) -> "GridSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid grid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("grid spec must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "GridSpec":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.loads(fh.read())
        except OSError as exc:
            raise ConfigurationError(f"cannot read grid spec: {exc}") from None

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
