"""Named fault points: deterministic crash injection for the fabric.

The crash-recovery paths (worker respawn, journal resume) are only
trustworthy if tests can kill the *real* processes at the *real*
moments. This helper generalizes the original ``CRASH_FLAG_ENV`` worker
hook into a small registry of named points spanning both sides of the
queue: arm one through the environment and the process hard-exits
(``os._exit`` — no ``finally`` blocks, no atexit, exactly what SIGKILL
looks like from the outside) the first time execution reaches it.

Spec format, in :data:`FAULTPOINT_ENV`::

    REPRO_FAULTPOINTS="<point>@<flag-path>[,<point>@<flag-path>...]"

The flag file is created *before* exiting, so each armed point fires at
most once — the retried attempt (worker) or the resumed sweep
(orchestrator) sails past it. Known points:

* ``worker-cell-start`` — a worker, after taking a job, before
  executing the cell (the original ``CRASH_FLAG_ENV`` moment);
* ``orchestrator-pre-commit`` — the scheduler, after the cell's result
  is stored in the cache but before its journal commit record is
  written (resume must treat the cell as uncommitted — and will find
  its result already cached);
* ``orchestrator-post-commit`` — the scheduler, right after a commit
  record is fsync'd (resume must restore the cell, not re-run it).

Unknown point names are accepted and simply never fire unless some code
path calls :func:`maybe_crash` with them — tests may invent points
without touching this module.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = ["FAULTPOINT_ENV", "FAULTPOINT_EXIT", "WORKER_CELL_START",
           "ORCH_PRE_COMMIT", "ORCH_POST_COMMIT", "parse_spec",
           "maybe_crash", "crash_env"]

#: Environment variable naming the armed fault points.
FAULTPOINT_ENV = "REPRO_FAULTPOINTS"

#: Exit code of a process killed by a fault point — distinct from every
#: CLI exit code, so harnesses can assert the crash really happened.
FAULTPOINT_EXIT = 43

WORKER_CELL_START = "worker-cell-start"
ORCH_PRE_COMMIT = "orchestrator-pre-commit"
ORCH_POST_COMMIT = "orchestrator-post-commit"


def parse_spec(text: Optional[str]) -> Dict[str, str]:
    """``point@flag[,point@flag...]`` -> {point: flag path}.

    Malformed segments (no ``@``) are ignored rather than raised: a
    fault-point spec is test plumbing, and a typo'd spec that crashed
    the process *under test* would be indistinguishable from the bug
    being hunted.
    """
    points: Dict[str, str] = {}
    for part in (text or "").split(","):
        part = part.strip()
        if not part or "@" not in part:
            continue
        point, _, flag = part.partition("@")
        if point and flag:
            points[point.strip()] = flag
    return points


def maybe_crash(point: str) -> None:
    """Hard-exit once if ``point`` is armed in the environment.

    Creates the flag file first, so the crash happens exactly once per
    flag path; a re-run (retry, respawn, resume) finds the flag and
    carries on. No-op when :data:`FAULTPOINT_ENV` is unset or does not
    name ``point``.
    """
    flag = parse_spec(os.environ.get(FAULTPOINT_ENV)).get(point)
    if flag is None or os.path.exists(flag):
        return
    with open(flag, "w", encoding="utf-8") as fh:
        fh.write(point + "\n")
    os._exit(FAULTPOINT_EXIT)


def crash_env(point: str, flag_path: str) -> Dict[str, str]:
    """The env patch arming one point — test-harness convenience."""
    return {FAULTPOINT_ENV: f"{point}@{flag_path}"}
