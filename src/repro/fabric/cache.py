"""Content-addressed result cache.

Every grid cell has one stable content address composed from the three
identity hashes of :mod:`repro.machine.params` plus the code-schema
version:

* ``MachineParams.fingerprint`` — the machine's cost constants (override
  composition included: the fingerprint is taken over the *final* params
  the cell builds, so an overridden field changes the address),
* the config's canonical text form — platform, DSM, nodes, messaging,
* :func:`~repro.machine.params.workload_hash` — app + working set + scale,
* :func:`~repro.machine.params.fault_plan_hash` — the fault plan,
* :data:`CACHE_SCHEMA` + the telemetry schema — bump either and every
  stored result is invisible (never silently reused across code changes).

The store itself (:class:`ResultCache`) is a plain sharded directory of
JSON files — payloads are the existing :mod:`repro.bench.telemetry`
result records, so ``bench compare``, the baseline gates, and the report
generator consume cached sweeps unchanged. Rerunning a sweep only
executes changed cells; a fully-unchanged grid costs zero simulation
time.

Integrity: every entry carries a sha256 **content checksum** over its
record, verified on every read. An entry that fails verification —
truncated file, flipped byte, wrong key under the filename — is
**quarantined** (moved to ``<root>/quarantine/``, never deleted: the
evidence survives for post-mortems) and reported as a miss, so a
corrupt result is re-simulated rather than trusted. :meth:`ResultCache.fsck`
is the offline scanner behind ``python -m repro sweep fsck``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fabric.gridspec import Scenario
from repro.machine.params import fault_plan_hash, stable_digest, workload_hash

__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "scenario_key",
           "ResultCache", "TelemetryCache", "canonical_record",
           "canonical_records_json"]

#: Cache layout / compatibility version. Bump whenever the simulator's
#: cost model or the record contents change meaning: old entries become
#: unreachable instead of wrong. (v2: mandatory sha256 content checksum.)
CACHE_SCHEMA = "repro.fabric.cache/2"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".fabric-cache"

#: Subdirectory corrupt entries are moved into (never auto-deleted).
QUARANTINE_DIR = "quarantine"

#: Shard-level glob matching real entries but not the quarantine dir
#: (shards are the first two hex chars of the sha256 key).
_SHARD_GLOB = "??/*.json"

#: Record fields that vary with the host, not the simulated behaviour.
#: Everything else in a record is deterministic given the cell identity.
_HOST_FIELDS = ("host_seconds", "host_seconds_all", "events_per_sec",
                "repeats")


def scenario_key(scenario: Scenario) -> str:
    """The content address of one grid cell's result."""
    from repro.bench.telemetry import SCHEMA as TELEMETRY_SCHEMA

    config = scenario.build_config()
    app, params = scenario.workload()
    return stable_digest({
        "schema": [CACHE_SCHEMA, TELEMETRY_SCHEMA],
        "machine": config.params().fingerprint,
        "config": config.to_text(),
        "workload": workload_hash(app, params, scenario.scale),
        "faults": fault_plan_hash(config.faults),
        "native": bool(scenario.native),
    })


def canonical_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """A record with host-varying fields removed.

    Two executions of the same cell — serial or parallel, today or next
    week — produce byte-identical canonical forms; only wall-clock noise
    is stripped. The parity tests and the sweep determinism contract are
    stated over this form.
    """
    return {k: v for k, v in record.items() if k not in _HOST_FIELDS}


def canonical_records_json(records: List[Dict[str, Any]]) -> str:
    """Canonical JSON of a record list (the byte-parity comparand)."""
    return json.dumps([canonical_record(r) for r in records],
                      sort_keys=True, separators=(",", ":"))


def _record_checksum(record: Dict[str, Any]) -> str:
    """sha256 over the record's canonical JSON — the integrity seal."""
    text = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _verify_entry(key: str, entry: Any) -> Optional[str]:
    """Why ``entry`` cannot be trusted for ``key``, or None if it can.

    A *stale* entry (older schema version) is reported distinctly: it is
    unusable but not corrupt, so ``get`` skips it silently and ``fsck``
    counts it without quarantining.
    """
    if not isinstance(entry, dict):
        return "entry is not a JSON object"
    if entry.get("schema") != CACHE_SCHEMA:
        return "stale"
    if entry.get("key") != key:
        return (f"key mismatch: entry claims "
                f"{str(entry.get('key'))[:16]}..., filename says "
                f"{key[:16]}...")
    if not isinstance(entry.get("record"), dict):
        return "missing or non-object record"
    expected = entry.get("sha256")
    if not isinstance(expected, str):
        return "missing sha256 checksum"
    actual = _record_checksum(entry["record"])
    if actual != expected:
        return (f"checksum mismatch: stored {expected[:12]}..., "
                f"computed {actual[:12]}...")
    return None


class ResultCache:
    """Sharded directory of ``<key[:2]>/<key>.json`` result entries.

    Every read is checksum-verified; entries that fail are moved to
    ``<root>/quarantine/`` and treated as misses (see module docstring).
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries this instance quarantined (on-disk total is in stats())
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob(_SHARD_GLOB))

    # ----------------------------------------------------------- integrity
    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupt entry aside; returns its new home (or None if
        the move lost a race with another process)."""
        qdir = self.quarantine_dir()
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        n = 0
        while dest.exists():    # keep every piece of evidence
            n += 1
            dest = qdir / f"{path.name}.{n}"
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover — concurrent quarantine/evict
            return None
        self.quarantined += 1
        return dest

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified record for ``key``, or None (counts hit/miss).

        Corrupt entries — unreadable JSON, checksum/key mismatch — are
        quarantined on sight; stale-schema entries are left in place
        (invisible, harmless); both count as misses.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            self.misses += 1                  # absent: the normal miss
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)            # truncated / garbled file
            self.misses += 1
            return None
        problem = _verify_entry(key, entry)
        if problem == "stale":
            self.misses += 1
            return None
        if problem is not None:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["record"]

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store a record atomically (write-temp + rename), sealed with
        its content checksum."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "key": key,
                 "sha256": _record_checksum(record), "record": record}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self.stores += 1

    def fsck(self, repair: bool = False) -> Dict[str, Any]:
        """Scan every entry, verify checksums, optionally quarantine.

        Returns ``{"checked", "ok", "stale", "corrupt": [{"path",
        "reason"}...], "quarantined": [paths moved], "quarantine_entries":
        on-disk quarantine count}``. With ``repair=False`` nothing is
        touched; with ``repair=True`` corrupt entries move to the
        quarantine directory (stale entries are left alone either way).
        """
        report: Dict[str, Any] = {"checked": 0, "ok": 0, "stale": 0,
                                  "corrupt": [], "quarantined": [],
                                  "root": str(self.root)}
        if self.root.exists():
            for path in sorted(self.root.glob(_SHARD_GLOB)):
                report["checked"] += 1
                key = path.stem
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        entry = json.load(fh)
                except OSError as exc:  # pragma: no cover — evicted mid-walk
                    report["corrupt"].append({"path": str(path),
                                              "reason": f"unreadable: {exc}"})
                    continue
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    entry, problem = None, f"not valid JSON: {exc}"
                else:
                    problem = _verify_entry(key, entry)
                if problem is None:
                    report["ok"] += 1
                elif problem == "stale":
                    report["stale"] += 1
                else:
                    report["corrupt"].append({"path": str(path),
                                              "reason": problem})
                    if repair:
                        moved = self._quarantine(path)
                        if moved is not None:
                            report["quarantined"].append(str(moved))
        report["quarantine_entries"] = self._quarantine_count()
        return report

    def _quarantine_count(self) -> int:
        qdir = self.quarantine_dir()
        if not qdir.exists():
            return 0
        return sum(1 for p in qdir.iterdir() if p.is_file())

    def stats(self) -> Dict[str, Any]:
        """Cache effectiveness as a first-class number.

        ``hits`` / ``misses`` / ``stores`` count this instance's traffic;
        ``entries``, ``bytes`` (the evictable on-disk footprint), and
        ``quarantined`` (corrupt entries moved aside, by any producer)
        are measured from the store itself.
        """
        entries = 0
        size = 0
        if self.root.exists():
            for path in self.root.glob(_SHARD_GLOB):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:  # pragma: no cover — entry evicted mid-walk
                    pass
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "entries": entries, "bytes": size,
                "quarantined": self._quarantine_count(),
                "root": str(self.root)}

    def clear(self) -> int:
        """Delete every entry (quarantine untouched); returns the count."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob(_SHARD_GLOB):
            path.unlink()
            removed += 1
        return removed


class TelemetryCache:
    """Adapter giving serial ``bench run`` the same cache sweeps use.

    :func:`repro.bench.telemetry.run_suite_telemetry` takes this
    duck-typed object (telemetry never imports the fabric); the key is
    derived through :func:`scenario_key`, so a cell executed by a sweep
    is a hit for the serial path and vice versa. ``repeat`` is *not*
    part of the address — it only changes host-time statistics — so a
    hit may report fewer repeats than requested.
    """

    def __init__(self, store: ResultCache) -> None:
        self.store = store

    def key_for(self, preset_name: str, label: str, scale: float,
                native: bool) -> str:
        return scenario_key(Scenario(preset=preset_name, label=label,
                                     scale=scale, native=native))

    def lookup(self, preset_name: str, label: str, scale: float,
               native: bool, suite: str) -> Optional[Dict[str, Any]]:
        record = self.store.get(self.key_for(preset_name, label, scale, native))
        if record is None:
            return None
        record = dict(record)
        # Rename to the requesting context: the cached copy may have been
        # produced under a sweep's cell id and suite name.
        record["id"] = f"{preset_name}/{label}"
        record["suite"] = suite
        return record

    def store_record(self, record: Dict[str, Any]) -> None:
        self.store.put(self.key_for(record["preset"], record["benchmark"],
                                    record["scale"], record["native"]),
                       record)
