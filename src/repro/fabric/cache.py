"""Content-addressed result cache.

Every grid cell has one stable content address composed from the three
identity hashes of :mod:`repro.machine.params` plus the code-schema
version:

* ``MachineParams.fingerprint`` — the machine's cost constants (override
  composition included: the fingerprint is taken over the *final* params
  the cell builds, so an overridden field changes the address),
* the config's canonical text form — platform, DSM, nodes, messaging,
* :func:`~repro.machine.params.workload_hash` — app + working set + scale,
* :func:`~repro.machine.params.fault_plan_hash` — the fault plan,
* :data:`CACHE_SCHEMA` + the telemetry schema — bump either and every
  stored result is invisible (never silently reused across code changes).

The store itself (:class:`ResultCache`) is a plain sharded directory of
JSON files — payloads are the existing :mod:`repro.bench.telemetry`
result records, so ``bench compare``, the baseline gates, and the report
generator consume cached sweeps unchanged. Rerunning a sweep only
executes changed cells; a fully-unchanged grid costs zero simulation
time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fabric.gridspec import Scenario
from repro.machine.params import fault_plan_hash, stable_digest, workload_hash

__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "scenario_key",
           "ResultCache", "TelemetryCache", "canonical_record",
           "canonical_records_json"]

#: Cache layout / compatibility version. Bump whenever the simulator's
#: cost model or the record contents change meaning: old entries become
#: unreachable instead of wrong.
CACHE_SCHEMA = "repro.fabric.cache/1"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".fabric-cache"

#: Record fields that vary with the host, not the simulated behaviour.
#: Everything else in a record is deterministic given the cell identity.
_HOST_FIELDS = ("host_seconds", "host_seconds_all", "events_per_sec",
                "repeats")


def scenario_key(scenario: Scenario) -> str:
    """The content address of one grid cell's result."""
    from repro.bench.telemetry import SCHEMA as TELEMETRY_SCHEMA

    config = scenario.build_config()
    app, params = scenario.workload()
    return stable_digest({
        "schema": [CACHE_SCHEMA, TELEMETRY_SCHEMA],
        "machine": config.params().fingerprint,
        "config": config.to_text(),
        "workload": workload_hash(app, params, scenario.scale),
        "faults": fault_plan_hash(config.faults),
        "native": bool(scenario.native),
    })


def canonical_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """A record with host-varying fields removed.

    Two executions of the same cell — serial or parallel, today or next
    week — produce byte-identical canonical forms; only wall-clock noise
    is stripped. The parity tests and the sweep determinism contract are
    stated over this form.
    """
    return {k: v for k, v in record.items() if k not in _HOST_FIELDS}


def canonical_records_json(records: List[Dict[str, Any]]) -> str:
    """Canonical JSON of a record list (the byte-parity comparand)."""
    return json.dumps([canonical_record(r) for r in records],
                      sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Sharded directory of ``<key[:2]>/<key>.json`` result entries."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``key``, or None (counts hit/miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
            self.misses += 1          # stale layout or corrupted entry
            return None
        self.hits += 1
        return entry["record"]

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store a record atomically (write-temp + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "key": key, "record": record}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self.stores += 1

    def stats(self) -> Dict[str, Any]:
        """Cache effectiveness as a first-class number.

        ``hits`` / ``misses`` / ``stores`` count this instance's traffic;
        ``entries`` and ``bytes`` (the evictable on-disk footprint) are
        measured from the store itself, so they reflect every producer
        that ever wrote to this directory.
        """
        entries = 0
        size = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:  # pragma: no cover — entry evicted mid-walk
                    pass
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "entries": entries, "bytes": size,
                "root": str(self.root)}

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed


class TelemetryCache:
    """Adapter giving serial ``bench run`` the same cache sweeps use.

    :func:`repro.bench.telemetry.run_suite_telemetry` takes this
    duck-typed object (telemetry never imports the fabric); the key is
    derived through :func:`scenario_key`, so a cell executed by a sweep
    is a hit for the serial path and vice versa. ``repeat`` is *not*
    part of the address — it only changes host-time statistics — so a
    hit may report fewer repeats than requested.
    """

    def __init__(self, store: ResultCache) -> None:
        self.store = store

    def key_for(self, preset_name: str, label: str, scale: float,
                native: bool) -> str:
        return scenario_key(Scenario(preset=preset_name, label=label,
                                     scale=scale, native=native))

    def lookup(self, preset_name: str, label: str, scale: float,
               native: bool, suite: str) -> Optional[Dict[str, Any]]:
        record = self.store.get(self.key_for(preset_name, label, scale, native))
        if record is None:
            return None
        record = dict(record)
        # Rename to the requesting context: the cached copy may have been
        # produced under a sweep's cell id and suite name.
        record["id"] = f"{preset_name}/{label}"
        record["suite"] = suite
        return record

    def store_record(self, record: Dict[str, Any]) -> None:
        self.store.put(self.key_for(record["preset"], record["benchmark"],
                                    record["scale"], record["native"]),
                       record)
