"""Structured sweep event log: the fleet's flight recorder.

A sweep with the event log enabled appends one JSON object per line to
``events.jsonl`` (written next to the manifest by convention). The first
line is a **header** naming the schema, the suite, and the grid size;
every following line is one **event** — a cell or worker lifecycle
transition stamped with a monotonic host timestamp (seconds since the
sweep began, single writer, single clock, so timestamps never go
backwards).

The log is append-only and flushed per line, which is what makes
``python -m repro sweep watch`` work: a reader can tail a *live* sweep's
file and always sees complete lines. :func:`validate_events` is the
schema gate (mirroring ``validate_telemetry``); :class:`FleetReport
<repro.obs.fleet.FleetReport>` rolls a finished or live log up into
fleet metrics.

Host timestamps live only here and in the manifest — they never enter
``canonical_record``, so enabling the log cannot perturb the sweep
determinism contract.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["EVENTS_SCHEMA", "EVENT_KINDS", "EventLog", "read_events",
           "tail_events", "validate_events"]

EVENTS_SCHEMA = "repro.fabric.events/1"

#: The closed set of event kinds. Cell lifecycle: enqueued -> dispatched
#: -> started -> (heartbeat)* -> done | failed | retried (back to
#: dispatched); cache-hit cells skip execution entirely. Worker
#: lifecycle: spawn -> (kill | death) -> respawn -> ... -> exit.
EVENT_KINDS = (
    "sweep-begin", "sweep-end",
    "enqueued", "cache-hit", "dispatched", "started", "heartbeat",
    "done", "failed", "retried",
    "worker-spawn", "worker-kill", "worker-death", "worker-respawn",
    "worker-exit",
)

#: Event kinds that must carry a ``cell`` grid index.
_CELL_KINDS = frozenset({"enqueued", "cache-hit", "dispatched", "started",
                         "heartbeat", "done", "failed", "retried"})

#: Event kinds that must carry a ``worker`` id.
_WORKER_KINDS = frozenset({"worker-spawn", "worker-kill", "worker-death",
                           "worker-respawn", "worker-exit"})


class EventLog:
    """Append-only writer for one sweep's event stream.

    Events are kept in memory (``self.events``) and — when ``path`` is
    given — appended to disk as JSONL, one flushed line each, so a
    concurrent ``sweep watch`` never sees a torn record. All timestamps
    come from this object's single monotonic clock; worker-side progress
    is stamped when the *scheduler* receives it.
    """

    def __init__(self, path: Optional[str] = None, suite: str = "sweep",
                 cells: int = 0, workers: int = 0) -> None:
        self.path = Path(path) if path is not None else None
        self.suite = suite
        self.header: Dict[str, Any] = {
            "schema": EVENTS_SCHEMA, "suite": suite,
            "cells": int(cells), "workers": int(workers),
            "wall_time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        self.events: List[Dict[str, Any]] = []
        self._t0 = time.monotonic()
        self._last_t = 0.0
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(self.header)

    # ----------------------------------------------------------------- emit
    def emit(self, kind: str, cell: Optional[int] = None,
             id: Optional[str] = None, key: Optional[str] = None,
             worker: Optional[int] = None,
             data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Record one event; kind-specific payload goes under ``data``."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        # Clamp to the last emitted timestamp: time.monotonic() is
        # monotonic per call site, and a single writer makes the whole
        # stream non-decreasing by construction.
        t = max(time.monotonic() - self._t0, self._last_t)
        self._last_t = t
        event: Dict[str, Any] = {"t": round(t, 6), "kind": kind}
        if cell is not None:
            event["cell"] = int(cell)
        if id is not None:
            event["id"] = id
        if key is not None:
            event["key"] = key
        if worker is not None:
            event["worker"] = int(worker)
        if data:
            event["data"] = dict(data)
        self.events.append(event)
        if self._fh is not None:
            self._write_line(event)
        return event

    def _write_line(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    # ---------------------------------------------------------------- close
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------- read
def read_events(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a whole event log: ``(header, events)``.

    Raises ``ValueError`` on a missing/foreign header; individual
    malformed event lines raise too — use :func:`validate_events` for a
    forgiving, error-listing pass.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty event log")
        header = json.loads(first)
        if header.get("schema") != EVENTS_SCHEMA:
            raise ValueError(
                f"{path}: event schema must be {EVENTS_SCHEMA!r}, "
                f"got {header.get('schema')!r}")
        events = [json.loads(line) for line in fh if line.strip()]
    return header, events


def tail_events(path: str, offset: int = 0
                ) -> Tuple[List[Dict[str, Any]], int]:
    """Incremental read for live tailing: events after byte ``offset``.

    Returns ``(new_events, new_offset)``; only complete lines are
    consumed, so a partially-flushed trailing line is picked up by the
    next call. The header line (offset 0) is skipped, not returned.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        fh.seek(offset)
        while True:
            pos = fh.tell()
            line = fh.readline()
            if not line or not line.endswith("\n"):
                return events, pos
            if offset == 0 and pos == 0:
                continue  # the header line
            if line.strip():
                events.append(json.loads(line))


# ----------------------------------------------------------------- validate
def validate_events(source: Union[str, List[str]]) -> List[str]:
    """Schema-check an event log; returns a list of problems (empty =
    valid). ``source`` is a file path or a list of JSONL lines.

    Mirrors ``validate_telemetry``: shallow by design, guarding the
    contract ``sweep watch``, the fleet report, and CI rely on — header
    schema, known kinds, per-kind required fields, and non-decreasing
    host timestamps.
    """
    if isinstance(source, str):
        try:
            with open(source, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError as exc:
            return [f"cannot read event log: {exc}"]
    else:
        lines = list(source)
    lines = [line for line in lines if line.strip()]
    if not lines:
        return ["event log is empty (no header line)"]
    errors: List[str] = []
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header is not valid JSON: {exc}"]
    if not isinstance(header, dict):
        return ["header must be a JSON object"]
    if header.get("schema") != EVENTS_SCHEMA:
        errors.append(f"header schema must be {EVENTS_SCHEMA!r}, "
                      f"got {header.get('schema')!r}")
    if not isinstance(header.get("suite"), str) or not header.get("suite"):
        errors.append("header.suite must be a non-empty string")
    for count_key in ("cells", "workers"):
        if not isinstance(header.get(count_key), int) \
                or isinstance(header.get(count_key), bool) \
                or header.get(count_key, 0) < 0:
            errors.append(f"header.{count_key} must be a non-negative int")
    last_t = 0.0
    for i, line in enumerate(lines[1:], start=1):
        where = f"line {i + 1}"
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON: {exc}")
            continue
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        kind = ev.get("kind")
        if kind not in EVENT_KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        t = ev.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            errors.append(f"{where}: 't' must be a non-negative number")
        else:
            if t < last_t:
                errors.append(f"{where}: timestamp went backwards "
                              f"({t} < {last_t})")
            last_t = max(last_t, float(t))
        if kind in _CELL_KINDS:
            cell = ev.get("cell")
            if not isinstance(cell, int) or isinstance(cell, bool) or cell < 0:
                errors.append(f"{where} ({kind}): 'cell' must be a "
                              "non-negative grid index")
        if kind in _WORKER_KINDS and not isinstance(ev.get("worker"), int):
            errors.append(f"{where} ({kind}): 'worker' must be an int id")
        if kind == "heartbeat":
            data = ev.get("data")
            if not isinstance(data, dict):
                errors.append(f"{where} (heartbeat): missing 'data'")
            else:
                for field in ("events_executed", "virtual_seconds"):
                    if not isinstance(data.get(field), (int, float)) \
                            or isinstance(data.get(field), bool):
                        errors.append(f"{where} (heartbeat): data.{field} "
                                      "must be a number")
        if kind == "failed" and not isinstance(ev.get("data", {}), dict):
            errors.append(f"{where} (failed): 'data' must be an object")
    kinds = set()
    for line in lines[1:]:
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(ev, dict):
            kinds.add(ev.get("kind"))
    if "sweep-begin" not in kinds:
        errors.append("log has no 'sweep-begin' event")
    return errors
