"""repro.fabric — parallel experiment fabric with a content-addressed cache.

The paper's evaluation is a grid (models × interconnects × apps × node
counts); this package makes sweeping that grid cheap:

* :mod:`repro.fabric.gridspec` — declarative grid specs and cells,
* :mod:`repro.fabric.cache` — content-addressed result store with
  checksummed, quarantine-on-corruption entries (payloads are unchanged
  :mod:`repro.bench.telemetry` records),
* :mod:`repro.fabric.worker` — the worker-process protocol,
* :mod:`repro.fabric.scheduler` — the orchestrator (dispatch, timeouts,
  crash recovery, retry budgets, graceful shutdown, typed per-cell
  failures),
* :mod:`repro.fabric.journal` — the durable write-ahead journal behind
  ``sweep resume``,
* :mod:`repro.fabric.faultpoints` — deterministic crash injection for
  testing the recovery paths,
* :mod:`repro.fabric.manifest` — the per-cell receipt of a sweep.

Surfaced as ``python -m repro sweep`` and behind
``python -m repro experiments --workers N``.
"""

from repro.fabric.cache import (CACHE_SCHEMA, DEFAULT_CACHE_DIR, ResultCache,
                                TelemetryCache, canonical_record,
                                canonical_records_json, scenario_key)
from repro.fabric.events import (EVENT_KINDS, EVENTS_SCHEMA, EventLog,
                                 read_events, tail_events, validate_events)
from repro.fabric.gridspec import GridSpec, Scenario
from repro.fabric.journal import (JOURNAL_SCHEMA, JournalError, JournalState,
                                  SweepJournal, replay_journal)
from repro.fabric.manifest import MANIFEST_SCHEMA, CellOutcome, SweepManifest
from repro.fabric.scheduler import (DEFAULT_HEARTBEAT, DEFAULT_MAX_RETRIES,
                                    SweepResult, run_sweep)
from repro.fabric.worker import CellFailed, Job, execute_cell

__all__ = ["GridSpec", "Scenario", "ResultCache", "TelemetryCache",
           "scenario_key", "canonical_record", "canonical_records_json",
           "CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "MANIFEST_SCHEMA",
           "CellOutcome", "SweepManifest", "SweepResult", "run_sweep",
           "CellFailed", "Job", "execute_cell",
           "EVENTS_SCHEMA", "EVENT_KINDS", "EventLog", "read_events",
           "tail_events", "validate_events", "DEFAULT_HEARTBEAT",
           "DEFAULT_MAX_RETRIES", "JOURNAL_SCHEMA", "JournalError",
           "JournalState", "SweepJournal", "replay_journal"]
