"""Sweep orchestration: expand, consult the cache, dispatch, recover.

:func:`run_sweep` is the fabric's one entry point:

1. expand the :class:`~repro.fabric.gridspec.GridSpec` into (content
   address, scenario) cells;
2. serve every cell already in the :class:`~repro.fabric.cache.ResultCache`
   (a fully-unchanged grid costs zero simulation time);
3. dispatch the misses — inline when ``workers <= 1`` (the reference
   serial path), otherwise to N worker processes over bounded queues;
4. recover: a job that exceeds the per-cell wall-clock timeout gets its
   worker killed; a dead worker's job is retried once on a fresh worker;
   a second failure (or any in-cell exception) becomes a typed
   ``failed`` outcome in the manifest — the sweep never aborts wholesale;
5. store fresh records back into the cache and assemble the telemetry
   document (records in grid order, independent of completion order, so
   parallel and serial sweeps produce identical documents).

The telemetry document uses the unchanged ``repro.bench.telemetry``
schema: ``bench compare``, the baseline gates, and the report generator
consume fabric output directly.
"""

from __future__ import annotations

import multiprocessing
import platform as _host_platform
import queue as _queue
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fabric.cache import DEFAULT_CACHE_DIR, ResultCache, scenario_key
from repro.fabric.gridspec import GridSpec
from repro.fabric.manifest import CellOutcome, SweepManifest
from repro.fabric.worker import Job, execute_cell, worker_main

__all__ = ["SweepResult", "run_sweep"]

#: A job is re-queued this many times after its worker dies or times out
#: before its cell is recorded as failed ("retried once").
_MAX_ATTEMPTS = 2

Progress = Callable[[str, str], None]


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    spec: GridSpec
    manifest: SweepManifest
    #: successful records, in grid order (hits and misses alike)
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: telemetry document (None when every cell failed)
    doc: Optional[Dict[str, Any]] = None


# ------------------------------------------------------------ serial path
def _run_jobs_serial(jobs: List[Job], suite: str, progress: Optional[Progress]
                     ) -> Tuple[Dict[int, Dict[str, Any]],
                                Dict[int, Tuple[str, str]], Dict[int, int]]:
    """Reference execution: same cell path as the workers, inline.

    Per-cell timeouts are not enforced inline (there is no worker to
    kill); in-cell exceptions still become typed failures.
    """
    done: Dict[int, Dict[str, Any]] = {}
    failed: Dict[int, Tuple[str, str]] = {}
    for job in jobs:
        try:
            done[job.index] = execute_cell(job.scenario, suite=suite)
            if progress is not None:
                progress(job.scenario.cell_id(), "miss")
        except Exception as exc:  # noqa: BLE001 — typed CellFailed outcome
            failed[job.index] = ("error", f"{type(exc).__name__}: {exc}")
            if progress is not None:
                progress(job.scenario.cell_id(), "failed")
    return done, failed, {job.index: 1 for job in jobs}


# ---------------------------------------------------------- parallel path
def _kill(proc: multiprocessing.Process) -> None:
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover — terminate nearly always lands
        proc.kill()
        proc.join(timeout=1.0)


def _run_jobs_parallel(jobs: List[Job], workers: int, suite: str,
                       timeout: Optional[float],
                       progress: Optional[Progress],
                       stall_grace: float = 5.0
                       ) -> Tuple[Dict[int, Dict[str, Any]],
                                  Dict[int, Tuple[str, str]], Dict[int, int]]:
    ctx = multiprocessing.get_context()
    n_workers = min(workers, len(jobs))
    job_q = ctx.Queue(maxsize=max(2, 2 * n_workers))  # bounded by design
    result_q = ctx.Queue()
    procs: Dict[int, Any] = {}

    def spawn() -> None:
        proc = ctx.Process(target=worker_main, args=(job_q, result_q, suite),
                           daemon=True)
        proc.start()
        procs[proc.pid] = proc

    for _ in range(n_workers):
        spawn()

    jobs_by_index: Dict[int, Job] = {job.index: job for job in jobs}
    pending = deque(jobs)
    inflight: Dict[int, Tuple[Job, float]] = {}   # worker pid -> (job, t0)
    done: Dict[int, Dict[str, Any]] = {}
    failed: Dict[int, Tuple[str, str]] = {}
    outstanding = set(jobs_by_index)

    def resolve_fail(job: Job, kind: str, detail: str) -> None:
        """Retry a lost job once, then record the typed failure."""
        if job.attempt < _MAX_ATTEMPTS:
            retry = Job(index=job.index, key=job.key,
                        scenario=job.scenario, attempt=job.attempt + 1)
            jobs_by_index[job.index] = retry
            pending.append(retry)
        else:
            failed[job.index] = (kind, detail)
            outstanding.discard(job.index)
            if progress is not None:
                progress(job.scenario.cell_id(), "failed")

    try:
        last_activity = time.monotonic()
        while outstanding:
            while pending:
                try:
                    job_q.put_nowait(pending[0])
                except _queue.Full:
                    break
                pending.popleft()
            try:
                tag, idx, payload, pid = result_q.get(timeout=0.05)
            except _queue.Empty:
                tag = None
            now = time.monotonic()
            if tag is not None:
                last_activity = now
            if tag == "start":
                inflight[pid] = (jobs_by_index[idx], now)
            elif tag == "done":
                done[idx] = payload
                outstanding.discard(idx)
                inflight.pop(pid, None)
                if progress is not None:
                    progress(jobs_by_index[idx].scenario.cell_id(), "miss")
            elif tag == "fail":
                inflight.pop(pid, None)
                failed[idx] = ("error", payload)
                outstanding.discard(idx)
                if progress is not None:
                    progress(jobs_by_index[idx].scenario.cell_id(), "failed")
            # Per-job wall-clock timeout: kill the worker, recover the job.
            if timeout is not None:
                for wpid in list(inflight):
                    job, t0 = inflight[wpid]
                    if now - t0 > timeout:
                        inflight.pop(wpid)
                        proc = procs.pop(wpid, None)
                        if proc is not None:
                            _kill(proc)
                        resolve_fail(job, "timeout",
                                     f"exceeded {timeout:g}s wall clock")
            # Dead workers: recover their in-flight job, keep the pool full.
            for wpid in list(procs):
                proc = procs[wpid]
                if proc.is_alive():
                    continue
                procs.pop(wpid)
                entry = inflight.pop(wpid, None)
                if entry is not None:
                    resolve_fail(entry[0], "crash",
                                 f"worker exited with code {proc.exitcode}")
            if outstanding and len(procs) < min(n_workers, len(outstanding)):
                spawn()
            # Lost-job recovery. A worker that dies between taking a job
            # off the queue and its "start" message flushing leaves the
            # job unaccounted: not pending, not in flight, never resolved.
            # After a quiet grace period with nothing running and nothing
            # queued, re-queue the unaccounted jobs (re-execution is
            # harmless: cells are deterministic and content-addressed).
            if (outstanding and not inflight and not pending
                    and now - last_activity > stall_grace):
                for idx in sorted(outstanding):
                    resolve_fail(jobs_by_index[idx], "crash",
                                 "worker died before reporting the job")
                last_activity = now
    finally:
        for _ in range(len(procs)):
            try:
                job_q.put_nowait(None)
            except _queue.Full:  # pragma: no cover
                break
        deadline = time.monotonic() + 2.0
        for proc in procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                _kill(proc)
        job_q.cancel_join_thread()
        result_q.cancel_join_thread()

    attempts = {idx: job.attempt for idx, job in jobs_by_index.items()}
    return done, failed, attempts


# --------------------------------------------------------------- run_sweep
def run_sweep(spec: GridSpec, workers: int = 1,
              cache: Optional[ResultCache] = None,
              cache_dir: str = DEFAULT_CACHE_DIR,
              timeout: Optional[float] = None,
              progress: Optional[Progress] = None,
              stall_grace: float = 5.0) -> SweepResult:
    """Run one sweep; see the module docstring for the full contract."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if cache is None:
        cache = ResultCache(cache_dir)
    if timeout is None:
        timeout = spec.timeout
    t0 = time.monotonic()
    cells = spec.expand()
    keys = [scenario_key(sc) for sc in cells]

    outcomes: Dict[int, CellOutcome] = {}
    records: Dict[int, Dict[str, Any]] = {}
    primary: Dict[str, int] = {}     # key -> executing cell index
    dependents: Dict[str, List[int]] = {}
    jobs: List[Job] = []
    for i, (sc, key) in enumerate(zip(cells, keys)):
        cached = cache.get(key)
        if cached is not None:
            record = dict(cached)
            record["id"] = sc.cell_id()
            record["suite"] = spec.suite
            records[i] = record
            outcomes[i] = CellOutcome(index=i, id=sc.cell_id(), key=key,
                                      outcome="hit")
            if progress is not None:
                progress(sc.cell_id(), "hit")
        elif key in primary:
            # Duplicate axis values collapse onto one execution.
            dependents.setdefault(key, []).append(i)
        else:
            primary[key] = i
            jobs.append(Job(index=i, key=key, scenario=sc))

    if not jobs:
        done, failures, attempts = {}, {}, {}
    elif workers <= 1:
        done, failures, attempts = _run_jobs_serial(jobs, spec.suite, progress)
    else:
        done, failures, attempts = _run_jobs_parallel(
            jobs, workers, spec.suite, timeout, progress,
            stall_grace=stall_grace)

    for job in jobs:
        i, key, sc = job.index, job.key, cells[job.index]
        if i in done:
            record = done[i]
            cache.put(key, record)
            records[i] = record
            outcomes[i] = CellOutcome(
                index=i, id=sc.cell_id(), key=key, outcome="miss",
                attempts=attempts.get(i, 1),
                host_seconds=record["host_seconds"],
                events=record["events_executed"])
        else:
            kind, detail = failures[i]
            outcomes[i] = CellOutcome(
                index=i, id=sc.cell_id(), key=key, outcome="failed",
                attempts=attempts.get(i, 1), error=f"{kind}: {detail}")
        for dep in dependents.get(key, ()):  # same key -> share the result
            dep_sc = cells[dep]
            if i in done:
                outcomes[dep] = CellOutcome(index=dep, id=dep_sc.cell_id(),
                                            key=key, outcome="hit")
            else:
                kind, detail = failures[i]
                outcomes[dep] = CellOutcome(
                    index=dep, id=dep_sc.cell_id(), key=key,
                    outcome="failed", error=f"{kind}: {detail}")

    manifest = SweepManifest(
        suite=spec.suite, workers=workers,
        cells=[outcomes[i] for i in range(len(cells))],
        elapsed=time.monotonic() - t0)

    ordered = [records[i] for i in sorted(records)]
    doc: Optional[Dict[str, Any]] = None
    if ordered:
        doc = {
            "schema": _telemetry_schema(),
            "suite": spec.suite,
            "scale": spec.scales[0],
            "repeat": spec.repeat,
            "host": {
                "python": sys.version.split()[0],
                "machine": _host_platform.machine(),
                "system": _host_platform.system(),
            },
            "records": ordered,
        }
    return SweepResult(spec=spec, manifest=manifest, records=ordered, doc=doc)


def _telemetry_schema() -> str:
    from repro.bench.telemetry import SCHEMA

    return SCHEMA
