"""Sweep orchestration: expand, consult the cache, dispatch, recover.

:func:`run_sweep` is the fabric's one entry point:

1. expand the :class:`~repro.fabric.gridspec.GridSpec` into (content
   address, scenario) cells;
2. serve every cell already in the :class:`~repro.fabric.cache.ResultCache`
   (a fully-unchanged grid costs zero simulation time);
3. dispatch the misses — inline when ``workers <= 1`` (the reference
   serial path), otherwise to N worker processes over bounded queues;
4. recover: a job that exceeds the per-cell wall-clock timeout gets its
   worker killed; a dead worker's job is retried once on a fresh worker;
   a second failure (or any in-cell exception) becomes a typed
   ``failed`` outcome in the manifest — the sweep never aborts wholesale;
5. store fresh records back into the cache and assemble the telemetry
   document (records in grid order, independent of completion order, so
   parallel and serial sweeps produce identical documents).

Observability: with ``events`` set, every cell/worker lifecycle
transition is appended to a structured event log
(:mod:`repro.fabric.events`) as it happens, and workers report in-cell
progress heartbeats (engine events executed, virtual seconds) over the
result queue — so a live sweep can be watched (``sweep watch``), a slow
cell can be told from a stuck one, and a timed-out cell's outcome
records its progress-at-kill. Host-side timestamps stay in the event
log and the manifest; they never enter ``canonical_record``, so the
telemetry document is byte-identical with the log on or off.

The telemetry document uses the unchanged ``repro.bench.telemetry``
schema: ``bench compare``, the baseline gates, and the report generator
consume fabric output directly.
"""

from __future__ import annotations

import multiprocessing
import platform as _host_platform
import queue as _queue
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.fabric.cache import DEFAULT_CACHE_DIR, ResultCache, scenario_key
from repro.fabric.events import EventLog
from repro.fabric.gridspec import GridSpec
from repro.fabric.manifest import CellOutcome, SweepManifest
from repro.fabric.worker import (Job, execute_cell, install_heartbeat,
                                 worker_main)

__all__ = ["SweepResult", "run_sweep", "DEFAULT_HEARTBEAT"]

#: A job is re-queued this many times after its worker dies or times out
#: before its cell is recorded as failed ("retried once").
_MAX_ATTEMPTS = 2

#: Default in-cell progress heartbeat period in host seconds.
DEFAULT_HEARTBEAT = 1.0

#: Progress callback: (cell id, outcome) per resolved attempt, where
#: outcome is "hit" | "miss" | "failed" | "retry". Cached cells,
#: duplicate (shared-result) cells, and retried attempts all report —
#: a fully-cached sweep narrates every cell, same as an executed one.
Progress = Callable[[str, str], None]

#: Per-job execution results: done records, failures as (kind, detail),
#: attempt counts, and last-heartbeat progress for killed cells.
_JobResults = Tuple[Dict[int, Dict[str, Any]], Dict[int, Tuple[str, str]],
                    Dict[int, int], Dict[int, Dict[str, Any]]]


def _null_emit(kind: str, **fields: Any) -> None:
    """Event sink when no log is attached."""


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    spec: GridSpec
    manifest: SweepManifest
    #: successful records, in grid order (hits and misses alike)
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: telemetry document (None when every cell failed)
    doc: Optional[Dict[str, Any]] = None
    #: the sweep's event log (None unless ``events`` was requested)
    event_log: Optional[EventLog] = None


# ------------------------------------------------------------ serial path
def _run_jobs_serial(jobs: List[Job], suite: str, progress: Optional[Progress],
                     emit: Callable[..., Any] = _null_emit,
                     heartbeat: Optional[float] = None) -> _JobResults:
    """Reference execution: same cell path as the workers, inline.

    Per-cell timeouts are not enforced inline (there is no worker to
    kill); in-cell exceptions still become typed failures. With an event
    log attached, the inline path reports as worker 0 — including
    heartbeats, via the same engine hook the worker processes use.
    """
    done: Dict[int, Dict[str, Any]] = {}
    failed: Dict[int, Tuple[str, str]] = {}
    current: Dict[str, Any] = {"index": -1}
    hooked = False
    if heartbeat is not None and emit is not _null_emit:
        def beat(events: int, virtual: float) -> None:
            if current["index"] >= 0:
                emit("heartbeat", cell=current["index"], worker=0,
                     data={"events_executed": int(events),
                           "virtual_seconds": float(virtual)})

        install_heartbeat(beat, heartbeat)
        hooked = True
    emit("worker-spawn", worker=0, data={"inline": True})
    try:
        for job in jobs:
            cell_id = job.scenario.cell_id()
            emit("dispatched", cell=job.index, id=cell_id, key=job.key,
                 data={"attempt": job.attempt})
            emit("started", cell=job.index, id=cell_id, worker=0)
            current["index"] = job.index
            try:
                record = execute_cell(job.scenario, suite=suite)
                done[job.index] = record
                emit("done", cell=job.index, id=cell_id, worker=0,
                     data={"events_executed": record["events_executed"],
                           "virtual_seconds": record["virtual_seconds"],
                           "host_seconds": record["host_seconds"]})
                if progress is not None:
                    progress(cell_id, "miss")
            except Exception as exc:  # noqa: BLE001 — typed CellFailed outcome
                failed[job.index] = ("error", f"{type(exc).__name__}: {exc}")
                emit("failed", cell=job.index, id=cell_id, worker=0,
                     data={"kind": "error",
                           "detail": f"{type(exc).__name__}: {exc}"})
                if progress is not None:
                    progress(cell_id, "failed")
            finally:
                current["index"] = -1
    finally:
        if hooked:
            from repro.sim.engine import clear_host_hook

            clear_host_hook()
        emit("worker-exit", worker=0, data={"inline": True})
    return done, failed, {job.index: 1 for job in jobs}, {}


# ---------------------------------------------------------- parallel path
def _kill(proc: multiprocessing.Process) -> None:
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover — terminate nearly always lands
        proc.kill()
        proc.join(timeout=1.0)


def _run_jobs_parallel(jobs: List[Job], workers: int, suite: str,
                       timeout: Optional[float],
                       progress: Optional[Progress],
                       stall_grace: float = 5.0,
                       emit: Callable[..., Any] = _null_emit,
                       heartbeat: Optional[float] = DEFAULT_HEARTBEAT
                       ) -> _JobResults:
    ctx = multiprocessing.get_context()
    n_workers = min(workers, len(jobs))
    job_q = ctx.Queue(maxsize=max(2, 2 * n_workers))  # bounded by design
    result_q = ctx.Queue()
    procs: Dict[int, Any] = {}
    wids: Dict[int, int] = {}      # worker pid -> stable worker id
    next_wid = [0]

    def spawn(respawn: bool = False) -> None:
        proc = ctx.Process(target=worker_main,
                           args=(job_q, result_q, suite, heartbeat),
                           daemon=True)
        proc.start()
        procs[proc.pid] = proc
        wids[proc.pid] = next_wid[0]
        emit("worker-respawn" if respawn else "worker-spawn",
             worker=next_wid[0], data={"pid": proc.pid})
        next_wid[0] += 1

    for _ in range(n_workers):
        spawn()

    jobs_by_index: Dict[int, Job] = {job.index: job for job in jobs}
    pending = deque(jobs)
    inflight: Dict[int, Tuple[Job, float]] = {}   # worker pid -> (job, t0)
    done: Dict[int, Dict[str, Any]] = {}
    failed: Dict[int, Tuple[str, str]] = {}
    last_beat: Dict[int, Dict[str, Any]] = {}     # job index -> progress
    at_kill: Dict[int, Dict[str, Any]] = {}       # job index -> progress
    outstanding = set(jobs_by_index)

    def resolve_fail(job: Job, kind: str, detail: str) -> None:
        """Retry a lost job once, then record the typed failure."""
        cell_id = job.scenario.cell_id()
        if job.attempt < _MAX_ATTEMPTS:
            retry = Job(index=job.index, key=job.key,
                        scenario=job.scenario, attempt=job.attempt + 1)
            jobs_by_index[job.index] = retry
            pending.append(retry)
            last_beat.pop(job.index, None)  # stale: belongs to the dead try
            emit("retried", cell=job.index, id=cell_id,
                 data={"attempt": retry.attempt, "kind": kind,
                       "detail": detail})
            if progress is not None:
                progress(cell_id, "retry")
        else:
            failed[job.index] = (kind, detail)
            outstanding.discard(job.index)
            emit("failed", cell=job.index, id=cell_id,
                 data={"kind": kind, "detail": detail})
            if progress is not None:
                progress(cell_id, "failed")

    try:
        last_activity = time.monotonic()
        while outstanding:
            while pending:
                try:
                    job_q.put_nowait(pending[0])
                except _queue.Full:
                    break
                job = pending.popleft()
                emit("dispatched", cell=job.index,
                     id=job.scenario.cell_id(), key=job.key,
                     data={"attempt": job.attempt})
            try:
                tag, idx, payload, pid = result_q.get(timeout=0.05)
            except _queue.Empty:
                tag = None
            now = time.monotonic()
            if tag is not None:
                last_activity = now
            if tag == "start":
                inflight[pid] = (jobs_by_index[idx], now)
                emit("started", cell=idx,
                     id=jobs_by_index[idx].scenario.cell_id(),
                     worker=wids.get(pid))
            elif tag == "beat":
                # Progress from a live cell; stale beats (job already
                # resolved, worker already reaped) are dropped.
                if idx in outstanding and pid in procs:
                    last_beat[idx] = payload
                    emit("heartbeat", cell=idx, worker=wids.get(pid),
                         data=payload)
            elif tag == "done":
                done[idx] = payload
                outstanding.discard(idx)
                inflight.pop(pid, None)
                last_beat.pop(idx, None)
                emit("done", cell=idx,
                     id=jobs_by_index[idx].scenario.cell_id(),
                     worker=wids.get(pid),
                     data={"events_executed": payload["events_executed"],
                           "virtual_seconds": payload["virtual_seconds"],
                           "host_seconds": payload["host_seconds"]})
                if progress is not None:
                    progress(jobs_by_index[idx].scenario.cell_id(), "miss")
            elif tag == "fail":
                inflight.pop(pid, None)
                failed[idx] = ("error", payload)
                outstanding.discard(idx)
                last_beat.pop(idx, None)
                emit("failed", cell=idx,
                     id=jobs_by_index[idx].scenario.cell_id(),
                     worker=wids.get(pid),
                     data={"kind": "error", "detail": payload})
                if progress is not None:
                    progress(jobs_by_index[idx].scenario.cell_id(), "failed")
            # Per-job wall-clock timeout: kill the worker, recover the job.
            if timeout is not None:
                for wpid in list(inflight):
                    job, t0 = inflight[wpid]
                    if now - t0 > timeout:
                        inflight.pop(wpid)
                        proc = procs.pop(wpid, None)
                        prog = last_beat.get(job.index)
                        if prog is not None:
                            at_kill[job.index] = prog
                        emit("worker-kill", worker=wids.get(wpid, -1),
                             cell=job.index, data={
                                 "pid": wpid, "timeout": timeout,
                                 "progress": prog})
                        if proc is not None:
                            _kill(proc)
                        detail = f"exceeded {timeout:g}s wall clock"
                        if prog is not None:
                            detail += (f" at {prog['events_executed']} "
                                       f"events / "
                                       f"{prog['virtual_seconds']:.6f}s "
                                       f"virtual")
                        resolve_fail(job, "timeout", detail)
            # Dead workers: recover their in-flight job, keep the pool full.
            for wpid in list(procs):
                proc = procs[wpid]
                if proc.is_alive():
                    continue
                procs.pop(wpid)
                emit("worker-death", worker=wids.get(wpid, -1),
                     data={"pid": wpid, "exitcode": proc.exitcode})
                entry = inflight.pop(wpid, None)
                if entry is not None:
                    job = entry[0]
                    prog = last_beat.get(job.index)
                    if prog is not None:
                        at_kill[job.index] = prog
                    resolve_fail(job, "crash",
                                 f"worker exited with code {proc.exitcode}")
            if outstanding and len(procs) < min(n_workers, len(outstanding)):
                spawn(respawn=True)
            # Lost-job recovery. A worker that dies between taking a job
            # off the queue and its "start" message flushing leaves the
            # job unaccounted: not pending, not in flight, never resolved.
            # After a quiet grace period with nothing running and nothing
            # queued, re-queue the unaccounted jobs (re-execution is
            # harmless: cells are deterministic and content-addressed).
            if (outstanding and not inflight and not pending
                    and now - last_activity > stall_grace):
                for idx in sorted(outstanding):
                    resolve_fail(jobs_by_index[idx], "crash",
                                 "worker died before reporting the job")
                last_activity = now
    finally:
        for _ in range(len(procs)):
            try:
                job_q.put_nowait(None)
            except _queue.Full:  # pragma: no cover
                break
        deadline = time.monotonic() + 2.0
        for pid, proc in procs.items():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                _kill(proc)
            emit("worker-exit", worker=wids.get(pid, -1), data={"pid": pid})
        job_q.cancel_join_thread()
        result_q.cancel_join_thread()

    attempts = {idx: job.attempt for idx, job in jobs_by_index.items()}
    return done, failed, attempts, at_kill


# --------------------------------------------------------------- run_sweep
def run_sweep(spec: GridSpec, workers: int = 1,
              cache: Optional[ResultCache] = None,
              cache_dir: str = DEFAULT_CACHE_DIR,
              timeout: Optional[float] = None,
              progress: Optional[Progress] = None,
              stall_grace: float = 5.0,
              events: Optional[Union[str, EventLog]] = None,
              heartbeat: Optional[float] = DEFAULT_HEARTBEAT) -> SweepResult:
    """Run one sweep; see the module docstring for the full contract.

    ``events`` enables the structured event log: a path (the
    ``events.jsonl`` file to write) or a pre-built
    :class:`~repro.fabric.events.EventLog`. ``heartbeat`` is the in-cell
    progress period in host seconds (None disables heartbeats).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if heartbeat is not None and heartbeat <= 0:
        raise ValueError(f"heartbeat must be > 0 seconds, got {heartbeat}")
    if cache is None:
        cache = ResultCache(cache_dir)
    if timeout is None:
        timeout = spec.timeout
    t0 = time.monotonic()
    cells = spec.expand()
    keys = [scenario_key(sc) for sc in cells]

    owns_log = isinstance(events, str)
    log: Optional[EventLog] = None
    if owns_log:
        log = EventLog(events, suite=spec.suite, cells=len(cells),
                       workers=workers)
    elif events is not None:
        log = events
    emit = log.emit if log is not None else _null_emit
    emit("sweep-begin", data={"suite": spec.suite, "cells": len(cells),
                              "workers": workers})

    outcomes: Dict[int, CellOutcome] = {}
    records: Dict[int, Dict[str, Any]] = {}
    primary: Dict[str, int] = {}     # key -> executing cell index
    dependents: Dict[str, List[int]] = {}
    jobs: List[Job] = []
    try:
        for i, (sc, key) in enumerate(zip(cells, keys)):
            cached = cache.get(key)
            if cached is not None:
                record = dict(cached)
                record["id"] = sc.cell_id()
                record["suite"] = spec.suite
                records[i] = record
                outcomes[i] = CellOutcome(index=i, id=sc.cell_id(), key=key,
                                          outcome="hit")
                emit("cache-hit", cell=i, id=sc.cell_id(), key=key)
                if progress is not None:
                    progress(sc.cell_id(), "hit")
            elif key in primary:
                # Duplicate axis values collapse onto one execution.
                dependents.setdefault(key, []).append(i)
            else:
                primary[key] = i
                jobs.append(Job(index=i, key=key, scenario=sc))
                emit("enqueued", cell=i, id=sc.cell_id(), key=key)

        if not jobs:
            done, failures, attempts, at_kill = {}, {}, {}, {}
        elif workers <= 1:
            done, failures, attempts, at_kill = _run_jobs_serial(
                jobs, spec.suite, progress, emit=emit, heartbeat=heartbeat)
        else:
            done, failures, attempts, at_kill = _run_jobs_parallel(
                jobs, workers, spec.suite, timeout, progress,
                stall_grace=stall_grace, emit=emit, heartbeat=heartbeat)

        for job in jobs:
            i, key, sc = job.index, job.key, cells[job.index]
            if i in done:
                record = done[i]
                cache.put(key, record)
                records[i] = record
                outcomes[i] = CellOutcome(
                    index=i, id=sc.cell_id(), key=key, outcome="miss",
                    attempts=attempts.get(i, 1),
                    host_seconds=record["host_seconds"],
                    events=record["events_executed"])
            else:
                kind, detail = failures[i]
                outcomes[i] = CellOutcome(
                    index=i, id=sc.cell_id(), key=key, outcome="failed",
                    attempts=attempts.get(i, 1), error=f"{kind}: {detail}",
                    progress=at_kill.get(i))
            for dep in dependents.get(key, ()):  # same key -> share the result
                dep_sc = cells[dep]
                if i in done:
                    outcomes[dep] = CellOutcome(index=dep,
                                                id=dep_sc.cell_id(),
                                                key=key, outcome="hit")
                    emit("cache-hit", cell=dep, id=dep_sc.cell_id(), key=key,
                         data={"shared_with": i})
                    if progress is not None:
                        progress(dep_sc.cell_id(), "hit")
                else:
                    kind, detail = failures[i]
                    outcomes[dep] = CellOutcome(
                        index=dep, id=dep_sc.cell_id(), key=key,
                        outcome="failed", error=f"{kind}: {detail}")
                    emit("failed", cell=dep, id=dep_sc.cell_id(), key=key,
                         data={"kind": kind, "detail": detail,
                               "shared_with": i})
                    if progress is not None:
                        progress(dep_sc.cell_id(), "failed")

        manifest = SweepManifest(
            suite=spec.suite, workers=workers,
            cells=[outcomes[i] for i in range(len(cells))],
            elapsed=time.monotonic() - t0,
            cache=cache.stats())
        emit("sweep-end", data={"counts": manifest.counts(),
                                "elapsed": manifest.elapsed,
                                "simulated_events":
                                    manifest.simulated_events()})
    finally:
        if owns_log and log is not None:
            log.close()

    ordered = [records[i] for i in sorted(records)]
    doc: Optional[Dict[str, Any]] = None
    if ordered:
        doc = {
            "schema": _telemetry_schema(),
            "suite": spec.suite,
            "scale": spec.scales[0],
            "repeat": spec.repeat,
            "host": {
                "python": sys.version.split()[0],
                "machine": _host_platform.machine(),
                "system": _host_platform.system(),
            },
            "records": ordered,
        }
    return SweepResult(spec=spec, manifest=manifest, records=ordered,
                       doc=doc, event_log=log)


def _telemetry_schema() -> str:
    from repro.bench.telemetry import SCHEMA

    return SCHEMA
