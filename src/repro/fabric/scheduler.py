"""Sweep orchestration: expand, consult the cache, dispatch, recover.

:func:`run_sweep` is the fabric's one entry point:

1. expand the :class:`~repro.fabric.gridspec.GridSpec` into (content
   address, scenario) cells;
2. serve every cell already in the :class:`~repro.fabric.cache.ResultCache`
   (a fully-unchanged grid costs zero simulation time);
3. dispatch the misses — inline when ``workers <= 1`` (the reference
   serial path), otherwise to N worker processes over bounded queues;
4. recover: a job that exceeds the per-cell wall-clock timeout gets its
   worker killed; a dead worker's job is retried (``max_retries`` times,
   with exponential backoff between attempts); exhausted retries (or any
   in-cell exception) become a typed ``failed`` outcome in the manifest
   — the sweep never aborts wholesale unless the ``max_failures`` budget
   trips, in which case it stops dispatching, drains, and reports the
   rest of the grid as ``pending``;
5. store fresh records back into the cache and assemble the telemetry
   document (records in grid order, independent of completion order, so
   parallel and serial sweeps produce identical documents).

Crash safety: with ``journal`` set, every cell state transition is
write-ahead-journaled (:mod:`repro.fabric.journal`) and each cell that
reaches a final outcome gets an **fsync'd commit record** the moment its
result is safely in the cache — committed per cell *as results arrive*,
not at sweep end, so killing the orchestrator at any instant loses at
most the in-flight cells. ``run_sweep(resume_from=...)`` restores the
committed outcomes (verifying each against the live cache — a
quarantined entry demotes its cell back to the worklist) and re-executes
only the rest; the canonical records of an interrupted-then-resumed
sweep are byte-identical to an uninterrupted run.

Graceful shutdown: with ``handle_signals`` set, the first SIGINT/SIGTERM
stops dispatching and drains in-flight cells (journal and manifest stay
consistent, workers exit via their sentinel); a second signal abandons
the drain. Unresolved cells are reported ``pending`` and the result
carries ``status="interrupted"`` so callers can exit distinctly and a
follow-up resume picks up exactly where the sweep stopped.

Observability: with ``events`` set, every cell/worker lifecycle
transition is appended to a structured event log
(:mod:`repro.fabric.events`) as it happens, and workers report in-cell
progress heartbeats (engine events executed, virtual seconds) over the
result queue — so a live sweep can be watched (``sweep watch``), a slow
cell can be told from a stuck one, and a timed-out cell's outcome
records its progress-at-kill. Host-side timestamps stay in the event
log and the manifest; they never enter ``canonical_record``, so the
telemetry document is byte-identical with the log on or off.

The telemetry document uses the unchanged ``repro.bench.telemetry``
schema: ``bench compare``, the baseline gates, and the report generator
consume fabric output directly.
"""

from __future__ import annotations

import multiprocessing
import os
import platform as _host_platform
import queue as _queue
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

import repro.fabric.faultpoints as faultpoints
from repro.fabric.cache import DEFAULT_CACHE_DIR, ResultCache, scenario_key
from repro.fabric.events import EventLog
from repro.fabric.gridspec import GridSpec
from repro.fabric.journal import (JournalError, JournalState, SweepJournal,
                                  replay_journal)
from repro.fabric.manifest import CellOutcome, SweepManifest
from repro.fabric.worker import (Job, execute_cell, install_heartbeat,
                                 worker_main)

__all__ = ["SweepResult", "run_sweep", "DEFAULT_HEARTBEAT",
           "DEFAULT_MAX_RETRIES"]

#: Default number of times a job is re-queued after its worker dies or
#: times out before its cell is recorded as failed ("retried once").
DEFAULT_MAX_RETRIES = 1

#: Default in-cell progress heartbeat period in host seconds.
DEFAULT_HEARTBEAT = 1.0

#: Progress callback: (cell id, outcome) per resolved attempt, where
#: outcome is "hit" | "miss" | "failed" | "retry" | "restored". Cached
#: cells, duplicate (shared-result) cells, restored (resumed) cells, and
#: retried attempts all report — a fully-cached sweep narrates every
#: cell, same as an executed one.
Progress = Callable[[str, str], None]

#: Result sinks the runners feed as cells resolve: ``on_done(job,
#: record)`` and ``on_fail(job, kind, detail, progress_at_kill)``.
#: run_sweep's implementations commit each result durably (cache +
#: journal fsync) the moment it lands.
_OnDone = Callable[[Job, Dict[str, Any]], None]
_OnFail = Callable[[Job, str, str, Optional[Dict[str, Any]]], None]

#: Event kinds mirrored into the write-ahead journal as transitions.
_JOURNAL_TRANSITIONS = frozenset({"enqueued", "dispatched", "started",
                                  "retried"})


def _null_emit(kind: str, **fields: Any) -> None:
    """Event sink when no log is attached."""


class _StopControl:
    """Cooperative shutdown state shared with the signal handlers.

    ``level`` escalates: 0 = run, 1 = drain (no new dispatch, in-flight
    cells finish), 2+ = abandon the drain too.
    """

    def __init__(self) -> None:
        self.level = 0

    def request(self) -> None:
        self.level += 1

    @property
    def stopping(self) -> bool:
        return self.level >= 1


def _install_signal_handlers(stop: _StopControl) -> Dict[int, Any]:
    """Route SIGINT/SIGTERM into ``stop``; returns the handlers to
    restore (empty off the main thread, where signals cannot be set)."""
    import signal

    if threading.current_thread() is not threading.main_thread():
        return {}
    previous: Dict[int, Any] = {}

    def handler(signum: int, frame: Any) -> None:
        stop.request()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover — exotic hosts
            pass
    return previous


def _restore_signal_handlers(previous: Dict[int, Any]) -> None:
    import signal

    for sig, handler in previous.items():
        try:
            signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover
            pass


@dataclass
class SweepResult:
    """Everything one sweep produced."""

    spec: GridSpec
    manifest: SweepManifest
    #: successful records, in grid order (hits and misses alike)
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: telemetry document (None when every cell failed)
    doc: Optional[Dict[str, Any]] = None
    #: the sweep's event log (None unless ``events`` was requested)
    event_log: Optional[EventLog] = None
    #: how the sweep ended: "complete" | "interrupted" | "aborted"
    status: str = "complete"
    #: cells restored from a resume journal without re-execution
    restored: int = 0


# ------------------------------------------------------------ serial path
def _run_jobs_serial(jobs: List[Job], suite: str, progress: Optional[Progress],
                     emit: Callable[..., Any] = _null_emit,
                     heartbeat: Optional[float] = None,
                     on_done: Optional[_OnDone] = None,
                     on_fail: Optional[_OnFail] = None,
                     stop: Optional[_StopControl] = None,
                     max_failures: Optional[int] = None) -> bool:
    """Reference execution: same cell path as the workers, inline.

    Per-cell timeouts are not enforced inline (there is no worker to
    kill); in-cell exceptions still become typed failures. With an event
    log attached, the inline path reports as worker 0 — including
    heartbeats, via the same engine hook the worker processes use.
    Returns True when the ``max_failures`` budget aborted the run;
    a stop request (checked between cells — an executing cell always
    finishes) simply leaves the remaining jobs unresolved.
    """
    current: Dict[str, Any] = {"index": -1}
    failures = 0
    aborted = False
    hooked = False
    if heartbeat is not None and emit is not _null_emit:
        def beat(events: int, virtual: float) -> None:
            if current["index"] >= 0:
                emit("heartbeat", cell=current["index"], worker=0,
                     data={"events_executed": int(events),
                           "virtual_seconds": float(virtual)})

        install_heartbeat(beat, heartbeat)
        hooked = True
    emit("worker-spawn", worker=0, data={"inline": True})
    try:
        for job in jobs:
            if aborted or (stop is not None and stop.stopping):
                break
            cell_id = job.scenario.cell_id()
            emit("dispatched", cell=job.index, id=cell_id, key=job.key,
                 data={"attempt": job.attempt})
            emit("started", cell=job.index, id=cell_id, worker=0)
            current["index"] = job.index
            try:
                record = execute_cell(job.scenario, suite=suite)
                emit("done", cell=job.index, id=cell_id, worker=0,
                     data={"events_executed": record["events_executed"],
                           "virtual_seconds": record["virtual_seconds"],
                           "host_seconds": record["host_seconds"]})
                if on_done is not None:
                    on_done(job, record)
                if progress is not None:
                    progress(cell_id, "miss")
            except Exception as exc:  # noqa: BLE001 — typed CellFailed outcome
                detail = f"{type(exc).__name__}: {exc}"
                emit("failed", cell=job.index, id=cell_id, worker=0,
                     data={"kind": "error", "detail": detail})
                if on_fail is not None:
                    on_fail(job, "error", detail, None)
                if progress is not None:
                    progress(cell_id, "failed")
                failures += 1
                if max_failures is not None and failures >= max_failures:
                    aborted = True
            finally:
                current["index"] = -1
    finally:
        if hooked:
            from repro.sim.engine import clear_host_hook

            clear_host_hook()
        emit("worker-exit", worker=0, data={"inline": True})
    return aborted


# ---------------------------------------------------------- parallel path
def _kill(proc: multiprocessing.Process) -> None:
    proc.terminate()
    proc.join(timeout=1.0)
    if proc.is_alive():  # pragma: no cover — terminate nearly always lands
        proc.kill()
        proc.join(timeout=1.0)


def _run_jobs_parallel(jobs: List[Job], workers: int, suite: str,
                       timeout: Optional[float],
                       progress: Optional[Progress],
                       stall_grace: float = 5.0,
                       emit: Callable[..., Any] = _null_emit,
                       heartbeat: Optional[float] = DEFAULT_HEARTBEAT,
                       on_done: Optional[_OnDone] = None,
                       on_fail: Optional[_OnFail] = None,
                       stop: Optional[_StopControl] = None,
                       max_retries: int = DEFAULT_MAX_RETRIES,
                       max_failures: Optional[int] = None,
                       retry_backoff: float = 0.0) -> bool:
    """Dispatch jobs over N worker processes; see run_sweep's contract.

    Returns True when the ``max_failures`` budget aborted the run. A
    stop request drains: nothing new is dispatched, cells already handed
    to the pool finish (a second request abandons even those), and
    unresolved jobs are left for the caller to mark pending.
    """
    stop = stop or _StopControl()
    max_attempts = 1 + max(0, max_retries)
    ctx = multiprocessing.get_context()
    n_workers = min(workers, len(jobs))
    job_q = ctx.Queue(maxsize=max(2, 2 * n_workers))  # bounded by design
    result_q = ctx.Queue()
    procs: Dict[int, Any] = {}
    wids: Dict[int, int] = {}      # worker pid -> stable worker id
    next_wid = [0]

    def spawn(respawn: bool = False) -> None:
        proc = ctx.Process(target=worker_main,
                           args=(job_q, result_q, suite, heartbeat),
                           daemon=True)
        proc.start()
        procs[proc.pid] = proc
        wids[proc.pid] = next_wid[0]
        emit("worker-respawn" if respawn else "worker-spawn",
             worker=next_wid[0], data={"pid": proc.pid})
        next_wid[0] += 1

    for _ in range(n_workers):
        spawn()

    jobs_by_index: Dict[int, Job] = {job.index: job for job in jobs}
    pending = deque(jobs)
    delayed: List[Tuple[float, Job]] = []         # (ready_at, job) backoff
    handed: Set[int] = set()       # on the job queue, no "start" seen yet
    inflight: Dict[int, Tuple[Job, float]] = {}   # worker pid -> (job, t0)
    last_beat: Dict[int, Dict[str, Any]] = {}     # job index -> progress
    outstanding = set(jobs_by_index)
    failures = [0]
    aborted = [False]

    def resolve_fail(job: Job, kind: str, detail: str,
                     prog: Optional[Dict[str, Any]] = None) -> None:
        """Retry a lost job (with backoff), then record the typed failure.

        While stopping/aborting, a lost job is simply left unresolved —
        the caller reports it pending and resume re-runs it."""
        cell_id = job.scenario.cell_id()
        handed.discard(job.index)
        if stop.stopping or aborted[0]:
            last_beat.pop(job.index, None)
            return
        if job.attempt < max_attempts:
            retry = Job(index=job.index, key=job.key,
                        scenario=job.scenario, attempt=job.attempt + 1)
            jobs_by_index[job.index] = retry
            delay = retry_backoff * (2 ** (job.attempt - 1))
            if delay > 0.0:
                delayed.append((time.monotonic() + delay, retry))
            else:
                pending.append(retry)
            last_beat.pop(job.index, None)  # stale: belongs to the dead try
            emit("retried", cell=job.index, id=cell_id,
                 data={"attempt": retry.attempt, "kind": kind,
                       "detail": detail, "backoff": round(delay, 3)})
            if progress is not None:
                progress(cell_id, "retry")
        else:
            outstanding.discard(job.index)
            last_beat.pop(job.index, None)
            emit("failed", cell=job.index, id=cell_id,
                 data={"kind": kind, "detail": detail})
            if on_fail is not None:
                on_fail(job, kind, detail, prog)
            if progress is not None:
                progress(cell_id, "failed")
            failures[0] += 1
            if max_failures is not None and failures[0] >= max_failures:
                aborted[0] = True

    try:
        last_activity = time.monotonic()
        while outstanding:
            now = time.monotonic()
            draining = stop.stopping or aborted[0]
            if draining:
                pending.clear()
                delayed.clear()
                if stop.level >= 2:
                    break               # abandon the drain: hard stop
                if not inflight and not handed:
                    break               # drained clean
                if not procs:
                    break               # nobody left to finish anything
            else:
                # Matured backoff retries re-enter the dispatch queue.
                if delayed:
                    ready = [j for at, j in delayed if at <= now]
                    if ready:
                        delayed[:] = [(at, j) for at, j in delayed
                                      if at > now]
                        pending.extend(ready)
                while pending:
                    try:
                        job_q.put_nowait(pending[0])
                    except _queue.Full:
                        break
                    job = pending.popleft()
                    handed.add(job.index)
                    emit("dispatched", cell=job.index,
                         id=job.scenario.cell_id(), key=job.key,
                         data={"attempt": job.attempt})
            try:
                tag, idx, payload, pid = result_q.get(timeout=0.05)
            except _queue.Empty:
                tag = None
            now = time.monotonic()
            if tag is not None:
                last_activity = now
            if tag == "start":
                handed.discard(idx)
                inflight[pid] = (jobs_by_index[idx], now)
                emit("started", cell=idx,
                     id=jobs_by_index[idx].scenario.cell_id(),
                     worker=wids.get(pid))
            elif tag == "beat":
                # Progress from a live cell; stale beats (job already
                # resolved, worker already reaped) are dropped.
                if idx in outstanding and pid in procs:
                    last_beat[idx] = payload
                    emit("heartbeat", cell=idx, worker=wids.get(pid),
                         data=payload)
            elif tag == "done":
                job = jobs_by_index[idx]
                outstanding.discard(idx)
                handed.discard(idx)
                inflight.pop(pid, None)
                last_beat.pop(idx, None)
                emit("done", cell=idx, id=job.scenario.cell_id(),
                     worker=wids.get(pid),
                     data={"events_executed": payload["events_executed"],
                           "virtual_seconds": payload["virtual_seconds"],
                           "host_seconds": payload["host_seconds"]})
                if on_done is not None:
                    on_done(job, payload)
                if progress is not None:
                    progress(job.scenario.cell_id(), "miss")
            elif tag == "fail":
                job = jobs_by_index[idx]
                inflight.pop(pid, None)
                outstanding.discard(idx)
                handed.discard(idx)
                last_beat.pop(idx, None)
                emit("failed", cell=idx, id=job.scenario.cell_id(),
                     worker=wids.get(pid),
                     data={"kind": "error", "detail": payload})
                if on_fail is not None:
                    on_fail(job, "error", payload, None)
                if progress is not None:
                    progress(job.scenario.cell_id(), "failed")
                failures[0] += 1
                if max_failures is not None and failures[0] >= max_failures:
                    aborted[0] = True
            # Per-job wall-clock timeout: kill the worker, recover the job.
            if timeout is not None:
                for wpid in list(inflight):
                    job, t0 = inflight[wpid]
                    if now - t0 > timeout:
                        inflight.pop(wpid)
                        proc = procs.pop(wpid, None)
                        prog = last_beat.get(job.index)
                        emit("worker-kill", worker=wids.get(wpid, -1),
                             cell=job.index, data={
                                 "pid": wpid, "timeout": timeout,
                                 "progress": prog})
                        if proc is not None:
                            _kill(proc)
                        detail = f"exceeded {timeout:g}s wall clock"
                        if prog is not None:
                            detail += (f" at {prog['events_executed']} "
                                       f"events / "
                                       f"{prog['virtual_seconds']:.6f}s "
                                       f"virtual")
                        resolve_fail(job, "timeout", detail, prog)
            # Dead workers: recover their in-flight job, keep the pool full.
            for wpid in list(procs):
                proc = procs[wpid]
                if proc.is_alive():
                    continue
                procs.pop(wpid)
                emit("worker-death", worker=wids.get(wpid, -1),
                     data={"pid": wpid, "exitcode": proc.exitcode})
                entry = inflight.pop(wpid, None)
                if entry is not None:
                    job = entry[0]
                    prog = last_beat.get(job.index)
                    detail = f"worker exited with code {proc.exitcode}"
                    resolve_fail(job, "crash", detail, prog)
            if (outstanding and not stop.stopping and not aborted[0]
                    and len(procs) < min(n_workers, len(outstanding))):
                spawn(respawn=True)
            # Lost-job recovery. A worker that dies between taking a job
            # off the queue and its "start" message flushing leaves the
            # job unaccounted: not pending, not in flight, never resolved.
            # After a quiet grace period with nothing running and nothing
            # queued, re-queue the unaccounted jobs (re-execution is
            # harmless: cells are deterministic and content-addressed).
            if (outstanding and not inflight and not pending and not delayed
                    and now - last_activity > stall_grace):
                for idx in sorted(outstanding):
                    resolve_fail(jobs_by_index[idx], "crash",
                                 "worker died before reporting the job")
                last_activity = now
    finally:
        for _ in range(len(procs)):
            try:
                job_q.put_nowait(None)
            except _queue.Full:  # pragma: no cover
                break
        deadline = time.monotonic() + 2.0
        for pid, proc in procs.items():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                _kill(proc)
            emit("worker-exit", worker=wids.get(pid, -1), data={"pid": pid})
        job_q.cancel_join_thread()
        result_q.cancel_join_thread()

    return aborted[0]


# --------------------------------------------------------------- run_sweep
def run_sweep(spec: GridSpec, workers: int = 1,
              cache: Optional[ResultCache] = None,
              cache_dir: str = DEFAULT_CACHE_DIR,
              timeout: Optional[float] = None,
              progress: Optional[Progress] = None,
              stall_grace: float = 5.0,
              events: Optional[Union[str, EventLog]] = None,
              heartbeat: Optional[float] = DEFAULT_HEARTBEAT,
              journal: Optional[Union[str, SweepJournal]] = None,
              resume_from: Optional[Union[str, JournalState]] = None,
              retry_failed: bool = False,
              max_retries: int = DEFAULT_MAX_RETRIES,
              max_failures: Optional[int] = None,
              retry_backoff: float = 0.0,
              handle_signals: bool = False) -> SweepResult:
    """Run one sweep; see the module docstring for the full contract.

    ``events`` enables the structured event log: a path (the
    ``events.jsonl`` file to write) or a pre-built
    :class:`~repro.fabric.events.EventLog`. ``heartbeat`` is the in-cell
    progress period in host seconds (None disables heartbeats).

    ``journal`` enables the durable write-ahead journal (a path or a
    pre-built :class:`~repro.fabric.journal.SweepJournal`);
    ``resume_from`` (a journal path or a replayed
    :class:`~repro.fabric.journal.JournalState`) restores the committed
    cells of an interrupted sweep instead of re-executing them —
    ``retry_failed`` additionally re-runs cells that committed as
    failed. ``max_retries`` / ``max_failures`` / ``retry_backoff`` are
    the failure policy; ``handle_signals`` arms the graceful
    SIGINT/SIGTERM drain (main thread only).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if heartbeat is not None and heartbeat <= 0:
        raise ValueError(f"heartbeat must be > 0 seconds, got {heartbeat}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if max_failures is not None and max_failures < 1:
        raise ValueError(f"max_failures must be >= 1, got {max_failures}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if cache is None:
        cache = ResultCache(cache_dir)
    if timeout is None:
        timeout = spec.timeout
    t0 = time.monotonic()
    cells = spec.expand()
    keys = [scenario_key(sc) for sc in cells]

    resume_state: Optional[JournalState] = None
    if resume_from is not None:
        resume_state = (replay_journal(resume_from)
                        if isinstance(resume_from, str) else resume_from)
        declared = resume_state.header.get("cells")
        if declared is not None and int(declared) != len(cells):
            raise JournalError(
                f"journal describes {declared} cells but this grid expands "
                f"to {len(cells)} — refusing to resume a different sweep")

    owns_journal = isinstance(journal, str)
    jnl: Optional[SweepJournal] = None
    if owns_journal:
        if resume_state is not None and os.path.exists(journal):
            jnl = SweepJournal.resume(journal)
        else:
            jnl = SweepJournal(journal, header={
                "suite": spec.suite, "cells": len(cells),
                "workers": int(workers), "cache_dir": str(cache.root),
                "grid": spec.to_dict()})
    elif journal is not None:
        jnl = journal

    owns_log = isinstance(events, str)
    log: Optional[EventLog] = None
    if owns_log:
        log = EventLog(events, suite=spec.suite, cells=len(cells),
                       workers=workers)
    elif events is not None:
        log = events

    def emit(kind: str, **fields: Any) -> None:
        if log is not None:
            log.emit(kind, **fields)
        if jnl is not None and kind in _JOURNAL_TRANSITIONS:
            jnl.transition(fields.get("cell", -1), kind)

    stop = _StopControl()
    prev_handlers: Dict[int, Any] = {}
    if handle_signals:
        prev_handlers = _install_signal_handlers(stop)

    emit("sweep-begin", data={"suite": spec.suite, "cells": len(cells),
                              "workers": workers,
                              "resumed": resume_state is not None})

    outcomes: Dict[int, CellOutcome] = {}
    records: Dict[int, Dict[str, Any]] = {}
    primary: Dict[str, int] = {}     # key -> executing cell index
    dependents: Dict[str, List[int]] = {}
    jobs: List[Job] = []
    restored = 0
    aborted = False

    def commit_done(job: Job, record: Dict[str, Any]) -> None:
        """A cell executed: store, then durably commit its outcome."""
        i = job.index
        sc = cells[i]
        cache.put(job.key, record)
        faultpoints.maybe_crash(faultpoints.ORCH_PRE_COMMIT)
        records[i] = record
        outcomes[i] = CellOutcome(
            index=i, id=sc.cell_id(), key=job.key, outcome="miss",
            attempts=job.attempt, host_seconds=record["host_seconds"],
            events=record["events_executed"])
        if jnl is not None:
            jnl.commit(outcomes[i])
            faultpoints.maybe_crash(faultpoints.ORCH_POST_COMMIT)

    def commit_failed(job: Job, kind: str, detail: str,
                      prog: Optional[Dict[str, Any]]) -> None:
        i = job.index
        sc = cells[i]
        outcomes[i] = CellOutcome(
            index=i, id=sc.cell_id(), key=job.key, outcome="failed",
            attempts=job.attempt, error=f"{kind}: {detail}", progress=prog)
        if jnl is not None:
            jnl.commit(outcomes[i])

    try:
        for i, (sc, key) in enumerate(zip(cells, keys)):
            committed = (resume_state.committed.get(i)
                         if resume_state is not None else None)
            if committed is not None:
                if committed.key != key:
                    raise JournalError(
                        f"journal cell {i} was committed under a different "
                        f"content address — the journal does not match "
                        f"this grid")
                if committed.outcome == "failed" and not retry_failed:
                    outcomes[i] = committed
                    restored += 1
                    emit("failed", cell=i, id=sc.cell_id(), key=key,
                         data={"kind": "restored",
                               "detail": committed.error or ""})
                    if progress is not None:
                        progress(sc.cell_id(), "restored")
                    continue
                if committed.outcome in ("hit", "miss"):
                    cached = cache.get(key)
                    if cached is not None:
                        record = dict(cached)
                        record["id"] = sc.cell_id()
                        record["suite"] = spec.suite
                        records[i] = record
                        outcomes[i] = committed
                        restored += 1
                        emit("cache-hit", cell=i, id=sc.cell_id(), key=key,
                             data={"restored": True})
                        if progress is not None:
                            progress(sc.cell_id(), "restored")
                        continue
                    # committed but the cache entry is gone or was
                    # quarantined: the commit record alone is not a
                    # result — demote the cell back to the worklist
            cached = cache.get(key)
            if cached is not None:
                record = dict(cached)
                record["id"] = sc.cell_id()
                record["suite"] = spec.suite
                records[i] = record
                outcomes[i] = CellOutcome(index=i, id=sc.cell_id(), key=key,
                                          outcome="hit")
                if jnl is not None:
                    jnl.commit(outcomes[i], sync=False)
                emit("cache-hit", cell=i, id=sc.cell_id(), key=key)
                if progress is not None:
                    progress(sc.cell_id(), "hit")
            elif key in primary:
                # Duplicate axis values collapse onto one execution.
                dependents.setdefault(key, []).append(i)
            else:
                primary[key] = i
                jobs.append(Job(index=i, key=key, scenario=sc))
                emit("enqueued", cell=i, id=sc.cell_id(), key=key)
        if jnl is not None:
            jnl.sync()       # one fsync covers the whole hit scan

        if not jobs:
            pass
        elif workers <= 1:
            aborted = _run_jobs_serial(
                jobs, spec.suite, progress, emit=emit, heartbeat=heartbeat,
                on_done=commit_done, on_fail=commit_failed, stop=stop,
                max_failures=max_failures)
        else:
            aborted = _run_jobs_parallel(
                jobs, workers, spec.suite, timeout, progress,
                stall_grace=stall_grace, emit=emit, heartbeat=heartbeat,
                on_done=commit_done, on_fail=commit_failed, stop=stop,
                max_retries=max_retries, max_failures=max_failures,
                retry_backoff=retry_backoff)

        # Unresolved jobs (interrupted / aborted) are pending, not failed:
        # they carry no commit record, so resume re-executes exactly them.
        for job in jobs:
            if job.index not in outcomes:
                sc = cells[job.index]
                outcomes[job.index] = CellOutcome(
                    index=job.index, id=sc.cell_id(), key=job.key,
                    outcome="pending", attempts=0)

        for job in jobs:
            i, key = job.index, job.key
            for dep in dependents.get(key, ()):  # same key -> share the result
                dep_sc = cells[dep]
                if i in records:
                    outcomes[dep] = CellOutcome(index=dep,
                                                id=dep_sc.cell_id(),
                                                key=key, outcome="hit")
                    if jnl is not None:
                        jnl.commit(outcomes[dep], sync=False)
                    emit("cache-hit", cell=dep, id=dep_sc.cell_id(), key=key,
                         data={"shared_with": i})
                    if progress is not None:
                        progress(dep_sc.cell_id(), "hit")
                elif outcomes[i].outcome == "failed":
                    outcomes[dep] = CellOutcome(
                        index=dep, id=dep_sc.cell_id(), key=key,
                        outcome="failed", error=outcomes[i].error)
                    if jnl is not None:
                        jnl.commit(outcomes[dep], sync=False)
                    kind, _, detail = (outcomes[i].error or ": ").partition(": ")
                    emit("failed", cell=dep, id=dep_sc.cell_id(), key=key,
                         data={"kind": kind, "detail": detail,
                               "shared_with": i})
                    if progress is not None:
                        progress(dep_sc.cell_id(), "failed")
                else:   # primary never resolved — dependents pend with it
                    outcomes[dep] = CellOutcome(
                        index=dep, id=dep_sc.cell_id(), key=key,
                        outcome="pending", attempts=0)
        if jnl is not None:
            jnl.sync()

        pending_cells = sum(1 for oc in outcomes.values()
                            if oc.outcome == "pending")
        if aborted:
            status = "aborted"
        elif stop.stopping and pending_cells:
            status = "interrupted"
        else:
            status = "complete"

        manifest = SweepManifest(
            suite=spec.suite, workers=workers,
            cells=[outcomes[i] for i in range(len(cells))],
            elapsed=time.monotonic() - t0,
            cache=cache.stats(), status=status)
        emit("sweep-end", data={"counts": manifest.counts(),
                                "elapsed": manifest.elapsed,
                                "status": status,
                                "simulated_events":
                                    manifest.simulated_events()})
        if jnl is not None:
            jnl.status(status)
    finally:
        if handle_signals:
            _restore_signal_handlers(prev_handlers)
        if owns_log and log is not None:
            log.close()
        if owns_journal and jnl is not None:
            jnl.close()

    ordered = [records[i] for i in sorted(records)]
    doc: Optional[Dict[str, Any]] = None
    if ordered:
        doc = {
            "schema": _telemetry_schema(),
            "suite": spec.suite,
            "scale": spec.scales[0],
            "repeat": spec.repeat,
            "host": {
                "python": sys.version.split()[0],
                "machine": _host_platform.machine(),
                "system": _host_platform.system(),
            },
            "records": ordered,
        }
    return SweepResult(spec=spec, manifest=manifest, records=ordered,
                       doc=doc, event_log=log, status=status,
                       restored=restored)


def _telemetry_schema() -> str:
    from repro.bench.telemetry import SCHEMA

    return SCHEMA
