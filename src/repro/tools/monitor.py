"""External monitoring system (§4.3, third consumer).

An :class:`AttachedMonitor` hooks a built platform *from outside*: it
subscribes to every module's counters and additionally samples the full
statistics tree at a fixed virtual-time period (a self-rescheduling engine
event, like a real monitoring agent sharing the machine). The application
needs no changes and the programming model stays fully transparent — the
point of the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["CounterSample", "CounterEvent", "AttachedMonitor"]


@dataclass(frozen=True)
class CounterEvent:
    """One live counter update seen through a subscription."""

    time: float
    module: str
    counter: str
    value: float


@dataclass
class CounterSample:
    """One periodic snapshot of the whole statistics tree."""

    time: float
    tree: Dict[str, Any] = field(default_factory=dict)

    def get(self, module: str, counter: str, default: float = 0.0) -> float:
        return self.tree.get(module, {}).get(counter, default)


class AttachedMonitor:
    """Attach to a platform; collect live events and periodic samples."""

    def __init__(self, platform, period: Optional[float] = None) -> None:
        self.platform = platform
        self.hamster = platform.hamster
        self.period = period
        self.events: List[CounterEvent] = []
        self.samples: List[CounterSample] = []
        self._attached = False

    # ---------------------------------------------------------------- attach
    def attach(self) -> "AttachedMonitor":
        """Subscribe to all module counters; start the sampler if a period
        was configured. Call before ``run_spmd``.

        The sampler is a self-rescheduling engine event (not a process): it
        keeps sampling only while application tasks are alive, so it never
        keeps the simulation running by itself. One final sample may land
        up to one period after the last task exits.
        """
        if self._attached:
            return self
        self._attached = True
        engine = self.hamster.engine
        for name, stats in self.hamster.monitoring._modules.items():
            stats.subscribe(self._on_update)
        if self.period is not None:
            def tick() -> None:
                self.snapshot()
                if any(p.alive and not p.daemon for p in engine._processes):
                    engine.schedule(self.period, tick)

            engine.schedule(self.period, tick)
        return self

    def _on_update(self, module: str, counter: str, value: float) -> None:
        self.events.append(CounterEvent(time=self.hamster.engine.now,
                                        module=module, counter=counter,
                                        value=value))

    # --------------------------------------------------------------- queries
    def snapshot(self) -> CounterSample:
        """Take one on-demand snapshot of the full statistics tree."""
        sample = CounterSample(time=self.hamster.engine.now,
                               tree=self.hamster.query_statistics())
        self.samples.append(sample)
        return sample

    def timeline(self, module: str, counter: str) -> List[CounterEvent]:
        """All live updates of one counter, in time order."""
        return [e for e in self.events
                if e.module == module and e.counter == counter]

    def rate(self, module: str, counter: str) -> float:
        """Average updates/second of a counter over the monitored window."""
        events = self.timeline(module, counter)
        if len(events) < 2:
            return 0.0
        span = events[-1].time - events[0].time
        return (len(events) - 1) / span if span > 0 else float("inf")

    def peak(self, module: str, counter: str) -> float:
        events = self.timeline(module, counter)
        return max((e.value for e in events), default=0.0)

    def report(self) -> str:
        """Human-readable summary of everything observed."""
        lines = [f"monitor report: {len(self.events)} live events, "
                 f"{len(self.samples)} samples"]
        by_counter: Dict[tuple, int] = {}
        for e in self.events:
            by_counter[(e.module, e.counter)] = by_counter.get(
                (e.module, e.counter), 0) + 1
        for (module, counter), count in sorted(by_counter.items()):
            lines.append(f"  {module}.{counter}: {count} updates, "
                         f"final={self.peak(module, counter):g}")
        return "\n".join(lines)
