"""Machine-readable exports of runs and experiments.

Downstream tooling (plotting scripts, CI dashboards, regression trackers)
wants the reproduction's outputs as data, not prose. This module serializes

* one benchmark run (an :class:`~repro.apps.common.AppResult` + its
  platform profile) to a JSON document,
* a figure's rows to CSV,
* a full statistics tree to flat ``module.counter`` CSV rows,

all with stable key ordering so diffs between runs are meaningful.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Mapping, Optional

__all__ = ["run_to_json", "figure_to_csv", "stats_to_csv", "write_text"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other exotic leaves to plain JSON types."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(),
                                                        key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def run_to_json(result, platform=None, indent: int = 2) -> str:
    """Serialize one benchmark outcome (and optionally its platform's
    profile) to JSON."""
    doc: Dict[str, Any] = {
        "app": result.app,
        "verified": bool(result.verified),
        "checksum": float(result.checksum),
        "phases_seconds": _jsonable(result.phases),
        "params": _jsonable(result.extra),
    }
    if platform is not None:
        from repro.tools.profile import profile_platform

        report = profile_platform(platform)
        doc["platform"] = report.platform
        doc["total_virtual_seconds"] = report.total_time
        doc["wire"] = {"messages": report.messages, "bytes": report.wire_bytes}
        doc["engine"] = {"events_executed": report.events_executed,
                         "host_seconds": report.host_seconds,
                         "events_per_sec": report.events_per_sec}
        doc["ranks"] = [_jsonable(vars(r)) for r in report.ranks]
    return json.dumps(doc, indent=indent, sort_keys=True)


def figure_to_csv(rows: Mapping[str, Any], value_header: str = "value") -> str:
    """Render figure data (label -> value or label -> {series: value}) as
    CSV with labels in insertion order."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    items = list(rows.items())
    if items and isinstance(items[0][1], Mapping):
        series = list(items[0][1].keys())
        writer.writerow(["benchmark"] + series)
        for label, values in items:
            writer.writerow([label] + [f"{float(values[s]):.4f}" for s in series])
    else:
        writer.writerow(["benchmark", value_header])
        for label, value in items:
            writer.writerow([label, f"{float(value):.4f}"])
    return out.getvalue()


def stats_to_csv(tree: Mapping[str, Any]) -> str:
    """Flatten a statistics tree to ``scope,counter,value`` rows."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["scope", "counter", "value"])

    def walk(scope: str, node: Any) -> None:
        if isinstance(node, Mapping):
            for key in sorted(node, key=str):
                walk(f"{scope}.{key}" if scope else str(key), node[key])
            return
        try:
            writer.writerow([scope.rsplit(".", 1)[0], scope.rsplit(".", 1)[1],
                             f"{float(node):g}"])
        except (TypeError, ValueError):
            writer.writerow([scope.rsplit(".", 1)[0], scope.rsplit(".", 1)[1],
                             str(node)])

    walk("", tree)
    return out.getvalue()


def write_text(path: str, content: str) -> None:
    """Write an export to disk (tiny helper so the CLI stays declarative)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
