"""Trace summaries: digest the simulation event trace.

Enable tracing in a configuration (``cfg.trace = True``) and the kernel
records structured events — network sends, page fetches, invalidations,
process exits. :func:`summarize_trace` turns that stream into the views a
protocol developer wants: message histograms by kind, traffic matrices,
fetch timelines, and per-interval activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bench.report import render_table
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["TraceSummary", "summarize_trace"]


@dataclass
class TraceSummary:
    """Digest of one simulation's trace."""

    n_events: int = 0
    duration: float = 0.0
    #: message kind -> (count, total bytes)
    messages_by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (src, dst) -> message count
    traffic_matrix: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: page fetch events: (time, rank, page, home)
    fetches: List[Tuple[float, int, int, int]] = field(default_factory=list)
    #: invalidation events: (time, rank, pages)
    invalidations: List[Tuple[float, int, int]] = field(default_factory=list)
    #: every trace kind -> occurrence count (includes fault/retry/detector
    #: events, so chaos runs digest to something a human can read)
    events_by_kind: Dict[str, int] = field(default_factory=dict)

    # -------------------------------------------------------------- queries
    def message_count(self, kind_prefix: str = "") -> int:
        return sum(count for kind, (count, _) in self.messages_by_kind.items()
                   if kind.startswith(kind_prefix))

    def busiest_pair(self) -> Tuple[Tuple[int, int], int]:
        if not self.traffic_matrix:
            return (0, 0), 0
        pair = max(self.traffic_matrix, key=self.traffic_matrix.get)
        return pair, self.traffic_matrix[pair]

    def hottest_pages(self, top: int = 5) -> List[Tuple[int, int]]:
        """Pages by fetch count (page, count) — the false-sharing/ping-pong
        detector."""
        counts: Dict[int, int] = {}
        for _, _, page, _ in self.fetches:
            counts[page] = counts.get(page, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])[:top]

    def fetch_rate_timeline(self, buckets: int = 10) -> List[int]:
        """Fetch counts over ``buckets`` equal slices of the run."""
        out = [0] * buckets
        if not self.fetches or self.duration <= 0:
            return out
        for time, *_ in self.fetches:
            index = min(buckets - 1, int(time / self.duration * buckets))
            out[index] += 1
        return out

    def render(self) -> str:
        rows = [[kind, count, nbytes]
                for kind, (count, nbytes) in sorted(self.messages_by_kind.items())]
        table = render_table(["message kind", "count", "bytes"], rows,
                             title=f"trace: {self.n_events} events over "
                                   f"{self.duration * 1e3:.3f} ms")
        hot = ", ".join(f"page {p} x{c}" for p, c in self.hottest_pages(3))
        out = table + (f"\nfetches: {len(self.fetches)} (hottest: {hot})"
                       if self.fetches else "")
        notable = {k: c for k, c in sorted(self.events_by_kind.items())
                   if k.startswith(("fault.", "hb.", "am."))}
        if notable:
            out += "\nevents : " + ", ".join(
                f"{k}={c}" for k, c in notable.items())
        return out


def summarize_trace(trace: Tracer) -> TraceSummary:
    """Digest a :class:`~repro.sim.trace.Tracer`'s event stream."""
    summary = TraceSummary(n_events=len(trace))
    last_time = 0.0
    for event in trace:
        last_time = max(last_time, event.time)
        summary.events_by_kind[event.kind] = (
            summary.events_by_kind.get(event.kind, 0) + 1)
        if event.kind == "net.send":
            kind = event.get("msg_kind", "?")
            count, nbytes = summary.messages_by_kind.get(kind, (0, 0))
            summary.messages_by_kind[kind] = (count + 1,
                                              nbytes + event.get("size", 0))
            pair = (event.get("src", -1), event.get("dst", -1))
            summary.traffic_matrix[pair] = summary.traffic_matrix.get(pair, 0) + 1
        elif event.kind == "jj.fetch":
            summary.fetches.append((event.time, event.get("rank", -1),
                                    event.get("page", -1), event.get("home", -1)))
        elif event.kind == "jj.invalidate":
            summary.invalidations.append((event.time, event.get("rank", -1),
                                          event.get("pages", 0)))
    summary.duration = last_time
    return summary
