"""Post-run profiling reports over the monitoring surfaces.

Where :mod:`repro.tools.monitor` watches a run live, this module digests a
*finished* platform into the questions a tuner asks first: where did the
time go (compute vs bus vs waiting), what did the protocol do per rank
(faults, fetches, diffs, notices), and how much hit the wire. Works on any
platform/model combination because it reads only the public statistics.

Beyond the virtual-time view, the report now also answers the *host*-side
question — how fast did the simulator itself run (engine events executed,
wall seconds, events/second) and, when a
:class:`~repro.bench.hostprof.HostProfiler` or
:class:`~repro.bench.hostprof.PhaseWallTimers` accompanied the run, which
host functions and phases to optimize first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.report import render_table

__all__ = ["RankProfile", "ProfileReport", "profile_platform"]


@dataclass
class RankProfile:
    """Digest of one rank's protocol activity."""

    rank: int
    node: int
    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    faults: int = 0
    fetches: int = 0
    diffs: int = 0
    diff_bytes: int = 0
    invalidations: int = 0
    remote_ops: int = 0
    lock_ops: int = 0
    barriers: int = 0
    lock_wait: float = 0.0
    barrier_wait: float = 0.0


@dataclass
class ProfileReport:
    """Whole-platform profile."""

    platform: str
    total_time: float
    ranks: List[RankProfile] = field(default_factory=list)
    messages: int = 0
    wire_bytes: int = 0
    bus_bytes: Dict[int, int] = field(default_factory=dict)
    bus_contention: Dict[int, float] = field(default_factory=dict)
    compute_time: Dict[int, float] = field(default_factory=dict)
    #: host-side engine telemetry (repro.bench): dispatched events, real
    #: wall seconds spent inside Engine.run, and their ratio
    events_executed: int = 0
    host_seconds: float = 0.0
    events_per_sec: float = 0.0
    #: optional attachments from repro.bench.hostprof
    host_hot: Optional[Any] = None      # HostProfiler
    host_phases: Optional[Any] = None   # PhaseWallTimers

    # -------------------------------------------------------------- queries
    def rank(self, rank: int) -> RankProfile:
        return self.ranks[rank]

    def total(self, attr: str) -> float:
        return sum(getattr(r, attr) for r in self.ranks)

    def sync_share(self) -> float:
        """Fraction of total virtual time the *average rank* spent waiting
        at locks and barriers."""
        if self.total_time <= 0 or not self.ranks:
            return 0.0
        waits = self.total("lock_wait") + self.total("barrier_wait")
        return waits / (self.total_time * len(self.ranks))

    def communication_per_rank(self) -> float:
        return self.wire_bytes / len(self.ranks) if self.ranks else 0.0

    def hotspots(self, top: int = 3) -> List[RankProfile]:
        """Ranks ranked by protocol work (faults+fetches+diffs)."""
        return sorted(self.ranks, key=lambda r: -(r.faults + r.fetches + r.diffs))[:top]

    def render(self) -> str:
        rows = [[r.rank, r.node, r.faults, r.fetches, r.diffs,
                 r.invalidations, r.remote_ops, r.lock_ops, r.barriers,
                 round(r.lock_wait * 1e3, 3), round(r.barrier_wait * 1e3, 3)]
                for r in self.ranks]
        table = render_table(
            ["rank", "node", "faults", "fetches", "diffs", "invals",
             "rmt ops", "locks", "barriers", "lock wait ms", "bar wait ms"],
            rows, title=f"profile: {self.platform} "
                        f"({self.total_time * 1e3:.3f} ms virtual)")
        extra = (f"\nmessages: {self.messages}, wire bytes: {self.wire_bytes}, "
                 f"sync share: {self.sync_share() * 100:.1f}%"
                 f"\nhost     : {self.events_executed} engine events in "
                 f"{self.host_seconds * 1e3:.1f} ms wall "
                 f"({self.events_per_sec:,.0f} events/s)")
        parts = [table + extra]
        if self.host_phases is not None and self.host_phases.seconds:
            parts.append(self.host_phases.render())
        if self.host_hot is not None and self.host_hot.ran:
            parts.append(self.host_hot.render())
        return "\n\n".join(parts)


def profile_platform(platform, host_profiler=None,
                     phase_timers=None) -> ProfileReport:
    """Digest a finished :class:`~repro.config.BuiltPlatform`.

    ``host_profiler`` / ``phase_timers`` are optional
    :mod:`repro.bench.hostprof` instruments that accompanied the run; when
    given, their host hot-function and per-phase wall reports are folded
    into :meth:`ProfileReport.render`.
    """
    hamster = platform.hamster
    dsm = platform.dsm
    engine = platform.engine
    report = ProfileReport(platform=hamster.platform_description(),
                           total_time=engine.now,
                           events_executed=engine.events_executed,
                           host_seconds=engine.host_seconds,
                           events_per_sec=engine.events_per_second(),
                           host_hot=host_profiler,
                           host_phases=phase_timers)
    for rank in range(dsm.n_procs):
        stats = dsm.stats(rank)
        node_id = dsm.node_of(rank)
        report.ranks.append(RankProfile(
            rank=rank,
            node=node_id,
            reads=int(stats.get("reads", 0)),
            writes=int(stats.get("writes", 0)),
            bytes_moved=int(stats.get("bytes_read", 0)) + int(stats.get("bytes_written", 0)),
            faults=int(stats.get("read_faults", 0)) + int(stats.get("write_faults", 0)),
            fetches=int(stats.get("pages_fetched", 0)),
            diffs=int(stats.get("diffs_created", 0)),
            diff_bytes=int(stats.get("diff_bytes", 0)),
            invalidations=int(stats.get("pages_invalidated", 0)),
            remote_ops=int(stats.get("remote_reads", 0)) + int(stats.get("remote_writes", 0)),
            lock_ops=int(stats.get("lock_acquires", 0)),
            barriers=int(stats.get("barriers", 0)),
            lock_wait=float(stats.get("lock_wait_time", 0.0)),
            barrier_wait=float(stats.get("barrier_wait_time", 0.0)),
        ))
    network = platform.cluster.network
    if network is not None:
        report.messages = network.messages_sent
        report.wire_bytes = network.bytes_sent
    for node in platform.cluster.nodes:
        report.bus_bytes[node.node_id] = node.bus.bytes_transferred
        report.bus_contention[node.node_id] = node.bus.contention_time
        report.compute_time[node.node_id] = node.compute_time
    return report
