"""Architecture- and model-independent tool support (§4.3).

HAMSTER's per-module monitoring services exist precisely so that *tools* can
be leveraged across platforms: "an independent monitoring system may attach
externally … making it possible to leverage toolsets across platforms."
This package is that toolset:

* :mod:`repro.tools.monitor` — an external monitor that attaches to a
  running platform (counter subscriptions + periodic sampling) and produces
  counter timelines, without touching application code.
* :mod:`repro.tools.profile` — post-run profile reports: per-rank protocol
  breakdowns, communication volumes, sync-time shares.
* :mod:`repro.tools.traceview` — summaries over the simulation trace:
  message histograms, fault timelines, per-kind statistics.

Everything here consumes only the public monitoring/trace surfaces, so the
same tool works on every platform and under every programming model.
"""

from repro.tools.export import figure_to_csv, run_to_json, stats_to_csv
from repro.tools.monitor import AttachedMonitor, CounterSample
from repro.tools.profile import ProfileReport, profile_platform
from repro.tools.traceview import TraceSummary, summarize_trace

__all__ = [
    "AttachedMonitor",
    "run_to_json",
    "figure_to_csv",
    "stats_to_csv",
    "CounterSample",
    "ProfileReport",
    "profile_platform",
    "TraceSummary",
    "summarize_trace",
]
