"""Matrix multiplication benchmark (Table 1).

``C = A @ B`` on n×n float64 matrices, rows of ``C`` block-partitioned over
ranks. The kernel is **memory bound** on the paper's hardware (§5.4): a
straightforward triple loop re-streams ``B`` from DRAM for every block of
rows, so per-rank DRAM traffic is far larger than the shared-access volume.
We charge that re-read traffic explicitly (``MEM_REUSE`` bytes per flop),
which is what lets the two separate cluster memory buses beat the SMP's
single shared bus in Figure 4.

Homes: ``A``/``C`` are block-distributed to match the partition; ``B`` is
read by everyone and left on its allocating home (rank-cyclic pages), so
every platform pays a one-time B distribution cost.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, compute, memtouch, row_block
from repro.memory.layout import block, cyclic

__all__ = ["run_matmult"]

#: extra DRAM bytes per flop from cache-missed re-reads of B (calibrated to
#: era hardware: naive DGEMM re-reads one 8-byte operand every ~2 flops).
MEM_REUSE_BYTES_PER_FLOP = 2.0


def run_matmult(api, n: int = 1024, seed: int = 42, verify: bool = True) -> AppResult:
    """Run the benchmark on the calling rank; returns its :class:`AppResult`."""
    rank, n_ranks = api.jia_init()
    t = api.hamster.timing

    t0 = api.jia_wtime()
    A = api.jia_alloc_array((n, n), np.float64, name="mm.A", distribution=block())
    B = api.jia_alloc_array((n, n), np.float64, name="mm.B", distribution=cyclic())
    C = api.jia_alloc_array((n, n), np.float64, name="mm.C", distribution=block())

    rng = np.random.default_rng(seed)
    a_full = rng.standard_normal((n, n))
    b_full = rng.standard_normal((n, n))
    lo, hi = row_block(n, rank, n_ranks)

    # ------------------------------------------------------------- init
    A[lo:hi, :] = a_full[lo:hi, :]
    if rank == 0:
        B[:, :] = b_full
    api.jia_barrier()
    t_init = api.jia_wtime() - t0

    # ---------------------------------------------------------- compute
    t1 = api.jia_wtime()
    a_block = A[lo:hi, :]
    b = B[:, :]
    c_block = a_block @ b
    flops = 2.0 * (hi - lo) * n * n
    compute(api, flops)
    memtouch(api, flops * MEM_REUSE_BYTES_PER_FLOP)
    C[lo:hi, :] = c_block
    api.jia_barrier()
    t_comp = api.jia_wtime() - t1

    # ------------------------------------------------------------ verify
    verified = True
    checksum = 0.0
    if verify:
        mine = C[lo:hi, :]
        reference = a_full[lo:hi, :] @ b_full
        verified = bool(np.allclose(mine, reference, atol=1e-8))
        checksum = float(np.abs(a_full @ b_full).sum())  # partition-independent
    api.jia_exit()

    return AppResult(app="matmult", rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=checksum,
                     extra={"n": n})
