"""Matrix multiplication benchmark (Table 1).

``C = A @ B`` on n×n float64 matrices, rows of ``C`` block-partitioned over
ranks. The kernel is **memory bound** on the paper's hardware (§5.4): a
straightforward triple loop re-streams ``B`` from DRAM for every block of
rows, so per-rank DRAM traffic is far larger than the shared-access volume.
We charge that re-read traffic explicitly (``MEM_REUSE`` bytes per flop),
which is what lets the two separate cluster memory buses beat the SMP's
single shared bus in Figure 4.

Homes: ``A``/``C`` are block-distributed to match the partition; ``B`` is
read by everyone and left on its allocating home (rank-cyclic pages), so
every platform pays a one-time B distribution cost.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, compute_g, memtouch_g, row_block
from repro.memory.layout import block, cyclic

__all__ = ["run_matmult"]

#: extra DRAM bytes per flop from cache-missed re-reads of B (calibrated to
#: era hardware: naive DGEMM re-reads one 8-byte operand every ~2 flops).
MEM_REUSE_BYTES_PER_FLOP = 2.0


def run_matmult(api, n: int = 1024, seed: int = 42, verify: bool = True) -> AppResult:
    """Run the benchmark on the calling rank; returns its :class:`AppResult`."""
    rank, n_ranks = yield from api.jia_init_g()

    t0 = yield from api.jia_wtime_g()
    A = yield from api.jia_alloc_array_g((n, n), np.float64, name="mm.A",
                                         distribution=block())
    B = yield from api.jia_alloc_array_g((n, n), np.float64, name="mm.B",
                                         distribution=cyclic())
    C = yield from api.jia_alloc_array_g((n, n), np.float64, name="mm.C",
                                         distribution=block())

    rng = np.random.default_rng(seed)
    a_full = rng.standard_normal((n, n))
    b_full = rng.standard_normal((n, n))
    lo, hi = row_block(n, rank, n_ranks)

    # ------------------------------------------------------------- init
    yield from A.set_g((slice(lo, hi), slice(None)), a_full[lo:hi, :])
    if rank == 0:
        yield from B.set_g((slice(None), slice(None)), b_full)
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    # ---------------------------------------------------------- compute
    t1 = yield from api.jia_wtime_g()
    a_block = yield from A.get_g((slice(lo, hi), slice(None)))
    b = yield from B.get_g((slice(None), slice(None)))
    c_block = a_block @ b
    flops = 2.0 * (hi - lo) * n * n
    yield from compute_g(api, flops)
    yield from memtouch_g(api, flops * MEM_REUSE_BYTES_PER_FLOP)
    yield from C.set_g((slice(lo, hi), slice(None)), c_block)
    yield from api.jia_barrier_g()
    t_comp = (yield from api.jia_wtime_g()) - t1

    # ------------------------------------------------------------ verify
    verified = True
    checksum = 0.0
    if verify:
        mine = yield from C.get_g((slice(lo, hi), slice(None)))
        reference = a_full[lo:hi, :] @ b_full
        verified = bool(np.allclose(mine, reference, atol=1e-8))
        checksum = float(np.abs(a_full @ b_full).sum())  # partition-independent
    yield from api.jia_exit_g()

    return AppResult(app="matmult", rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=checksum,
                     extra={"n": n})
