"""Shared plumbing for the benchmark applications.

Applications are written against the JiaJia API *surface* (either binding),
partition work by rank, charge their floating-point work explicitly on
their node, and verify their shared-memory result against a sequential
numpy reference computed from the same seeded input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import HamsterError

__all__ = ["AppResult", "compute", "compute_g", "memtouch", "memtouch_g",
           "row_block", "AppError", "APP_TABLE", "get_app",
           "merge_rank_results"]


class AppError(HamsterError):
    """Raised when a benchmark fails its self-verification."""


@dataclass
class AppResult:
    """Per-rank benchmark outcome."""

    app: str
    rank: int
    #: phase name -> virtual seconds (always includes "total")
    phases: Dict[str, float] = field(default_factory=dict)
    verified: bool = False
    checksum: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)


def compute(api, flops: float) -> None:
    """Charge application floating-point work on the calling task's node."""
    dsm = api.hamster.dsm
    api.hamster.cluster.node(dsm.node_of(dsm.current_rank())).compute(flops)


def compute_g(api, flops: float):
    """Generator kernel of :func:`compute` (``yield from`` it)."""
    dsm = api.hamster.dsm
    return api.hamster.cluster.node(dsm.node_of(dsm.current_rank())).compute_g(flops)


def memtouch(api, nbytes: float) -> None:
    """Charge extra DRAM traffic beyond what the shared accesses already
    account for (cache-miss re-reads in tight kernels — the matmult
    memory-bound effect)."""
    dsm = api.hamster.dsm
    api.hamster.cluster.node(dsm.node_of(dsm.current_rank())).mem_touch(int(nbytes))


def memtouch_g(api, nbytes: float):
    """Generator kernel of :func:`memtouch` (``yield from`` it)."""
    dsm = api.hamster.dsm
    return api.hamster.cluster.node(
        dsm.node_of(dsm.current_rank())).mem_touch_g(int(nbytes))


def row_block(n_rows: int, rank: int, n_ranks: int) -> Tuple[int, int]:
    """[lo, hi) row range of ``rank`` under contiguous block partitioning."""
    per = n_rows // n_ranks
    extra = n_rows % n_ranks
    lo = rank * per + min(rank, extra)
    hi = lo + per + (1 if rank < extra else 0)
    return lo, hi


def merge_rank_results(results) -> AppResult:
    """Fold per-rank results into the reported one: phase times are the
    maxima across ranks (the job is done when the slowest rank is),
    verification must hold on every rank."""
    merged = AppResult(app=results[0].app, rank=-1)
    for key in results[0].phases:
        merged.phases[key] = max(r.phases.get(key, 0.0) for r in results)
    merged.verified = all(r.verified for r in results)
    merged.checksum = results[0].checksum
    merged.extra = dict(results[0].extra)
    return merged


def _registry() -> Dict[str, Callable]:
    from repro.apps.lu import run_lu
    from repro.apps.matmult import run_matmult
    from repro.apps.pi import run_pi
    from repro.apps.sor import run_sor
    from repro.apps.water import run_water

    from repro.apps.fft import run_fft

    return {
        "matmult": run_matmult,
        "pi": run_pi,
        "sor": run_sor,
        "lu": run_lu,
        "water": run_water,
        "fft": run_fft,  # extension: the paper's "ongoing work" direction
    }


#: Table 1 — benchmarks and their working sets (paper's full sizes; the
#: harness scales these down with the ``scale`` knob for quick runs).
APP_TABLE = {
    "matmult": {"description": "Matrix Multiplication", "working_set": "1024x1024 matrix",
                "params": {"n": 1024}},
    "pi": {"description": "Computation of pi", "working_set": "2^23 intervals",
           "params": {"intervals": 1 << 23}},
    "sor": {"description": "Successive Over Relaxation (SOR)",
            "working_set": "1024x1024 matrix", "params": {"n": 1024, "iterations": 10}},
    "lu": {"description": "LU Decomposition", "working_set": "1024x1024 matrix",
           "params": {"n": 1024, "block": 64}},
    "water": {"description": "WATER (Molecular Simulation)",
              "working_set": "288 / 343 molecules", "params": {"molecules": 288, "steps": 2}},
    # Extension beyond Table 1: transpose-based FFT ("ongoing work", §5.4).
    "fft": {"description": "1-D FFT (transpose-based, extension)",
            "working_set": "256x256 complex points", "params": {"n1": 256, "n2": 256}},
}


def get_app(name: str) -> Callable:
    """Benchmark entry point by Table 1 name."""
    try:
        return _registry()[name]
    except KeyError:
        raise AppError(f"unknown benchmark {name!r}; known: {sorted(APP_TABLE)}") from None
