"""1-D FFT benchmark (extension — the paper's "ongoing work" §5.4 calls
for experiments with more codes).

Classic transpose-based parallel FFT (Bailey's four-step / SPLASH-2 FFT
shape): N = n₁·n₂ complex points viewed as an n₁×n₂ matrix,

1. each rank FFTs its block of rows (length n₂),
2. twiddle scaling,
3. **transpose through shared memory** — the all-to-all communication
   pattern none of the Table 1 codes exercises: every rank writes a block
   into every other rank's home region,
4. each rank FFTs its rows of the transposed matrix (length n₁).

The result (in transposed layout) is verified against ``numpy.fft`` on the
same seeded input. Complex data is stored as float64 pairs (re, im) to
stay within SharedArray's dtype surface.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, compute_g, row_block
from repro.memory.layout import block

__all__ = ["run_fft"]


def _to_pairs(z: np.ndarray) -> np.ndarray:
    out = np.empty(z.shape + (2,), dtype=np.float64)
    out[..., 0], out[..., 1] = z.real, z.imag
    return out


def _to_complex(p: np.ndarray) -> np.ndarray:
    return p[..., 0] + 1j * p[..., 1]


def _fft_flops(rows: int, length: int) -> float:
    return 5.0 * rows * length * max(1.0, np.log2(length))


def run_fft(api, n1: int = 64, n2: int = 64, seed: int = 23,
            verify: bool = True) -> AppResult:
    """Run the benchmark on the calling rank (N = n1*n2 points)."""
    rank, n_ranks = yield from api.jia_init_g()

    t0 = yield from api.jia_wtime_g()
    # A holds the n1 x n2 view; B receives the transpose (n2 x n1).
    A = yield from api.jia_alloc_array_g((n1, n2, 2), np.float64, name="fft.A",
                                         distribution=block())
    B = yield from api.jia_alloc_array_g((n2, n1, 2), np.float64, name="fft.B",
                                         distribution=block())
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(n1 * n2) + 1j * rng.standard_normal(n1 * n2)
    # The row-first four-step variant wants the signal laid out column-major
    # on the n1 x n2 grid: grid[a, b] = signal[b*n1 + a].
    grid = signal.reshape(n2, n1).T.copy()
    lo, hi = row_block(n1, rank, n_ranks)
    yield from A.set_g((slice(lo, hi), slice(None), slice(None)),
                       _to_pairs(grid[lo:hi, :]))
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    # --------------------------------------------------- step 1+2: row FFTs
    t1 = yield from api.jia_wtime_g()
    rows = _to_complex(
        (yield from A.get_g((slice(lo, hi), slice(None), slice(None)))))
    rows = np.fft.fft(rows, axis=1)
    yield from compute_g(api, _fft_flops(hi - lo, n2))
    # Twiddle factors W_N^(j*k) between the two passes.
    j = np.arange(lo, hi)[:, None]
    k = np.arange(n2)[None, :]
    rows *= np.exp(-2j * np.pi * j * k / (n1 * n2))
    yield from compute_g(api, 6.0 * (hi - lo) * n2)
    yield from A.set_g((slice(lo, hi), slice(None), slice(None)),
                       _to_pairs(rows))
    yield from api.jia_barrier_g()
    t_fft1 = (yield from api.jia_wtime_g()) - t1

    # ------------------------------------------------- step 3: the transpose
    t2 = yield from api.jia_wtime_g()
    t_lo, t_hi = row_block(n2, rank, n_ranks)
    # Every rank gathers its transposed rows from every source block: an
    # all-to-all read pattern through the DSM.
    gathered = _to_complex(
        (yield from A.get_g((slice(None), slice(t_lo, t_hi), slice(None)))))
    yield from B.set_g((slice(t_lo, t_hi), slice(None), slice(None)),
                       _to_pairs(gathered.T))
    yield from api.jia_barrier_g()
    t_transpose = (yield from api.jia_wtime_g()) - t2

    # --------------------------------------------------- step 4: column FFTs
    t3 = yield from api.jia_wtime_g()
    cols = _to_complex(
        (yield from B.get_g((slice(t_lo, t_hi), slice(None), slice(None)))))
    cols = np.fft.fft(cols, axis=1)
    yield from compute_g(api, _fft_flops(t_hi - t_lo, n1))
    yield from B.set_g((slice(t_lo, t_hi), slice(None), slice(None)),
                       _to_pairs(cols))
    yield from api.jia_barrier_g()
    t_fft2 = (yield from api.jia_wtime_g()) - t3
    total = (yield from api.jia_wtime_g()) - t0

    # ------------------------------------------------------------ verify
    verified = True
    checksum = 0.0
    if verify:
        reference = np.fft.fft(signal).reshape(n1, n2).T  # transposed layout
        mine = _to_complex(
            (yield from B.get_g((slice(t_lo, t_hi), slice(None), slice(None)))))
        verified = bool(np.allclose(mine, reference[t_lo:t_hi, :],
                                    atol=1e-6 * n1 * n2))
        checksum = float(np.abs(reference).sum())
    yield from api.jia_exit_g()

    return AppResult(app="fft", rank=rank,
                     phases={"init": t_init, "fft1": t_fft1,
                             "transpose": t_transpose, "fft2": t_fft2,
                             "total": total},
                     verified=verified, checksum=checksum,
                     extra={"n1": n1, "n2": n2})
