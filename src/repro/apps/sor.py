"""Successive Over-Relaxation benchmark (Table 1).

Red-black SOR on an n×n grid, row-block partitioned, one barrier per
half-sweep. Two variants, matching Figure 2/3's "SOR" and "SOR opt" bars:

* **optimized** (``locality=True``): pages are homed block-wise to match
  the partition, so every rank's writes are home writes and only the
  boundary rows travel — the locality optimization the JiaJia codes carry.
* **unoptimized** (``locality=False``): cyclic page homes, so ~(P-1)/P of
  each rank's writes hit remote-homed pages. The SW-DSM then pays
  fetch+twin+diff on every page every iteration, while the hybrid DSM
  turns the same pattern into pipelined remote writes — the big "SOR"
  advantage in Figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, compute_g, row_block
from repro.memory.layout import block, cyclic

__all__ = ["run_sor"]

OMEGA = 1.25


def _sweep(grid: np.ndarray, phase: int, lo: int, hi: int, n: int) -> None:
    """One red-black half-sweep over rows [lo, hi) of ``grid`` in place.

    ``grid`` must carry one halo row above and below the range; rows are
    grid-global indices (1-based interior).
    """
    for i in range(lo, hi):
        j0 = 1 + ((i + phase) % 2)
        row = grid[i - lo + 1]
        up = grid[i - lo]
        down = grid[i - lo + 2]
        js = np.arange(j0, n - 1, 2)
        row[js] = (1 - OMEGA) * row[js] + OMEGA * 0.25 * (
            up[js] + down[js] + row[js - 1] + row[js + 1])


def _reference(initial: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential red-black SOR, structured identically to the parallel
    sweep so results match bit-for-bit."""
    grid = initial.copy()
    n = grid.shape[0]
    for _ in range(iterations):
        for phase in (0, 1):
            _sweep(grid, phase, 1, n - 1, n)
    return grid


def run_sor(api, n: int = 1024, iterations: int = 10, locality: bool = True,
            seed: int = 7, verify: bool = True) -> AppResult:
    rank, n_ranks = yield from api.jia_init_g()
    dist = block() if locality else cyclic()

    t0 = yield from api.jia_wtime_g()
    G = yield from api.jia_alloc_array_g((n, n), np.float64, name="sor.grid",
                                         distribution=dist)
    rng = np.random.default_rng(seed)
    initial = rng.random((n, n))
    lo, hi = row_block(n - 2, rank, n_ranks)
    lo, hi = lo + 1, hi + 1  # interior rows only
    yield from G.set_g((slice(lo, hi), slice(None)), initial[lo:hi, :])
    if rank == 0:
        yield from G.set_g((0, slice(None)), initial[0, :])
    if rank == n_ranks - 1:
        yield from G.set_g((n - 1, slice(None)), initial[n - 1, :])
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    t1 = yield from api.jia_wtime_g()
    for _ in range(iterations):
        for phase in (0, 1):
            # own rows + halo
            local = yield from G.get_g((slice(lo - 1, hi + 1), slice(None)))
            _sweep(local, phase, lo, hi, n)
            yield from G.set_g((slice(lo, hi), slice(None)), local[1:-1, :])
            yield from compute_g(api, 6.0 * (hi - lo) * (n - 2) / 2)
            yield from api.jia_barrier_g()
    t_comp = (yield from api.jia_wtime_g()) - t1

    verified = True
    checksum = 0.0
    if verify:
        mine = yield from G.get_g((slice(lo, hi), slice(None)))
        ref = _reference(initial, iterations)
        verified = bool(np.allclose(mine, ref[lo:hi, :], atol=1e-10))
        checksum = float(np.abs(ref).sum())  # partition-independent
    yield from api.jia_exit_g()

    name = "sor_opt" if locality else "sor"
    return AppResult(app=name, rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=checksum,
                     extra={"n": n, "iterations": iterations,
                            "locality": locality})
