"""LU decomposition benchmark (Table 1).

Blocked, row-oriented LU factorization without pivoting (the SPLASH-style
kernel from the JiaJia suite), instrumented into the four measurements the
figures split out:

* **LU all** — total time including initialization,
* **LU** — time without the initialization phase,
* **LU core** — the computational core without synchronization,
* **LU bar** — time spent in barriers.

Row panels of ``block`` rows are dealt cyclically to ranks (home placement
follows ownership). The *initialization is write-only and performed by rank
0 over the whole matrix* — the pattern that is very expensive on a SW-DSM
(every remote page: fault + fetch + twin + diff) but cheap on the hybrid
DSM (streamed remote writes), giving Figure 3's large "LU all" advantage.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.common import AppResult, compute_g
from repro.memory.layout import explicit

__all__ = ["run_lu"]


def _panel_homes(n: int, block_rows: int, page_size: int, n_ranks: int,
                 itemsize: int = 8) -> List[int]:
    """Per-page home list so that row-panel ``k`` is homed on rank
    ``k % n_ranks`` (panels are whole pages for n*itemsize % page == 0)."""
    row_bytes = n * itemsize
    total_pages = (n * row_bytes + page_size - 1) // page_size
    homes = []
    for p in range(total_pages):
        row = (p * page_size) // row_bytes
        panel = row // block_rows
        homes.append(panel % n_ranks)
    return homes


def _reference_lu(a: np.ndarray, block_rows: int) -> np.ndarray:
    """Sequential blocked elimination, structured like the parallel code."""
    m = a.copy()
    n = m.shape[0]
    for k0 in range(0, n, block_rows):
        k1 = min(k0 + block_rows, n)
        # Factor the diagonal panel.
        for k in range(k0, k1):
            m[k + 1:k1, k] /= m[k, k]
            m[k + 1:k1, k + 1:] -= np.outer(m[k + 1:k1, k], m[k, k + 1:])
        # Update the trailing rows.
        piv = m[k0:k1, :]
        for k in range(k0, k1):
            m[k1:, k] /= piv[k - k0, k]
            m[k1:, k + 1:] -= np.outer(m[k1:, k], piv[k - k0, k + 1:])
    return m


def run_lu(api, n: int = 1024, block: int = 64, seed: int = 11,
           verify: bool = True) -> AppResult:
    rank, n_ranks = yield from api.jia_init_g()
    page = api.hamster.params.page_size
    homes = _panel_homes(n, block, page, n_ranks)

    t0 = yield from api.jia_wtime_g()
    A = yield from api.jia_alloc_array_g((n, n), np.float64, name="lu.A",
                                         distribution=explicit(homes))
    # Diagonally dominant input keeps no-pivot elimination stable.
    rng = np.random.default_rng(seed)
    a_full = rng.random((n, n)) + np.eye(n) * n

    # ------------------------------------------------ write-only init (rank 0)
    if rank == 0:
        yield from A.set_g((slice(None), slice(None)), a_full)
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    # --------------------------------------------------------------- factor
    n_panels = (n + block - 1) // block
    t_barrier = 0.0
    t_core = 0.0
    t1 = yield from api.jia_wtime_g()
    for kp in range(n_panels):
        k0, k1 = kp * block, min((kp + 1) * block, n)
        owner = kp % n_ranks
        tc = yield from api.jia_wtime_g()
        if rank == owner:
            panel = yield from A.get_g((slice(k0, k1), slice(None)))
            for k in range(k0, k1):
                i = k - k0
                panel[i + 1:, k] /= panel[i, k]
                panel[i + 1:, k + 1:] -= np.outer(panel[i + 1:, k], panel[i, k + 1:])
            yield from A.set_g((slice(k0, k1), slice(None)), panel)
            rows = k1 - k0
            yield from compute_g(api, rows * rows * (n - k0))
        t_core += (yield from api.jia_wtime_g()) - tc

        tb = yield from api.jia_wtime_g()
        yield from api.jia_barrier_g()
        t_barrier += (yield from api.jia_wtime_g()) - tb

        tc = yield from api.jia_wtime_g()
        piv = yield from A.get_g((slice(k0, k1), slice(None)))
        # Update the panels this rank owns below the pivot block.
        for mp in range(kp + 1, n_panels):
            if mp % n_ranks != rank:
                continue
            m0, m1 = mp * block, min((mp + 1) * block, n)
            rows = yield from A.get_g((slice(m0, m1), slice(None)))
            for k in range(k0, k1):
                rows[:, k] /= piv[k - k0, k]
                rows[:, k + 1:] -= np.outer(rows[:, k], piv[k - k0, k + 1:])
            yield from A.set_g((slice(m0, m1), slice(None)), rows)
            yield from compute_g(api, 2.0 * (m1 - m0) * (k1 - k0) * (n - k0))
        t_core += (yield from api.jia_wtime_g()) - tc

        tb = yield from api.jia_wtime_g()
        yield from api.jia_barrier_g()
        t_barrier += (yield from api.jia_wtime_g()) - tb
    t_nominit = (yield from api.jia_wtime_g()) - t1
    t_all = t_init + t_nominit

    # ------------------------------------------------------------ verify
    verified = True
    checksum = 0.0
    if verify:
        ref = _reference_lu(a_full, block)
        for mp in range(n_panels):
            if mp % n_ranks != rank:
                continue
            m0, m1 = mp * block, min((mp + 1) * block, n)
            mine = yield from A.get_g((slice(m0, m1), slice(None)))
            if not np.allclose(mine, ref[m0:m1, :], atol=1e-6):
                verified = False
                break
        checksum = float(np.abs(ref).sum())
    yield from api.jia_exit_g()

    return AppResult(app="lu", rank=rank,
                     phases={"all": t_all, "no_init": t_nominit,
                             "core": t_core, "barrier": t_barrier,
                             "init": t_init, "total": t_all},
                     verified=verified, checksum=checksum,
                     extra={"n": n, "block": block})
