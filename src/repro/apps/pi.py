"""Computation of π benchmark (Table 1).

Classic numerical integration of 4/(1+x²) over [0,1]: each rank integrates
a strided subset of intervals locally, then adds its partial sum into a
lock-protected shared accumulator. Communication is a handful of lock
transfers and one barrier, so π is the near-zero bar of Figures 2-4: it
exposes pure per-call and synchronization overhead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.common import AppResult, compute

__all__ = ["run_pi"]

PI_LOCK = 3


def run_pi(api, intervals: int = 1 << 23, verify: bool = True) -> AppResult:
    rank, n_ranks = api.jia_init()

    t0 = api.jia_wtime()
    acc = api.jia_alloc_array((1,), np.float64, name="pi.sum")
    if rank == 0:
        acc[0] = 0.0
    api.jia_barrier()
    t_init = api.jia_wtime() - t0

    t1 = api.jia_wtime()
    h = 1.0 / intervals
    idx = np.arange(rank, intervals, n_ranks, dtype=np.float64)
    x = h * (idx + 0.5)
    local = float((4.0 / (1.0 + x * x)).sum() * h)
    compute(api, 6.0 * len(idx))

    api.jia_lock(PI_LOCK)
    acc[0] = float(acc[0]) + local
    api.jia_unlock(PI_LOCK)
    api.jia_barrier()
    t_comp = api.jia_wtime() - t1

    pi_value = float(acc[0])
    verified = (abs(pi_value - math.pi) < 1e-4) if verify else True
    api.jia_exit()

    return AppResult(app="pi", rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=pi_value,
                     extra={"intervals": intervals})
