"""Computation of π benchmark (Table 1).

Classic numerical integration of 4/(1+x²) over [0,1]: each rank integrates
a strided subset of intervals locally, then adds its partial sum into a
lock-protected shared accumulator. Communication is a handful of lock
transfers and one barrier, so π is the near-zero bar of Figures 2-4: it
exposes pure per-call and synchronization overhead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.common import AppResult, compute_g

__all__ = ["run_pi"]

PI_LOCK = 3


def run_pi(api, intervals: int = 1 << 23, verify: bool = True) -> AppResult:
    # Generator body: runs stackless under the generator engine backend and
    # thread-trampolined under the thread backend (see repro.sim.process).
    rank, n_ranks = yield from api.jia_init_g()

    t0 = yield from api.jia_wtime_g()
    acc = yield from api.jia_alloc_array_g((1,), np.float64, name="pi.sum")
    if rank == 0:
        yield from acc.set_g(0, 0.0)
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    t1 = yield from api.jia_wtime_g()
    h = 1.0 / intervals
    idx = np.arange(rank, intervals, n_ranks, dtype=np.float64)
    x = h * (idx + 0.5)
    local = float((4.0 / (1.0 + x * x)).sum() * h)
    yield from compute_g(api, 6.0 * len(idx))

    yield from api.jia_lock_g(PI_LOCK)
    current = float((yield from acc.get_g(0)))
    yield from acc.set_g(0, current + local)
    yield from api.jia_unlock_g(PI_LOCK)
    yield from api.jia_barrier_g()
    t_comp = (yield from api.jia_wtime_g()) - t1

    pi_value = float((yield from acc.get_g(0)))
    verified = (abs(pi_value - math.pi) < 1e-4) if verify else True
    yield from api.jia_exit_g()

    return AppResult(app="pi", rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=pi_value,
                     extra={"intervals": intervals})
