"""Benchmark applications (Table 1).

The codes of the JiaJia distribution the paper evaluates, reimplemented
against the JiaJia API subset (:mod:`repro.models.jiajia_api`) so that the
identical application runs on every platform — and on both the HAMSTER and
native JiaJia bindings (§5.3/§5.4):

* :mod:`repro.apps.matmult` — matrix multiplication, 1024×1024 (memory bound),
* :mod:`repro.apps.pi` — computation of π by numerical integration,
* :mod:`repro.apps.sor` — successive over-relaxation, 1024×1024, with and
  without locality optimization,
* :mod:`repro.apps.lu` — LU decomposition, 1024×1024, instrumented into the
  all / no-init / core / barrier phases of Figures 2-4,
* :mod:`repro.apps.water` — WATER-style molecular dynamics, 288/343 molecules.

Every app checks its result against a sequential numpy reference computed
from the same seeded input, so the DSM protocols are verified end-to-end on
every benchmark run.
"""

from repro.apps.common import APP_TABLE, AppResult, get_app
from repro.apps.fft import run_fft
from repro.apps.lu import run_lu
from repro.apps.matmult import run_matmult
from repro.apps.pi import run_pi
from repro.apps.sor import run_sor
from repro.apps.water import run_water

__all__ = ["AppResult", "APP_TABLE", "get_app", "run_matmult",
           "run_pi", "run_sor", "run_lu", "run_water", "run_fft"]
