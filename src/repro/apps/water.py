"""WATER molecular simulation benchmark (Table 1).

A WATER-style N-body molecular dynamics step, following the SPLASH/JiaJia
code's structure: molecules are block-partitioned; each step every rank
computes the pairwise (Lennard-Jones-like) forces for its half of the pair
triangle, accumulates its contributions into the *shared* force array under
section locks (the lock-heavy phase that makes WATER the synchronization
stress test of the suite), then integrates the positions of its own
molecules. Run at the paper's two working sets: 288 and 343 molecules.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, compute_g, row_block
from repro.memory.layout import block

__all__ = ["run_water"]

#: lock-id base for the per-section force locks
FORCE_LOCK_BASE = 100
DT = 1e-3
EPS = 0.25


def _pair_forces(pos: np.ndarray, i_lo: int, i_hi: int) -> np.ndarray:
    """Forces on all molecules from pairs (i, j>i) with i in [i_lo, i_hi)."""
    n = pos.shape[0]
    forces = np.zeros_like(pos)
    for i in range(i_lo, i_hi):
        delta = pos[i + 1:] - pos[i]                    # (n-i-1, 3)
        r2 = (delta * delta).sum(axis=1) + EPS
        inv = 1.0 / (r2 * r2 * np.sqrt(r2))             # ~ 1/r^5 kernel
        f = delta * inv[:, None]
        forces[i] -= f.sum(axis=0)
        forces[i + 1:] += f
    return forces


def _reference(initial: np.ndarray, steps: int) -> np.ndarray:
    pos = initial.copy()
    n = pos.shape[0]
    for _ in range(steps):
        forces = _pair_forces(pos, 0, n)
        pos += DT * forces
    return pos


def run_water(api, molecules: int = 288, steps: int = 2, seed: int = 5,
              verify: bool = True) -> AppResult:
    rank, n_ranks = yield from api.jia_init_g()
    n = molecules

    t0 = yield from api.jia_wtime_g()
    X = yield from api.jia_alloc_array_g((n, 3), np.float64, name="water.pos",
                                         distribution=block())
    F = yield from api.jia_alloc_array_g((n, 3), np.float64, name="water.frc",
                                         distribution=block())
    rng = np.random.default_rng(seed)
    initial = rng.random((n, 3)) * 10.0
    lo, hi = row_block(n, rank, n_ranks)
    yield from X.set_g((slice(lo, hi), slice(None)), initial[lo:hi, :])
    if rank == 0:
        yield from F.set_g((slice(None), slice(None)), 0.0)
    yield from api.jia_barrier_g()
    t_init = (yield from api.jia_wtime_g()) - t0

    t1 = yield from api.jia_wtime_g()
    for _ in range(steps):
        pos = yield from X.get_g((slice(None), slice(None)))
        local = _pair_forces(pos, lo, hi)
        # WATER evaluates 9 site-pairs (3 atoms x 3 atoms) of LJ + Coulomb
        # terms per molecule pair: ~300 flops per pair on the real kernel.
        pairs = sum(n - i - 1 for i in range(lo, hi))
        yield from compute_g(api, 300.0 * pairs)

        # Accumulate into the shared force array section by section, each
        # guarded by its owner's lock (the WATER lock pattern).
        for section in range(n_ranks):
            s_lo, s_hi = row_block(n, section, n_ranks)
            contribution = local[s_lo:s_hi, :]
            if not contribution.any():
                continue
            yield from api.jia_lock_g(FORCE_LOCK_BASE + section)
            current = yield from F.get_g((slice(s_lo, s_hi), slice(None)))
            yield from F.set_g((slice(s_lo, s_hi), slice(None)),
                               current + contribution)
            yield from api.jia_unlock_g(FORCE_LOCK_BASE + section)
        yield from api.jia_barrier_g()

        # Integrate own molecules, then reset own force section.
        own = yield from X.get_g((slice(lo, hi), slice(None)))
        frc = yield from F.get_g((slice(lo, hi), slice(None)))
        yield from X.set_g((slice(lo, hi), slice(None)), own + DT * frc)
        yield from compute_g(api, 6.0 * (hi - lo))
        yield from api.jia_barrier_g()
        yield from F.set_g((slice(lo, hi), slice(None)), 0.0)
        yield from api.jia_barrier_g()
    t_comp = (yield from api.jia_wtime_g()) - t1

    verified = True
    checksum = 0.0
    if verify:
        ref = _reference(initial, steps)
        mine = yield from X.get_g((slice(lo, hi), slice(None)))
        verified = bool(np.allclose(mine, ref[lo:hi, :], atol=1e-8))
        checksum = float(np.abs(ref).sum())
    yield from api.jia_exit_g()

    return AppResult(app=f"water{n}", rank=rank,
                     phases={"init": t_init, "compute": t_comp,
                             "total": t_init + t_comp},
                     verified=verified, checksum=checksum,
                     extra={"molecules": n, "steps": steps})
