"""Per-node memory-bus model.

Each node owns one :class:`MemoryBus`. Bulk memory traffic is serialized on
the bus: a transfer that arrives while the bus is busy queues behind the
in-flight traffic. This is what makes the dual-CPU SMP configuration lose to
the two-node cluster on the memory-bound MatMult benchmark (Figure 4): on
the SMP, both CPUs contend for one bus, while each cluster node brings its
own.

The model is intentionally simple — a single busy-until timestamp — which is
deterministic, O(1), and captures the first-order contention effect.
"""

from __future__ import annotations

from typing import Dict

from repro.machine.params import MachineParams

__all__ = ["MemoryBus"]


class MemoryBus:
    """Serialized bandwidth resource for one node's memory system."""

    def __init__(self, engine, params: MachineParams, name: str = "bus") -> None:
        self.engine = engine
        self.params = params
        self.name = name
        self._free_at: float = 0.0
        # Transfer-time memo keyed by size: bulk traffic is dominated by a
        # few repeating sizes (pages, twins, array rows), so the latency +
        # size/bandwidth sum is computed once per distinct size. The cached
        # value is the result of the exact expression touch() used to
        # evaluate inline — virtual time is unchanged.
        self._xfer_cache: Dict[int, float] = {}
        #: total bytes ever transferred (monitoring)
        self.bytes_transferred: int = 0
        #: accumulated virtual seconds processes spent waiting for the bus
        self.contention_time: float = 0.0

    def _charge(self, nbytes: int) -> float:
        """Book the transfer on the bus; returns the caller's wait time."""
        now = self.engine.now
        start = max(now, self._free_at)
        xfer = self._xfer_cache.get(nbytes)
        if xfer is None:
            xfer = self._xfer_cache[nbytes] = (
                self.params.mem_latency + nbytes / self.params.mem_bandwidth)
        self._free_at = start + xfer
        self.contention_time += start - now
        self.bytes_transferred += nbytes
        return self._free_at - now

    def touch(self, nbytes: int) -> None:
        """Charge the calling process for moving ``nbytes`` over this bus.

        The process blocks until its transfer completes: queueing delay (if
        the bus is busy) + fixed latency + ``nbytes``/bandwidth.
        """
        if nbytes <= 0:
            return
        proc = self.engine.require_process()
        proc.hold(self._charge(nbytes))

    def touch_g(self, nbytes: int):
        """Stackless twin of :meth:`touch` (``yield from bus.touch_g(n)``)."""
        if nbytes <= 0:
            return
        yield self._charge(nbytes)

    def reset_stats(self) -> None:
        self.bytes_transferred = 0
        self.contention_time = 0.0
