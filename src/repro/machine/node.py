"""Simulated cluster node: CPUs + local memory bus.

A node does not itself run code — application work runs in simulated
processes (see :mod:`repro.sim.process`) that *charge* their costs to the
node they are placed on. The node provides the charging primitives:

* :meth:`Node.compute` — CPU time for floating-point work,
* :meth:`Node.cpu_time` / :meth:`Node.cpu_cycles` — raw CPU time,
* :meth:`Node.mem_touch` — bulk memory traffic through the node's bus.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.params import MachineParams
from repro.machine.smpbus import MemoryBus

__all__ = ["Node"]


class Node:
    """One machine in the simulated cluster.

    Parameters
    ----------
    engine:
        Simulation engine.
    node_id:
        Dense integer id, 0-based. Node 0 conventionally hosts global
        services (barrier manager, default lock managers), matching JiaJia.
    params:
        Cost constants.
    n_cpus:
        CPUs available on this node. SPMD configurations place one process
        per node; the SMP configuration places all processes on one node.
    """

    def __init__(self, engine, node_id: int, params: MachineParams,
                 n_cpus: Optional[int] = None) -> None:
        self.engine = engine
        self.node_id = node_id
        self.params = params
        self.n_cpus = n_cpus if n_cpus is not None else params.cpus_per_node
        self.bus = MemoryBus(engine, params, name=f"bus{node_id}")
        # Hoisted from the compute() hot path; the memoized derived value
        # equals params.seconds_per_flop() exactly.
        self._sec_per_flop = params.seconds_per_flop()
        #: accumulated compute seconds charged on this node (monitoring)
        self.compute_time: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} cpus={self.n_cpus}>"

    # -------------------------------------------------------------- charges
    # Each charging primitive has a blocking form (thread-backed callers)
    # and a ``*_g`` generator twin (stackless callers ``yield from`` it).
    # Both account identically and charge the same hold duration; they are
    # kept as thin dual implementations rather than kernel() wrappers
    # because these are the hottest call sites in the simulator.
    def compute(self, flops: float) -> None:
        """Charge the calling process for ``flops`` floating-point operations."""
        if flops <= 0:
            return
        t = flops * self._sec_per_flop
        self.compute_time += t
        self.engine.require_process().hold(t)

    def compute_g(self, flops: float):
        """Stackless twin of :meth:`compute`."""
        if flops <= 0:
            return
        t = flops * self._sec_per_flop
        self.compute_time += t
        yield t

    def cpu_time(self, seconds: float) -> None:
        """Charge raw CPU seconds (software overheads)."""
        if seconds <= 0:
            return
        self.compute_time += seconds
        self.engine.require_process().hold(seconds)

    def cpu_time_g(self, seconds: float):
        """Stackless twin of :meth:`cpu_time`."""
        if seconds <= 0:
            return
        self.compute_time += seconds
        yield seconds

    def cpu_cycles(self, cycles: float) -> None:
        """Charge CPU cycles at the node clock rate."""
        self.cpu_time(cycles / self.params.cpu_hz)

    def cpu_cycles_g(self, cycles: float):
        """Stackless twin of :meth:`cpu_cycles`."""
        return self.cpu_time_g(cycles / self.params.cpu_hz)

    def mem_touch(self, nbytes: int) -> None:
        """Charge bulk memory traffic through this node's (shared) bus."""
        self.bus.touch(nbytes)

    def mem_touch_g(self, nbytes: int):
        """Stackless twin of :meth:`mem_touch`."""
        return self.bus.touch_g(nbytes)
