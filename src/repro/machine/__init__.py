"""Simulated cluster hardware.

Models the paper's experimental platform (§5.1): a four-node Linux cluster of
dual 450 MHz Intel Xeon SMP nodes with 512 MB memory each, connected by both
Dolphin SCI and switched Fast Ethernet. All cost constants live in
:mod:`repro.machine.params`; nodes/CPUs in :mod:`repro.machine.node`;
interconnect models in :mod:`repro.machine.ethernet`,
:mod:`repro.machine.sci`, and :mod:`repro.machine.smpbus`; and the assembled
machine in :mod:`repro.machine.cluster`.
"""

from repro.machine.cluster import Cluster
from repro.machine.ethernet import EthernetNetwork
from repro.machine.interconnect import Message, Network
from repro.machine.node import Node
from repro.machine.params import MachineParams, PAPER_PLATFORM
from repro.machine.sci import SciInterconnect
from repro.machine.smpbus import MemoryBus

__all__ = [
    "Cluster",
    "Node",
    "MachineParams",
    "PAPER_PLATFORM",
    "Network",
    "Message",
    "EthernetNetwork",
    "SciInterconnect",
    "MemoryBus",
]
