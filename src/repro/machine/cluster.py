"""Assembled simulated machine.

A :class:`Cluster` bundles the engine, the nodes, and the interconnect
fabric for one experiment. Three canonical shapes mirror the paper's three
platforms:

* ``Cluster.smp(n_cpus)`` — one hardware-coherent node with ``n_cpus`` CPUs
  sharing one memory bus (no network).
* ``Cluster.beowulf(n_nodes)`` — ``n_nodes`` nodes over switched Fast
  Ethernet (the SW-DSM platform).
* ``Cluster.sci_cluster(n_nodes)`` — ``n_nodes`` nodes over SCI, with remote
  memory transactions available (the hybrid-DSM platform).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.machine.ethernet import EthernetNetwork
from repro.machine.interconnect import Network
from repro.machine.node import Node
from repro.machine.params import MachineParams, PAPER_PLATFORM
from repro.machine.sci import SciInterconnect
from repro.sim.engine import Engine

__all__ = ["Cluster"]


class Cluster:
    """The simulated hardware for one experiment."""

    def __init__(self, engine: Engine, nodes: List[Node],
                 network: Optional[Network] = None,
                 params: MachineParams = PAPER_PLATFORM,
                 kind: str = "custom") -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.engine = engine
        self.nodes = nodes
        self.network = network
        self.params = params
        self.kind = kind

    # ------------------------------------------------------------ factories
    @classmethod
    def smp(cls, engine: Engine, n_cpus: int = 2,
            params: MachineParams = PAPER_PLATFORM) -> "Cluster":
        """One UMA node; ``n_cpus`` CPUs contending for one memory bus."""
        if n_cpus < 1:
            raise ConfigurationError("SMP needs >= 1 CPU")
        node = Node(engine, 0, params, n_cpus=n_cpus)
        return cls(engine, [node], network=None, params=params, kind="smp")

    @classmethod
    def beowulf(cls, engine: Engine, n_nodes: int = 4,
                params: MachineParams = PAPER_PLATFORM) -> "Cluster":
        """Ethernet-connected cluster, one process-CPU used per node (§5.1)."""
        if n_nodes < 1:
            raise ConfigurationError("cluster needs >= 1 node")
        nodes = [Node(engine, i, params, n_cpus=1) for i in range(n_nodes)]
        net = EthernetNetwork(engine, n_nodes, params)
        return cls(engine, nodes, network=net, params=params, kind="beowulf")

    @classmethod
    def sci_cluster(cls, engine: Engine, n_nodes: int = 4,
                    params: MachineParams = PAPER_PLATFORM) -> "Cluster":
        """SCI-connected cluster with remote-memory transactions."""
        if n_nodes < 1:
            raise ConfigurationError("cluster needs >= 1 node")
        nodes = [Node(engine, i, params, n_cpus=1) for i in range(n_nodes)]
        net = SciInterconnect(engine, n_nodes, params)
        return cls(engine, nodes, network=net, params=params, kind="sci")

    # ------------------------------------------------------------- accessors
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except IndexError:
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {self.n_nodes})") from None

    @property
    def sci(self) -> SciInterconnect:
        """The SCI fabric; raises if this cluster has none."""
        if isinstance(self.network, SciInterconnect):
            return self.network
        raise ConfigurationError(f"cluster kind {self.kind!r} has no SCI fabric")

    def has_sci(self) -> bool:
        return isinstance(self.network, SciInterconnect)
