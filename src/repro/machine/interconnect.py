"""Abstract interconnect model and the message record.

A :class:`Network` moves :class:`Message` records between nodes with a
latency/bandwidth cost model and per-NIC serialization. Concrete subclasses
set the cost parameters (:class:`~repro.machine.ethernet.EthernetNetwork`)
or add transaction-style remote memory access
(:class:`~repro.machine.sci.SciInterconnect`).

Delivery is callback-based: the cluster's messaging layer registers one
delivery callback per node; the network invokes it at the virtual instant
the message arrives. Per-message *software* overheads (the TCP stack, the
active-message dispatch) are charged by the messaging layer, not here —
the network models only wire/NIC behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import MessagingError

__all__ = ["Message", "Network"]


@dataclass
class Message:
    """One network message.

    ``payload`` carries arbitrary Python data (the simulation moves real
    protocol data — diffs, pages, write notices — not placeholders);
    ``size`` is the number of bytes this message would occupy on the wire
    and is what the cost model uses.

    ``msg_id`` is assigned by the :class:`Network` that first transmits the
    message (per-network counters, so ids are reproducible per simulation
    and never leak across independently built clusters). A retransmission
    keeps its original id — that is what receiver-side duplicate
    suppression keys on.
    """

    src: int
    dst: int
    kind: str
    size: int
    payload: Any = None
    msg_id: Optional[int] = None
    send_time: float = 0.0
    recv_time: float = 0.0
    #: RPC bookkeeping (used by the active-message layer): token of the
    #: request this message answers / expects an answer for.
    rpc_token: Optional[int] = None
    is_reply: bool = False
    #: observability: span id of the sender-side operation this message
    #: belongs to; receivers link their handler spans back to it, and a
    #: retransmission keeps it — so the whole exchange is one causal tree.
    #: None whenever observability is disabled; carries no wire size.
    span_id: Optional[int] = None


class Network:
    """Base point-to-point network with per-NIC transmit serialization."""

    #: one-way latency in seconds (overridden by subclasses/params)
    latency: float = 0.0
    #: payload bandwidth in bytes/second
    bandwidth: float = float("inf")
    #: fixed per-message wire/NIC framing bytes
    framing_bytes: int = 0

    def __init__(self, engine, n_nodes: int) -> None:
        self.engine = engine
        self.n_nodes = n_nodes
        self._nic_free_at = [0.0] * n_nodes
        self._delivery: Dict[int, Callable[[Message], None]] = {}
        # Per-network id counter: message ids are deterministic within one
        # simulation and independent of any other cluster ever built in the
        # same interpreter (reproducible traces regardless of test order).
        self._msg_ids = itertools.count(1)
        # Memoized transmit times keyed by wire size. DSM traffic reuses a
        # handful of sizes (page transfers, diffs, fixed-size control
        # messages), so the division in the send hot path hits this dict
        # almost always. Entries cache the result of the *same* expression
        # send() would evaluate — virtual time is bit-identical either way.
        self._tx_cache: Dict[int, float] = {}
        # ------------------------------------------------- statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------- plumbing
    def register_delivery(self, node_id: int, callback: Callable[[Message], None]) -> None:
        """Install the delivery callback for ``node_id`` (messaging layer)."""
        self._check_node(node_id)
        self._delivery[node_id] = callback

    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < self.n_nodes):
            raise MessagingError(f"node id {node_id} out of range [0, {self.n_nodes})")

    def assign_id(self, msg: Message) -> None:
        """Give ``msg`` its wire id on first transmission (idempotent, so a
        retransmission keeps the original id)."""
        if msg.msg_id is None:
            msg.msg_id = next(self._msg_ids)

    # ----------------------------------------------------------------- send
    def send(self, msg: Message) -> None:
        """Transmit ``msg``; non-blocking for the caller.

        The sender's NIC serializes outgoing transfers: a message posted
        while an earlier one is still on the wire starts after it. Delivery
        fires at ``tx_start + tx_time + latency``.
        """
        self._check_node(msg.src)
        self._check_node(msg.dst)
        if msg.dst not in self._delivery:
            raise MessagingError(f"no delivery callback registered for node {msg.dst}")
        self.assign_id(msg)
        now = self.engine.now
        msg.send_time = now
        wire_bytes = msg.size + self.framing_bytes
        start = max(now, self._nic_free_at[msg.src])
        tx_time = self._tx_cache.get(wire_bytes)
        if tx_time is None:
            if len(self._tx_cache) >= 32768:  # defensive bound; never hit in practice
                self._tx_cache.clear()
            tx_time = self._tx_cache[wire_bytes] = (
                wire_bytes / self.bandwidth if self.bandwidth != float("inf") else 0.0)
        self._nic_free_at[msg.src] = start + tx_time
        arrive = start + tx_time + self.latency
        self.messages_sent += 1
        self.bytes_sent += wire_bytes

        def deliver() -> None:
            msg.recv_time = self.engine.now
            self._delivery[msg.dst](msg)

        self.engine.schedule(arrive - now, deliver)
        obs = self.engine.obs
        if obs.enabled:
            if msg.span_id is None:
                msg.span_id = obs.current_id()
            # The wire occupancy [tx start, arrival] as a completed span.
            # Retransmissions pass here again and parent to the same
            # originating span — the retry chain stays causally linked.
            obs.record("net.xfer", begin=start, end=arrive,
                       parent=msg.span_id, node=msg.src, src=msg.src,
                       dst=msg.dst, msg=msg.kind, size=msg.size,
                       msg_id=msg.msg_id)
        self.engine.trace.emit("net.send", src=msg.src, dst=msg.dst,
                               msg_kind=msg.kind, size=msg.size, arrive=arrive,
                               msg_id=msg.msg_id)

    # ------------------------------------------------------------ overheads
    def sender_cpu_overhead(self) -> float:
        """CPU seconds the sending process burns per message (stack cost)."""
        return 0.0

    def receiver_cpu_overhead(self) -> float:
        """CPU seconds the receiving process burns per message."""
        return 0.0

    def reset_stats(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
