"""Dolphin SCI system-area network.

SCI is the "shared memory cluster" interconnect of the paper (§3.2): it
exposes *remote memory read/write transactions* — a CPU load/store to a
mapped remote page becomes a hardware transaction, with no software protocol
on the data path. The hybrid DSM (:mod:`repro.dsm.scivm`) builds on this.

Two faces:

* :class:`SciInterconnect` is also a regular :class:`Network` (SCI carries
  message traffic too — HAMSTER's unified messaging uses it when present),
  with much lower latency and per-message software cost than TCP/Ethernet.
* The transaction API (:meth:`remote_read`, :meth:`remote_write`,
  :meth:`remote_atomic`, :meth:`flush_write_buffer`) charges the *calling
  process* synchronously, exactly like a CPU stalling on a remote load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.machine.interconnect import Network
from repro.machine.params import MachineParams

__all__ = ["SciInterconnect"]


class SciInterconnect(Network):
    """SCI SAN: messaging + remote memory transactions."""

    def __init__(self, engine, n_nodes: int, params: MachineParams) -> None:
        super().__init__(engine, n_nodes)
        self.params = params
        self.latency = params.sci_write_latency  # messages ride posted writes
        self.bandwidth = params.sci_write_bandwidth
        self.framing_bytes = 16
        # Ring-hop latency table: hop_delay() reduces to one indexed load.
        # Each entry is the product the old code computed per call, so the
        # memoized cost is bit-identical. Torus routing indexes the same
        # table (its worst-case hop count never exceeds N-1).
        self._hop_cost: List[float] = [
            h * params.sci_hop_latency for h in range(n_nodes)]
        self._torus_width = params.sci_torus_width
        self._torus_height = ((n_nodes + self._torus_width - 1)
                              // self._torus_width
                              if self._torus_width > 0 else 0)
        # Per-size transfer-time memos for the transaction API (page-sized
        # reads/writes dominate, so the key set stays tiny).
        self._read_tx: Dict[int, float] = {}
        self._write_tx: Dict[int, float] = {}
        # ------------------------------------------------- statistics
        self.remote_reads = 0
        self.remote_writes = 0
        self.remote_read_bytes = 0
        self.remote_write_bytes = 0
        self.atomics = 0

    # SCI message-passing rides on remote writes into receive rings; the
    # software cost is tiny compared to a TCP stack traversal.
    def sender_cpu_overhead(self) -> float:
        return 1.2e-6

    def receiver_cpu_overhead(self) -> float:
        return 1.2e-6

    # ---------------------------------------------------------- transactions
    def hop_delay(self, src: Optional[int], dst: Optional[int]) -> float:
        """Topology-dependent latency component.

        Ring (default, ``sci_torus_width == 0``): SCI request packets travel
        ``(dst - src) mod N`` link hops forward around the ringlet (the
        response completes the loop, folded into the base latency).

        2D torus (``sci_torus_width == W > 0``, the large-cluster Dolphin
        arrangement): node ``i`` sits at ``(i mod W, i div W)``; requests use
        dimension-order routing on unidirectional ringlets, so the hop count
        is the sum of the per-dimension forward ring distances. This bounds
        the worst-case path by ``(W-1) + (H-1)`` instead of ``N-1`` — the
        property that keeps 1024-node SCI latencies flat.

        Zero when topology modelling is disabled or endpoints unknown."""
        if (src is None or dst is None or src == dst
                or self.params.sci_hop_latency <= 0):
            return 0.0
        w = self._torus_width
        if w > 0:
            h = self._torus_height
            hops = ((dst % w - src % w) % w) + ((dst // w - src // w) % h)
            return self._hop_cost[hops]
        return self._hop_cost[(dst - src) % self.n_nodes]

    def _read_cost(self, nbytes: int, src: Optional[int],
                   dst: Optional[int]) -> float:
        p = self.params
        tx = self._read_tx.get(nbytes)
        if tx is None:
            tx = self._read_tx[nbytes] = nbytes / p.sci_read_bandwidth
        self.remote_reads += 1
        self.remote_read_bytes += nbytes
        return p.sci_read_latency + self.hop_delay(src, dst) + tx

    def remote_read(self, nbytes: int, src: Optional[int] = None,
                    dst: Optional[int] = None) -> None:
        """Charge the calling process for reading ``nbytes`` from a remote
        node's memory. Reads stall the CPU for the full round trip."""
        if nbytes <= 0:
            return
        self.engine.require_process().hold(self._read_cost(nbytes, src, dst))

    def remote_read_g(self, nbytes: int, src: Optional[int] = None,
                      dst: Optional[int] = None):
        """Stackless twin of :meth:`remote_read`."""
        if nbytes <= 0:
            return
        yield self._read_cost(nbytes, src, dst)

    def _write_cost(self, nbytes: int, src: Optional[int],
                    dst: Optional[int]) -> float:
        p = self.params
        tx = self._write_tx.get(nbytes)
        if tx is None:
            tx = self._write_tx[nbytes] = nbytes / p.sci_write_bandwidth
        self.remote_writes += 1
        self.remote_write_bytes += nbytes
        return p.sci_write_latency + self.hop_delay(src, dst) + tx

    def remote_write(self, nbytes: int, src: Optional[int] = None,
                     dst: Optional[int] = None) -> None:
        """Charge for writing ``nbytes`` to remote memory. Posted writes are
        pipelined through the write buffer, so the visible latency is low
        and bulk streams run at the write bandwidth."""
        if nbytes <= 0:
            return
        self.engine.require_process().hold(self._write_cost(nbytes, src, dst))

    def remote_write_g(self, nbytes: int, src: Optional[int] = None,
                       dst: Optional[int] = None):
        """Stackless twin of :meth:`remote_write`."""
        if nbytes <= 0:
            return
        yield self._write_cost(nbytes, src, dst)

    def _atomic_cost(self, src: Optional[int], dst: Optional[int]) -> float:
        self.atomics += 1
        return self.params.sci_atomic_latency + self.hop_delay(src, dst)

    def remote_atomic(self, src: Optional[int] = None,
                      dst: Optional[int] = None) -> None:
        """Charge for one remote atomic transaction (fetch&inc — the lock
        and barrier substrate on SCI)."""
        self.engine.require_process().hold(self._atomic_cost(src, dst))

    def remote_atomic_g(self, src: Optional[int] = None,
                        dst: Optional[int] = None):
        """Stackless twin of :meth:`remote_atomic`."""
        yield self._atomic_cost(src, dst)

    def flush_write_buffer(self) -> None:
        """Charge for draining the posted-write buffer (consistency point)."""
        self.engine.require_process().hold(self.params.sci_flush_cost)

    def flush_write_buffer_g(self):
        """Stackless twin of :meth:`flush_write_buffer`."""
        yield self.params.sci_flush_cost

    def map_pages(self, n_pages: int) -> None:
        """Charge the one-time kernel cost of mapping ``n_pages`` remote
        pages into the local address space (the SCI-VM kernel component)."""
        if n_pages <= 0:
            return
        self.engine.require_process().hold(n_pages * self.params.sci_map_page_cost)

    def map_pages_g(self, n_pages: int):
        """Stackless twin of :meth:`map_pages`."""
        if n_pages <= 0:
            return
        yield n_pages * self.params.sci_map_page_cost

    def reset_stats(self) -> None:
        super().reset_stats()
        self.remote_reads = 0
        self.remote_writes = 0
        self.remote_read_bytes = 0
        self.remote_write_bytes = 0
        self.atomics = 0
