"""Cost-model parameters for the simulated platform.

All times are **seconds**, all sizes **bytes**, all rates **bytes/second**
(or FLOP/s). The defaults (:data:`PAPER_PLATFORM`) are calibrated to the
paper's testbed (§5.1): 450 MHz Intel Xeon nodes, switched Fast Ethernet
with TCP/IP, and Dolphin SCI. Absolute values follow published measurements
of that hardware generation; the evaluation only depends on their *ratios*
(e.g. SCI transactions being ~30× cheaper than a TCP round trip), which are
robust.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from functools import cached_property
from typing import Any, Dict, NamedTuple, Optional

__all__ = ["MachineParams", "DerivedCosts", "PAPER_PLATFORM",
           "stable_digest", "workload_hash", "fault_plan_hash"]


# ---------------------------------------------------------- identity hashes
# Scenario identity = machine identity (MachineParams.fingerprint) +
# workload identity (workload_hash) + fault identity (fault_plan_hash).
# The experiment fabric (repro.fabric) composes the three into one
# content-address for every result record; they live here, next to the
# machine fingerprint, so every layer derives identity the same way.

def stable_digest(material: Any) -> str:
    """sha256 over the canonical JSON form of ``material``.

    Canonical = sorted keys, no whitespace variance — the digest is a pure
    function of the *values*, stable across processes and interpreter
    versions (no reliance on hash randomization or dict order).
    """
    text = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def workload_hash(app: str, params: Dict[str, Any], scale: float,
                  seed: Optional[int] = None) -> str:
    """Stable identity of one workload: app + working set + scale + seed.

    Two runs with equal workload hashes execute the same application on
    the same problem size; combined with :attr:`MachineParams.fingerprint`
    and :func:`fault_plan_hash` this names a run's entire virtual-time
    behaviour.
    """
    return stable_digest({
        "app": app,
        "params": {k: params[k] for k in sorted(params)},
        "scale": scale,
        "seed": seed,
    })


def fault_plan_hash(plan: Any) -> str:
    """Stable identity of a fault plan (None = the perfect network).

    Accepts anything :meth:`repro.faults.FaultPlan.coerce` does — a plan,
    a bare seed, or a plan dict — and hashes the canonical dict form so
    equal plans hash equally regardless of how they were spelled.
    """
    if plan is None:
        return stable_digest(None)
    from repro.faults import FaultPlan  # local: machine must not hard-depend on faults

    return stable_digest(FaultPlan.coerce(plan).to_dict())


class DerivedCosts(NamedTuple):
    """Values derived from :class:`MachineParams` fields, computed once.

    Every entry is the result of the *exact* expression the cost model used
    to evaluate inline — memoization here can never change a simulated
    timestamp, only host time (the golden-run harness enforces this).
    """

    seconds_per_flop: float
    msg_stack_overhead: float


#: Derived-cost cache keyed by config fingerprint: equal parameter sets
#: share one entry no matter how many copies of the dataclass exist.
_DERIVED_CACHE: Dict[str, DerivedCosts] = {}


@dataclass(frozen=True)
class MachineParams:
    """Immutable bundle of machine cost constants.

    Use :meth:`with_overrides` to derive variants (the ablation benches do
    this, e.g. to disable message coalescing).
    """

    # ----------------------------------------------------------------- CPU
    #: CPU clock rate (450 MHz Xeon).
    cpu_hz: float = 450e6
    #: Sustained scalar FLOP rate for the benchmark kernels. Xeon-450-class
    #: codes sustained roughly 0.4 flop/cycle on tuned kernels.
    flops_per_second: float = 180e6

    # -------------------------------------------------------------- memory
    #: Virtual-memory page size used by all DSM protocols.
    page_size: int = 4096
    #: Sustained local memory-bus bandwidth per node (100 MHz FSB era).
    mem_bandwidth: float = 350e6
    #: Per-bulk-access fixed memory latency (DRAM + chipset).
    mem_latency: float = 0.18e-6
    #: Number of CPUs per SMP node (paper: dual-Xeon nodes).
    cpus_per_node: int = 2

    # ------------------------------------------------------ Fast Ethernet
    #: One-way wire+switch latency of switched Fast Ethernet.
    eth_latency: float = 70e-6
    #: Sustained TCP payload bandwidth on 100 Mbit/s Ethernet.
    eth_bandwidth: float = 11.0e6
    #: Sender-side CPU cost per TCP message (syscall + stack + copy).
    tcp_send_overhead: float = 28e-6
    #: Receiver-side CPU cost per TCP message.
    tcp_recv_overhead: float = 28e-6

    # ----------------------------------------------------------------- SCI
    #: Latency of a remote SCI read transaction (CPU stalls on it).
    sci_read_latency: float = 4.5e-6
    #: Latency of a remote SCI posted write (write buffer hides most of it).
    sci_write_latency: float = 1.6e-6
    #: Sustained SCI bulk bandwidth (reads).
    sci_read_bandwidth: float = 65e6
    #: Sustained SCI bulk bandwidth (posted writes).
    sci_write_bandwidth: float = 85e6
    #: Cost of flushing the SCI write buffer (consistency enforcement).
    sci_flush_cost: float = 2.5e-6
    #: One-time cost of mapping one remote page through the kernel
    #: component of the hybrid DSM (SCI-VM's kernel driver, §2).
    sci_map_page_cost: float = 18e-6
    #: Latency of one SCI remote atomic (fetch&inc etc.), used by locks.
    sci_atomic_latency: float = 5.0e-6
    #: Additional per-hop latency on the SCI ringlet. SCI is a ring: a
    #: transaction from node i to node j traverses (j - i) mod N link hops
    #: forward (responses return the rest of the way round). Zero disables
    #: topology modelling (uniform remote latency).
    sci_hop_latency: float = 0.35e-6
    #: SCI topology: 0 = single ringlet (the paper's testbed); W > 0 = a 2D
    #: torus of unidirectional ringlets with W nodes per row (the Dolphin
    #: arrangement for large installations). Torus routing is
    #: dimension-ordered, so the worst-case hop count is (W-1) + (H-1)
    #: instead of N-1 — the property the 64/256/1024-node SCI presets rely
    #: on to keep remote latencies flat as the node axis scales.
    sci_torus_width: int = 0

    # --------------------------------------------------------- DSM software
    #: Software cost of taking a page fault and entering the DSM handler
    #: (SIGSEGV delivery + dispatch on real hardware).
    fault_handling_cost: float = 18e-6
    #: Fixed software cost of creating a twin (malloc + bookkeeping); the
    #: page copy itself is charged at memory bandwidth on top.
    twin_fixed_cost: float = 3e-6
    #: Fixed cost of encoding a diff (scan setup); scan traffic charged at
    #: memory bandwidth (read page + twin).
    diff_fixed_cost: float = 4e-6
    #: Fixed cost of applying a diff at the home node.
    diff_apply_fixed_cost: float = 2.5e-6
    #: Cost of invalidating one actually-present page named by a write
    #: notice (page-table update + mprotect).
    write_notice_cost: float = 0.8e-6
    #: Cost of scanning one incoming write notice (vectorized table walk;
    #: most notices name pages the rank does not cache).
    notice_scan_cost: float = 0.05e-6
    #: Server-side cost of handling a page request at the home node.
    page_serve_cost: float = 6e-6

    # ----------------------------------------------------------- messaging
    #: Per-message software overhead of a *stand-alone* messaging stack
    #: (what native JiaJia pays for its own socket layer on top of the
    #: TCP costs above: dispatch, buffer management, signal handling).
    msg_stack_overhead_separate: float = 9e-6
    #: Per-message overhead of the HAMSTER *coalesced* messaging layer
    #: (§3.3: the DSM's and HAMSTER's messaging merged into one channel,
    #: one dispatch path, shared buffers).
    msg_stack_overhead_integrated: float = 5.5e-6
    #: Whether the framework coalesces messaging stacks (ablation knob).
    coalesce_messaging: bool = True

    # ------------------------------------------------------------- HAMSTER
    #: CPU cost of one HAMSTER service call (argument translation and
    #: dispatch through the programming-model layer; ~200 cycles).
    hamster_call_overhead: float = 0.45e-6
    #: CPU cost of one native API call when bound directly to the DSM
    #: (thin wrapper; ~60 cycles).
    native_call_overhead: float = 0.13e-6
    #: Extra cost per page-fault protocol activation when the DSM is
    #: integrated into HAMSTER (the modified JiaJia dispatches its SIGSEGV
    #: path through the consistency framework). Zero in native builds.
    hamster_fault_hook: float = 5e-6
    #: Extra cost per lock/unlock/barrier protocol operation under HAMSTER
    #: integration (sync-module dispatch + parameter translation).
    hamster_sync_hook: float = 4e-6
    #: Cost of a statistics-counter update in the monitoring services.
    monitor_update_cost: float = 0.0  # counters are maintained for free in-sim

    # ------------------------------------------------------------- syscalls
    #: Cost of an OS-level synchronization primitive on one node (futex-ish).
    os_sync_cost: float = 1.2e-6
    #: Cost of spawning a task/thread on a node.
    task_spawn_cost: float = 55e-6

    def with_overrides(self, **kw) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    # ------------------------------------------------------------- identity
    @cached_property
    def fingerprint(self) -> str:
        """Stable digest of every field value.

        Because the dataclass is frozen, the fingerprint is immutable and
        identifies this *configuration* (not this instance): two params
        objects built with the same values share a fingerprint, and hence
        share one derived-cost cache entry.
        """
        payload = ";".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    @cached_property
    def _derived(self) -> DerivedCosts:
        cached = _DERIVED_CACHE.get(self.fingerprint)
        if cached is None:
            cached = _DERIVED_CACHE[self.fingerprint] = DerivedCosts(
                seconds_per_flop=1.0 / self.flops_per_second,
                msg_stack_overhead=(self.msg_stack_overhead_integrated
                                    if self.coalesce_messaging
                                    else self.msg_stack_overhead_separate))
        return cached

    # ------------------------------------------------------------- helpers
    def seconds_per_flop(self) -> float:
        return self._derived.seconds_per_flop

    def msg_stack_overhead(self) -> float:
        """Per-message software overhead under the active messaging config."""
        return self._derived.msg_stack_overhead


#: Default parameters mirroring the paper's testbed.
PAPER_PLATFORM = MachineParams()
