"""Switched Fast Ethernet with a TCP/IP software stack.

This is the Beowulf-side interconnect of the paper's testbed. Two cost
components matter for the reproduction:

* **wire behaviour** — 100 Mbit/s payload bandwidth and ~70 µs switch
  latency (handled by the base :class:`~repro.machine.interconnect.Network`
  model), and
* **per-message software cost** — the TCP/IP stack burns tens of
  microseconds of CPU on each end of every message. This is the cost the
  HAMSTER messaging integration (§3.3) partially amortizes, producing the
  negative overhead bars of Figure 2.
"""

from __future__ import annotations

from repro.machine.interconnect import Network
from repro.machine.params import MachineParams

__all__ = ["EthernetNetwork"]


class EthernetNetwork(Network):
    """Fast Ethernet + TCP/IP cost model."""

    def __init__(self, engine, n_nodes: int, params: MachineParams) -> None:
        super().__init__(engine, n_nodes)
        self.params = params
        self.latency = params.eth_latency
        self.bandwidth = params.eth_bandwidth
        # Ethernet + IP + TCP headers per segment; one segment assumed for
        # control messages, amortized for bulk (close enough at 4 KiB pages).
        self.framing_bytes = 66

    def sender_cpu_overhead(self) -> float:
        return self.params.tcp_send_overhead

    def receiver_cpu_overhead(self) -> float:
        return self.params.tcp_recv_overhead
