"""Global address space and regions.

Addresses are plain integers in one flat, cluster-wide space (like the
SCI-VM's global virtual address space). A :class:`Region` is a page-aligned,
contiguous allocation; pages are numbered globally (``gaddr // page_size``),
so a global page number identifies one coherence unit everywhere in the
framework.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.errors import MemoryError_

__all__ = ["Region", "GlobalAddressSpace"]


class Region:
    """One contiguous, page-aligned global allocation."""

    __slots__ = ("region_id", "gaddr", "size", "page_size", "name", "freed")

    def __init__(self, region_id: int, gaddr: int, size: int, page_size: int,
                 name: str = "") -> None:
        if gaddr % page_size != 0:
            raise MemoryError_(f"region base {gaddr:#x} not page aligned")
        self.region_id = region_id
        self.gaddr = gaddr
        self.size = size
        self.page_size = page_size
        self.name = name or f"region{region_id}"
        self.freed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Region {self.name} id={self.region_id} "
                f"gaddr={self.gaddr:#x} size={self.size}>")

    # ------------------------------------------------------------ geometry
    @property
    def end(self) -> int:
        return self.gaddr + self.size

    @property
    def n_pages(self) -> int:
        return (self.size + self.page_size - 1) // self.page_size

    @property
    def first_page(self) -> int:
        """Global page number of this region's first page."""
        return self.gaddr // self.page_size

    def pages(self) -> range:
        """All global page numbers of this region."""
        return range(self.first_page, self.first_page + self.n_pages)

    def contains(self, gaddr: int) -> bool:
        return self.gaddr <= gaddr < self.end

    def page_of(self, offset: int) -> int:
        """Global page number holding byte ``offset`` within the region."""
        self._check_range(offset, 1)
        return (self.gaddr + offset) // self.page_size

    def pages_for(self, offset: int, nbytes: int) -> range:
        """Global page numbers touched by ``nbytes`` at region ``offset``."""
        if nbytes == 0:
            return range(0)
        self._check_range(offset, nbytes)
        first = (self.gaddr + offset) // self.page_size
        last = (self.gaddr + offset + nbytes - 1) // self.page_size
        return range(first, last + 1)

    def span_for(self, offset: int, nbytes: int) -> Optional[Tuple[int, int]]:
        """Inclusive global page span ``(first, last)`` touched by ``nbytes``
        at region ``offset``, or ``None`` for a zero-length access.

        A span is the coalesced form of :meth:`pages_for`: two integers no
        matter how many pages a contiguous access covers, so bulk accesses
        carry page *extents* through the DSM layers instead of per-page
        lists. Expansion back to individual pages happens only where
        protection states force it.
        """
        if nbytes == 0:
            return None
        self._check_range(offset, nbytes)
        first = (self.gaddr + offset) // self.page_size
        last = (self.gaddr + offset + nbytes - 1) // self.page_size
        return first, last

    def page_offset(self, page: int) -> int:
        """Byte offset within the region of global page ``page``'s start
        (clamped to 0 for the first page of an unaligned view)."""
        off = page * self.page_size - self.gaddr
        if not (0 <= off < self.size):
            raise MemoryError_(f"page {page} not in {self!r}")
        return off

    def page_extent(self, page: int) -> Tuple[int, int]:
        """(offset, length) of global page ``page`` clipped to the region."""
        off = self.page_offset(page)
        return off, min(self.page_size, self.size - off)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"access [{offset}, {offset + nbytes}) outside {self!r}")


class GlobalAddressSpace:
    """Flat cluster-wide address space handing out page-aligned regions.

    The base address is deliberately non-zero so that global addresses are
    visibly distinct from offsets in traces and tests.
    """

    BASE = 0x4000_0000

    def __init__(self, page_size: int = 4096) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise MemoryError_(f"page size must be a power of two, got {page_size}")
        self.page_size = page_size
        self._regions: List[Region] = []     # sorted by gaddr
        self._starts: List[int] = []
        self._next_id = 0

    # ---------------------------------------------------------- bookkeeping
    def add_region(self, gaddr: int, size: int, name: str = "") -> Region:
        """Register a region at ``gaddr`` (allocator calls this)."""
        region = Region(self._next_id, gaddr, size, self.page_size, name)
        self._next_id += 1
        idx = bisect.bisect_left(self._starts, gaddr)
        # Overlap check against neighbours.
        if idx > 0 and self._regions[idx - 1].end > gaddr:
            raise MemoryError_(f"region at {gaddr:#x} overlaps {self._regions[idx-1]!r}")
        if idx < len(self._regions) and self._regions[idx].gaddr < gaddr + size:
            raise MemoryError_(f"region at {gaddr:#x} overlaps {self._regions[idx]!r}")
        self._regions.insert(idx, region)
        self._starts.insert(idx, gaddr)
        return region

    def drop_region(self, region: Region) -> None:
        idx = bisect.bisect_left(self._starts, region.gaddr)
        if idx >= len(self._regions) or self._regions[idx] is not region:
            raise MemoryError_(f"{region!r} is not registered")
        del self._regions[idx]
        del self._starts[idx]
        region.freed = True

    # -------------------------------------------------------------- lookup
    def region_at(self, gaddr: int) -> Optional[Region]:
        """The region containing ``gaddr``, or ``None``."""
        idx = bisect.bisect_right(self._starts, gaddr) - 1
        if idx >= 0 and self._regions[idx].contains(gaddr):
            return self._regions[idx]
        return None

    def resolve(self, gaddr: int) -> Tuple[Region, int]:
        """(region, offset) for ``gaddr``; raises on unmapped addresses."""
        region = self.region_at(gaddr)
        if region is None:
            raise MemoryError_(f"address {gaddr:#x} is not globally mapped")
        return region, gaddr - region.gaddr

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
