"""Typed shared arrays over global memory.

A :class:`SharedArray` gives application code natural numpy-style indexing
(``A[2:4, :] = x``) over a global :class:`~repro.memory.address_space.Region`
while routing every access through the DSM substrate with page-accurate
accounting — the simulation's stand-in for the MMU mapping a shared segment
into the application's address space.

Access flow (both directions):

1. the index expression is normalized and lowered to a list of contiguous
   byte *runs* within the region,
2. the DSM's ``access(node, region, runs, write)`` services any protection
   faults on the touched pages (fetch/twin/transaction costs in virtual
   time) and returns the buffer holding this node's view of the region,
3. data moves with real numpy reads/writes on that buffer, so protocol
   correctness is observable: tests compare DSM-computed results against
   plain sequential numpy.

Only unit-step basic indexing is supported (ints, ``:`` slices, and
contiguous ranges) — that covers the paper's benchmark suite; fancy/strided
indexing raises ``TypeError`` rather than silently miscounting pages.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.errors import MemoryError_
from repro.memory.address_space import Region

__all__ = ["SharedArray", "index_runs"]

#: A contiguous byte run within a region: (byte_offset, n_bytes).
Run = Tuple[int, int]


def _normalize_index(index: Any, shape: Tuple[int, ...]) -> List[Tuple[int, int]]:
    """Lower ``index`` to per-dimension (start, stop) unit-step bounds."""
    if not isinstance(index, tuple):
        index = (index,)
    if len(index) > len(shape):
        raise IndexError(f"too many indices for shape {shape}")
    bounds: List[Tuple[int, int]] = []
    for dim, idx in enumerate(index):
        n = shape[dim]
        if isinstance(idx, (int, np.integer)):
            i = int(idx)
            if i < 0:
                i += n
            if not (0 <= i < n):
                raise IndexError(f"index {idx} out of range for axis {dim} (size {n})")
            bounds.append((i, i + 1))
        elif isinstance(idx, slice):
            if idx.step not in (None, 1):
                raise TypeError("SharedArray supports only unit-step slices")
            start, stop, _ = idx.indices(n)
            if stop < start:
                stop = start
            bounds.append((start, stop))
        else:
            raise TypeError(f"unsupported index component {idx!r} "
                            "(SharedArray supports ints and unit-step slices)")
    for dim in range(len(index), len(shape)):
        bounds.append((0, shape[dim]))
    return bounds


def index_runs(bounds: Sequence[Tuple[int, int]], shape: Tuple[int, ...],
               itemsize: int, base_offset: int = 0) -> List[Run]:
    """Contiguous byte runs touched by unit-step ``bounds`` on a C-contiguous
    array. Exposed for direct testing (property tests compare against a
    brute-force byte enumeration)."""
    ndim = len(shape)
    # Row strides in bytes.
    strides = [itemsize] * ndim
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    # Find the largest fully-covered suffix of dimensions: inside it the
    # selection is contiguous.
    suffix = ndim
    while suffix > 0 and bounds[suffix - 1] == (0, shape[suffix - 1]):
        suffix -= 1
    # ``suffix`` is now the first dim index NOT part of the full suffix...
    # i.e. dims [suffix, ndim) are fully covered. The innermost partial dim
    # is suffix-1 (if any).
    if suffix == 0:
        total = strides[0] * shape[0] if ndim else itemsize
        return [(base_offset, total)]
    inner = suffix - 1
    run_len = (bounds[inner][1] - bounds[inner][0]) * strides[inner]
    if run_len == 0:
        return []
    runs: List[Run] = []

    def emit(dim: int, offset: int) -> None:
        if dim == inner:
            runs.append((offset + bounds[inner][0] * strides[inner], run_len))
            return
        start, stop = bounds[dim]
        for i in range(start, stop):
            emit(dim + 1, offset + i * strides[dim])

    emit(0, base_offset)
    # Merge adjacent runs (common when an outer loop walks consecutive rows).
    runs.sort()
    merged: List[Run] = []
    for off, ln in runs:
        if merged and merged[-1][0] + merged[-1][1] == off:
            merged[-1] = (merged[-1][0], merged[-1][1] + ln)
        else:
            merged.append((off, ln))
    return merged


class SharedArray:
    """A numpy-typed window onto a global memory region.

    Created through the memory-management services (or a programming-model
    allocation call); not constructed directly by applications.
    """

    def __init__(self, dsm, region: Region, shape: Tuple[int, ...],
                 dtype: Any = np.float64, name: str = "") -> None:
        self.dsm = dsm
        self.region = region
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.name = name or region.name
        self.itemsize = self.dtype.itemsize
        self.nbytes = self.itemsize * int(np.prod(self.shape)) if self.shape else self.itemsize
        if self.nbytes > region.size:
            raise MemoryError_(
                f"array {self.name!r} needs {self.nbytes} bytes but region "
                f"has {region.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedArray {self.name} {self.shape} {self.dtype}>"

    # ------------------------------------------------------------ accessors
    def _runs(self, index: Any) -> List[Run]:
        bounds = _normalize_index(index, self.shape)
        return index_runs(bounds, self.shape, self.itemsize)

    def _view(self, buf: np.ndarray) -> np.ndarray:
        """Typed full-array view of a region byte buffer."""
        flat = buf[: self.nbytes].view(self.dtype)
        return flat.reshape(self.shape)

    def __getitem__(self, index: Any) -> np.ndarray:
        """Read through the DSM; returns a private copy of the data."""
        runs = self._runs(index)
        buf = self.dsm.access_runs(self.region, runs, write=False)
        return np.array(self._view(buf)[index], copy=True)

    def __setitem__(self, index: Any, value: Any) -> None:
        """Write through the DSM (protocol actions happen before mutation)."""
        runs = self._runs(index)
        buf = self.dsm.access_runs(self.region, runs, write=True)
        self._view(buf)[index] = value

    def get_g(self, index: Any):
        """Generator kernel of ``self[index]`` (``yield from`` it) —
        stackless bodies cannot block inside ``[]`` operators, so they read
        through this twin instead."""
        runs = self._runs(index)
        buf = yield from self.dsm.access_runs_g(self.region, runs, write=False)
        return np.array(self._view(buf)[index], copy=True)

    def set_g(self, index: Any, value: Any):
        """Generator kernel of ``self[index] = value`` (``yield from`` it)."""
        runs = self._runs(index)
        buf = yield from self.dsm.access_runs_g(self.region, runs, write=True)
        self._view(buf)[index] = value

    def read(self, index: Any = ()) -> np.ndarray:
        """Alias for ``self[index]`` (whole array by default)."""
        if index == ():
            index = tuple(slice(None) for _ in self.shape)
        return self[index]

    def read_g(self, index: Any = ()):
        """Generator kernel of :meth:`read` (``yield from`` it)."""
        if index == ():
            index = tuple(slice(None) for _ in self.shape)
        return self.get_g(index)

    def write(self, index: Any, value: Any) -> None:
        """Alias for ``self[index] = value``."""
        self[index] = value

    def write_g(self, index: Any, value: Any):
        """Generator kernel of :meth:`write` (``yield from`` it)."""
        return self.set_g(index, value)

    def refresh(self, index: Any = ()) -> None:
        """Drop stale cached copies of the pages under ``index`` (whole
        array by default); used by one-sided get operations."""
        if index == ():
            index = tuple(slice(None) for _ in self.shape)
        self.dsm.refresh_runs(self.region, self._runs(index))

    def refresh_g(self, index: Any = ()):
        """Generator kernel of :meth:`refresh` (``yield from`` it)."""
        if index == ():
            index = tuple(slice(None) for _ in self.shape)
        return self.dsm.refresh_runs_g(self.region, self._runs(index))

    # --------------------------------------------------------------- sugar
    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of 0-d shared array")
        return self.shape[0]

    def spans_for_index(self, index: Any) -> List[Tuple[int, int]]:
        """Sorted, disjoint inclusive global page spans an access to
        ``index`` would touch — the coalesced form of
        :meth:`pages_for_index` (two integers per contiguous extent)."""
        spans: List[Tuple[int, int]] = []
        for off, ln in self._runs(index):
            span = self.region.span_for(off, ln)
            if span is None:
                continue
            first, last = span
            if spans and first <= spans[-1][1] + 1:
                if last > spans[-1][1]:
                    spans[-1] = (spans[-1][0], last)
            else:
                spans.append((first, last))
        return spans

    def pages_for_index(self, index: Any) -> List[int]:
        """Global page numbers an access to ``index`` would touch (used by
        tests and by locality-aware home placement)."""
        pages: List[int] = []
        for first, last in self.spans_for_index(index):
            pages.extend(range(first, last + 1))
        return pages
