"""Global allocator: first-fit with free-list coalescing.

Backs HAMSTER's global allocation services. Allocations are page-aligned and
page-granular (the coherence unit), matching how the SCI-VM and JiaJia carve
their shared segments. Freed blocks are coalesced with adjacent free
neighbours so long-running applications don't fragment the space.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import AllocationError
from repro.memory.address_space import GlobalAddressSpace, Region

__all__ = ["GlobalAllocator"]


class GlobalAllocator:
    """First-fit allocator over a :class:`GlobalAddressSpace`."""

    def __init__(self, space: GlobalAddressSpace, capacity: int = 1 << 31) -> None:
        self.space = space
        self.capacity = capacity
        page = space.page_size
        if capacity % page != 0:
            capacity -= capacity % page
            self.capacity = capacity
        # Free list of (start, size), sorted by start, page-aligned.
        self._free: List[Tuple[int, int]] = [(GlobalAddressSpace.BASE, capacity)]
        # ---------------------------------------------------- statistics
        self.allocated_bytes = 0
        self.peak_bytes = 0
        self.n_allocs = 0
        self.n_frees = 0

    # ------------------------------------------------------------ allocate
    def alloc(self, nbytes: int, name: str = "") -> Region:
        """Allocate ``nbytes`` (rounded up to whole pages)."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        page = self.space.page_size
        size = ((nbytes + page - 1) // page) * page
        for idx, (start, free_size) in enumerate(self._free):
            if free_size >= size:
                if free_size == size:
                    del self._free[idx]
                else:
                    self._free[idx] = (start + size, free_size - size)
                region = self.space.add_region(start, size, name)
                self.n_allocs += 1
                self.allocated_bytes += size
                self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
                return region
        raise AllocationError(
            f"out of global memory: need {size} bytes, "
            f"largest free block is {max((s for _, s in self._free), default=0)}")

    # ---------------------------------------------------------------- free
    def free(self, region: Region) -> None:
        """Return a region to the free list, coalescing with neighbours."""
        if region.freed:
            raise AllocationError(f"double free of {region!r}")
        self.space.drop_region(region)
        self.n_frees += 1
        self.allocated_bytes -= region.size
        start, size = region.gaddr, region.size
        # Insert sorted, then coalesce left and right.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, size))
        self._coalesce(lo)

    def _coalesce(self, idx: int) -> None:
        # Merge with right neighbour.
        if idx + 1 < len(self._free):
            s, z = self._free[idx]
            s2, z2 = self._free[idx + 1]
            if s + z == s2:
                self._free[idx] = (s, z + z2)
                del self._free[idx + 1]
        # Merge with left neighbour.
        if idx > 0:
            s0, z0 = self._free[idx - 1]
            s, z = self._free[idx]
            if s0 + z0 == s:
                self._free[idx - 1] = (s0, z0 + z)
                del self._free[idx]

    # ------------------------------------------------------------- queries
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when the free space is one block."""
        total = self.free_bytes()
        if total == 0:
            return 0.0
        return 1.0 - self.largest_free_block() / total
