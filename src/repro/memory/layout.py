"""Distribution annotations for global memory (§4.2, Memory Management).

HAMSTER's memory-management services accept *distribution annotations* that
tell the underlying memory subsystem where to place the home of each page of
an allocation. A :class:`Distribution` maps a local page index (0-based
within the region) to a home node. Provided policies:

* :func:`block` — contiguous page blocks per node (the locality-friendly
  default for row-partitioned arrays; this is what the "opt" benchmark
  variants use),
* :func:`cyclic` — round-robin pages over nodes (JiaJia's default),
* :func:`single_home` — all pages on one node (TreadMarks-style single-node
  allocation),
* :func:`explicit` — caller-provided home list,
* :func:`first_touch` — homes assigned lazily to the first node that
  accesses each page.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["Distribution", "block", "cyclic", "single_home", "explicit", "first_touch"]


class Distribution:
    """Home-placement policy for one region.

    Parameters
    ----------
    fn:
        ``fn(local_page_index, n_pages, n_nodes) -> node`` or ``None`` for
        lazy (first-touch) placement.
    name:
        Policy name reported by capability queries and statistics.
    """

    def __init__(self, fn: Optional[Callable[[int, int, int], int]], name: str) -> None:
        self._fn = fn
        self.name = name

    @property
    def lazy(self) -> bool:
        """True when homes are assigned at first touch rather than eagerly."""
        return self._fn is None

    def assign(self, n_pages: int, n_nodes: int) -> List[Optional[int]]:
        """Eagerly compute the home of every page (``None`` entries for lazy
        policies, to be filled by the protocol at first touch)."""
        if self.lazy:
            return [None] * n_pages
        homes = []
        for i in range(n_pages):
            node = self._fn(i, n_pages, n_nodes)
            if not (0 <= node < n_nodes):
                raise ConfigurationError(
                    f"distribution {self.name!r} placed page {i} on invalid "
                    f"node {node} (cluster has {n_nodes})")
            homes.append(node)
        return homes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Distribution {self.name}>"


def block(n_pages: int = 0) -> Distribution:
    """Contiguous equal blocks of pages, node 0 first."""
    def fn(i: int, total: int, nodes: int) -> int:
        per = (total + nodes - 1) // nodes
        return min(i // per, nodes - 1)
    return Distribution(fn, "block")


def cyclic() -> Distribution:
    """Round-robin page placement (JiaJia's default)."""
    return Distribution(lambda i, total, nodes: i % nodes, "cyclic")


def single_home(node: int = 0) -> Distribution:
    """Every page homed on one node (TreadMarks single-node allocation)."""
    return Distribution(lambda i, total, nodes: node, f"single_home({node})")


def explicit(homes: Sequence[int]) -> Distribution:
    """Caller-provided per-page home list (must cover the whole region)."""
    homes = list(homes)

    def fn(i: int, total: int, nodes: int) -> int:
        if total != len(homes):
            raise ConfigurationError(
                f"explicit distribution has {len(homes)} entries for "
                f"{total} pages")
        return homes[i]
    return Distribution(fn, "explicit")


def first_touch() -> Distribution:
    """Lazy placement: a page's home is the first node to touch it."""
    return Distribution(None, "first_touch")
