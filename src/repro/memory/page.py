"""Pages, protection states, and per-node page tables.

On the paper's platform, page protection lives in the MMU and the DSM reacts
to SIGSEGV. Here protection is an explicit :class:`PageTable` consulted by
the DSM on every (bulk) access; a protection miss plays the role of the page
fault and triggers the same protocol transitions.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ProtectionError

__all__ = ["PageState", "PageTable"]


class PageState(enum.IntEnum):
    """Classic three-state page protection."""

    INVALID = 0      #: no valid local copy; any access faults
    READ_ONLY = 1    #: valid copy; writes fault (twin/diff protocols hook here)
    READ_WRITE = 2   #: valid, writable copy

    def allows(self, write: bool) -> bool:
        if write:
            return self is PageState.READ_WRITE
        return self is not PageState.INVALID


class PageTable:
    """Protection states for one node (sparse: absent page = INVALID)."""

    def __init__(self, name: str = "pt") -> None:
        self.name = name
        self._states: Dict[int, PageState] = {}
        #: optional transition observer ``fn(page, old, new)`` fed by every
        #: protection change (repro.obs.sharing attaches here when sharing
        #: diagnosis is on; None — the default — costs one falsy check)
        self.on_transition = None
        # ---------------------------------------------------- statistics
        self.read_faults = 0
        self.write_faults = 0

    def state(self, page: int) -> PageState:
        return self._states.get(page, PageState.INVALID)

    def set_state(self, page: int, state: PageState) -> None:
        if self.on_transition is not None:
            old = self._states.get(page, PageState.INVALID)
            if old is not state:
                self.on_transition(page, int(old), int(state))
        if state is PageState.INVALID:
            self._states.pop(page, None)
        else:
            self._states[page] = state

    def invalidate(self, page: int) -> None:
        old = self._states.pop(page, None)
        if old is not None and self.on_transition is not None:
            self.on_transition(page, int(old), 0)

    def invalidate_many(self, pages: Iterable[int]) -> int:
        """Invalidate the given pages; returns how many were actually valid."""
        n = 0
        hook = self.on_transition
        for p in pages:
            old = self._states.pop(p, None)
            if old is not None:
                n += 1
                if hook is not None:
                    hook(p, int(old), 0)
        return n

    def faulting_pages(self, pages: Iterable[int], write: bool) -> List[int]:
        """Pages of ``pages`` whose current state does not allow the access.

        This is the simulation's MMU walk: the returned pages are exactly the
        ones that would have raised protection faults on real hardware.
        """
        out = []
        for p in pages:
            if not self.state(p).allows(write):
                out.append(p)
        if write:
            self.write_faults += len(out)
        else:
            self.read_faults += len(out)
        return out

    def faulting_in_spans(self, spans: Sequence[Tuple[int, int]],
                          write: bool) -> List[int]:
        """Span form of :meth:`faulting_pages`: identical fault list and
        counter updates for the pages covered by inclusive ``(first, last)``
        spans, without materializing the page list first.

        The inner loop compares raw table values against the required
        protection level (READ_ONLY for reads, READ_WRITE for writes), so a
        span whose pages are all sufficiently mapped is skipped with one
        dict probe per page and no enum dispatch.
        """
        states = self._states
        need = int(PageState.READ_WRITE) if write else int(PageState.READ_ONLY)
        out: List[int] = []
        for first, last in spans:
            for p in range(first, last + 1):
                if states.get(p, 0) < need:
                    out.append(p)
        if write:
            self.write_faults += len(out)
        else:
            self.read_faults += len(out)
        return out

    def valid_pages(self) -> List[int]:
        return sorted(self._states)

    def check(self, page: int, write: bool) -> None:
        """Raise :class:`ProtectionError` if the access is not allowed —
        used by DSMs that have no way to service a fault (e.g. an access
        to a page that was never globally allocated)."""
        if not self.state(page).allows(write):
            kind = "write" if write else "read"
            raise ProtectionError(f"{self.name}: {kind} to page {page} "
                                  f"in state {self.state(page).name}")

    def __len__(self) -> int:
        return len(self._states)
