"""Global memory abstraction (§3.1).

The one hard requirement HAMSTER places on a base architecture is a *global
memory abstraction*: globally allocatable memory that every processor can
transparently read and write. This package provides the architecture-neutral
pieces:

* :mod:`~repro.memory.address_space` — global addresses and regions,
* :mod:`~repro.memory.page` — pages, protection states, page tables,
* :mod:`~repro.memory.allocator` — the global allocator,
* :mod:`~repro.memory.layout` — distribution annotations (block, cyclic,
  explicit, first-touch home placement),
* :mod:`~repro.memory.shared_array` — typed numpy views over regions with
  page-accurate access accounting.

The DSM substrates in :mod:`repro.dsm` implement the actual data movement
and coherence on top of these.
"""

from repro.memory.address_space import GlobalAddressSpace, Region
from repro.memory.allocator import GlobalAllocator
from repro.memory.layout import Distribution, block, cyclic, explicit, first_touch, single_home
from repro.memory.page import PageState, PageTable
from repro.memory.shared_array import SharedArray

__all__ = [
    "GlobalAddressSpace",
    "Region",
    "GlobalAllocator",
    "PageState",
    "PageTable",
    "Distribution",
    "block",
    "cyclic",
    "explicit",
    "first_touch",
    "single_home",
    "SharedArray",
]
