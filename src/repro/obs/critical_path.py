"""Critical-path analysis over the causal span tree.

Two complementary answers to "where did the time go":

* :func:`critical_path` — the chain of spans that determined end-to-end
  time: starting from the last span to finish, walk backwards through
  causal parents (falling back to the latest span finishing before the
  current one began) until virtual time zero. The chain crosses ranks
  wherever a message link does.
* :func:`rank_breakdown` / :func:`critical_path_report` — per-rank
  attribution of the **entire** run to four categories:

  - ``wire``     — covered by a ``net.*`` transfer span,
  - ``blocked``  — covered by a ``*.wait`` span (and not wire),
  - ``protocol`` — covered by any other span (service, DSM, messaging),
  - ``compute``  — covered by no span at all (application work, by
    construction of the instrumentation).

  Priority resolves overlaps (wire > blocked > protocol), so the four
  categories partition ``[0, total]`` exactly: **per rank they sum to the
  rank's total virtual runtime** — the invariant the acceptance test and
  the overhead guarantee both lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.spans import ObsRecorder, Span

__all__ = ["category_of", "RankBreakdown", "CriticalPathReport",
           "critical_path", "rank_breakdown", "critical_path_report"]

#: attribution categories, in overlap-priority order
CATEGORIES = ("wire", "blocked", "protocol", "compute")


def category_of(kind: str) -> str:
    """Map a span kind to its attribution category."""
    if kind.startswith("net."):
        return "wire"
    if kind.endswith(".wait"):
        return "blocked"
    return "protocol"


# ---------------------------------------------------------------- intervals
def _union(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping intervals into a disjoint sorted list."""
    out: List[Tuple[float, float]] = []
    for begin, end in sorted(intervals):
        if out and begin <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((begin, end))
    return out


def _measure(intervals: List[Tuple[float, float]]) -> float:
    return sum(end - begin for begin, end in intervals)


def _clamped(span: Span, total: float) -> Optional[Tuple[float, float]]:
    """Span interval clipped to [0, total]; open spans run to ``total``."""
    begin = max(0.0, span.begin)
    end = total if span.end is None else min(span.end, total)
    return (begin, end) if end > begin else None


# --------------------------------------------------------------- breakdowns
@dataclass
class RankBreakdown:
    """One rank's runtime partitioned into the four categories."""

    rank: int
    total: float
    compute: float = 0.0
    protocol: float = 0.0
    wire: float = 0.0
    blocked: float = 0.0

    def category_sum(self) -> float:
        return self.compute + self.protocol + self.wire + self.blocked

    def share(self, category: str) -> float:
        return getattr(self, category) / self.total if self.total > 0 else 0.0


def rank_breakdown(recorder: ObsRecorder, rank: int,
                   total: float) -> RankBreakdown:
    """Partition ``[0, total]`` for one rank by category priority."""
    by_cat: dict = {"wire": [], "blocked": [], "protocol": []}
    for span in recorder.spans:
        if span.rank != rank:
            continue
        interval = _clamped(span, total)
        if interval is not None:
            by_cat[category_of(span.kind)].append(interval)
    wire = _union(by_cat["wire"])
    wire_blocked = _union(wire + by_cat["blocked"])
    covered = _union(wire_blocked + by_cat["protocol"])
    out = RankBreakdown(rank=rank, total=total)
    out.wire = _measure(wire)
    out.blocked = _measure(wire_blocked) - out.wire
    out.protocol = _measure(covered) - _measure(wire_blocked)
    out.compute = total - _measure(covered)
    return out


# ------------------------------------------------------------ critical path
def critical_path(recorder: ObsRecorder) -> List[Span]:
    """The span chain that determined end-to-end time, earliest first.

    Backward walk from the globally last-finishing span: prefer the causal
    parent when it began strictly earlier; otherwise jump to the latest
    span finishing at or before the current span began. Heuristic (the
    span tree is not a full dependence graph) but deterministic.
    """
    closed = recorder.closed()
    if not closed:
        return []
    cur = max(closed, key=lambda s: (s.end, s.span_id))
    chain = [cur]
    seen = {cur.span_id}
    for _ in range(len(closed)):
        parent = recorder.get(cur.parent)
        if (parent is not None and parent.end is not None
                and parent.begin < cur.begin and parent.span_id not in seen):
            nxt = parent
        else:
            candidates = [s for s in closed
                          if s.end <= cur.begin and s.span_id not in seen]
            if not candidates:
                break
            nxt = max(candidates, key=lambda s: (s.end, s.span_id))
        chain.append(nxt)
        seen.add(nxt.span_id)
        cur = nxt
    chain.reverse()
    return chain


@dataclass
class CriticalPathReport:
    """Whole-run attribution + the determining span chain."""

    platform: str
    total_time: float
    ranks: List[RankBreakdown] = field(default_factory=list)
    path: List[Span] = field(default_factory=list)

    def rank(self, rank: int) -> RankBreakdown:
        return self.ranks[rank]

    def totals(self) -> dict:
        """Cluster-wide seconds per category (summed over ranks)."""
        return {cat: sum(getattr(r, cat) for r in self.ranks)
                for cat in CATEGORIES}

    def render(self, path_top: int = 8) -> str:
        from repro.bench.report import render_table

        ms = 1e3
        rows = [[b.rank, f"{b.compute * ms:.3f}", f"{b.protocol * ms:.3f}",
                 f"{b.wire * ms:.3f}", f"{b.blocked * ms:.3f}",
                 f"{b.category_sum() * ms:.3f}",
                 f"{b.share('compute') * 100:.1f}%"]
                for b in self.ranks]
        table = render_table(
            ["rank", "compute ms", "protocol ms", "wire ms", "blocked ms",
             "sum ms", "compute %"],
            rows, title=f"critical path: {self.platform} "
                        f"({self.total_time * ms:.3f} ms virtual)")
        lines = [table]
        if self.path:
            lines.append(f"\ncritical chain ({len(self.path)} spans, "
                         f"longest {path_top} shown):")
            longest = sorted(self.path, key=lambda s: -s.duration)[:path_top]
            shown = {s.span_id for s in longest}
            for span in self.path:
                if span.span_id not in shown:
                    continue
                where = f"rank {span.rank}" if span.rank is not None else "-"
                lines.append(f"  {span.begin * ms:10.3f} ms  {span.kind:<12s} "
                             f"{where:<8s} {span.duration * ms:8.3f} ms  "
                             f"{span.fields}")
        return "\n".join(lines)


def critical_path_report(platform) -> CriticalPathReport:
    """Digest a finished, observability-enabled
    :class:`~repro.config.BuiltPlatform`."""
    recorder = platform.engine.obs
    if not getattr(recorder, "enabled", False):
        raise ValueError("platform was built without observability "
                         "(set ClusterConfig.observe = True)")
    total = platform.engine.now
    report = CriticalPathReport(
        platform=platform.hamster.platform_description(), total_time=total,
        path=critical_path(recorder))
    for rank in range(platform.hamster.n_ranks):
        report.ranks.append(rank_breakdown(recorder, rank, total))
    return report
